"""Figure 9: GridFTP vs RFTP over InfiniBand in the LAN."""

from benchmarks.conftest import run_once
from repro.experiments import fig8_fig9_lan_ftp as exp
from repro.testbeds import infiniband_lan


def test_fig9_ftp_ib_lan(benchmark):
    points = run_once(benchmark, exp.run, infiniband_lan)
    exp.check(points, bare_metal_gbps=25.6)
    exp.render(points, "Fig. 9 — GridFTP vs RFTP, InfiniBand LAN (25.6G bare metal)").print()
    rftp_peak = max(p.gbps for p in points if p.tool == "rftp")
    assert rftp_peak <= 25.6
    benchmark.extra_info["rftp_peak_gbps"] = round(rftp_peak, 2)
