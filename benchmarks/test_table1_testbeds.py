"""Table I: testbed description, regenerated from the encodings."""

from benchmarks.conftest import run_once
from repro.experiments import table1_testbeds


def test_table1(benchmark):
    rows = run_once(benchmark, table1_testbeds.run)
    table1_testbeds.check(rows)
    table1_testbeds.render(rows).print()
    benchmark.extra_info["testbeds"] = sorted(rows)
