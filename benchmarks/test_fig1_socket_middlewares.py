"""Extension bench: Figure 1's stack choices quantified.

Native verbs (the paper's middleware) vs SDP vs IPoIB for the identical
bulk transfer — reproducing the §II claim that socket-compatibility
layers "introduce additional overhead and performance penalties
compared to the native RDMA IB verbs" [15].
"""

from benchmarks.conftest import run_once
from repro.analysis import Table
from repro.apps.rftp import run_rftp
from repro.apps.sockets import socket_transfer
from repro.core import ProtocolConfig
from repro.testbeds import roce_lan

TOTAL = 512 << 20


def _run():
    rows = []
    ipoib = socket_transfer(roce_lan(), TOTAL, "ipoib")
    rows.append(("ipoib", ipoib.gbps, ipoib.client_cpu_pct, ipoib.server_cpu_pct))
    sdp = socket_transfer(roce_lan(), TOTAL, "sdp")
    rows.append(("sdp", sdp.gbps, sdp.client_cpu_pct, sdp.server_cpu_pct))
    native = run_rftp(
        roce_lan(),
        TOTAL,
        ProtocolConfig(
            block_size=1 << 20, num_channels=4, source_blocks=32, sink_blocks=32
        ),
    )
    rows.append(
        ("native verbs (RFTP)", native.gbps, native.client_cpu_pct, native.server_cpu_pct)
    )
    return rows


def test_fig1_socket_middlewares(benchmark):
    rows = run_once(benchmark, _run)
    table = Table(
        "Extension — Fig. 1 stack choices on the RoCE LAN",
        ["stack", "Gbps", "client cpu%", "server cpu%"],
    )
    for name, gbps, ccpu, scpu in rows:
        table.add_row(name, f"{gbps:.2f}", f"{ccpu:.0f}", f"{scpu:.0f}")
    table.print()
    by = {name: gbps for name, gbps, *_ in rows}
    assert by["native verbs (RFTP)"] > by["sdp"] > by["ipoib"]
    for name, gbps, *_ in rows:
        benchmark.extra_info[name] = round(gbps, 2)
