"""Benchmark harness configuration.

Each benchmark runs a full experiment (a deterministic simulation) once
under pytest-benchmark timing, prints the same rows/series the paper's
figure reports, asserts the qualitative shape, and stashes headline
numbers in ``benchmark.extra_info`` so they appear in the JSON output.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under the benchmark timer.

    Experiments are deterministic simulations — re-running them yields
    bit-identical results, so one timed round is both sufficient and
    honest about cost.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
