"""Extension bench: one middleware, three RDMA architectures (Figure 1).

The paper's design goal is transparency across InfiniBand, RoCE and
iWARP via the common verbs API.  This bench runs the identical fio WRITE
workload over all three architecture profiles and shows the expected
ordering of software overhead (IB < RoCE < iWARP CPU per operation)
while each fabric saturates its own bare metal.
"""

from benchmarks.conftest import run_once
from repro.analysis import Table
from repro.apps.fio import FioJob, run_fio
from repro.testbeds import TESTBEDS


def _run():
    rows = []
    for name in ("infiniband-lan", "roce-lan", "iwarp-lan"):
        tb = TESTBEDS[name]()
        result = run_fio(
            tb,
            FioJob(semantics="write", block_size=128 << 10, iodepth=16,
                   total_blocks=1200),
        )
        rows.append(
            {
                "testbed": name,
                "bare_metal": tb.bare_metal_gbps,
                "gbps": result.gbps,
                "cpu_pct": result.src_cpu_pct,
                # CPU seconds per gigabyte moved: the architecture's
                # software overhead, normalised for fabric speed.
                "cpu_s_per_gb": result.src_cpu_pct / 100.0 * result.elapsed
                / (result.bytes / 1e9),
            }
        )
    return rows


def test_arch_comparison(benchmark):
    rows = run_once(benchmark, _run)
    table = Table(
        "Extension — one middleware, three RDMA architectures",
        ["testbed", "bare metal Gbps", "Gbps", "cpu%", "cpu s/GB"],
    )
    by = {}
    for r in rows:
        table.add_row(
            r["testbed"],
            f"{r['bare_metal']:g}",
            f"{r['gbps']:.2f}",
            f"{r['cpu_pct']:.1f}",
            f"{r['cpu_s_per_gb'] * 1e3:.3f}m",
        )
        by[r["testbed"]] = r
    table.print()
    # Every fabric saturates its own ceiling...
    for r in rows:
        assert r["gbps"] > 0.9 * r["bare_metal"]
    # ...and per-byte-moved software cost orders IB < RoCE < iWARP.
    assert (
        by["infiniband-lan"]["cpu_s_per_gb"]
        < by["roce-lan"]["cpu_s_per_gb"]
        < by["iwarp-lan"]["cpu_s_per_gb"]
    )
    for r in rows:
        benchmark.extra_info[r["testbed"]] = round(r["gbps"], 2)
