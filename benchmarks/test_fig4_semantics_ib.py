"""Figure 4: RDMA semantics over the InfiniBand LAN (PCIe-capped)."""

from benchmarks.conftest import run_once
from repro.experiments import fig3_fig4_semantics as exp
from repro.testbeds import infiniband_lan


def test_fig4_semantics_ib(benchmark):
    points = run_once(benchmark, exp.run, infiniband_lan)
    # Bare metal here is the PCIe 2.0 x8 slot (~25.6G), not the 40G link.
    exp.check(points, line_rate_gbps=25.6)
    exp.render(points, "Fig. 4 — RDMA semantics, InfiniBand LAN (40G link, 25.6G PCIe)").print()
    peak = max(p.gbps for p in points)
    assert peak <= 25.6
    benchmark.extra_info["peak_gbps"] = round(peak, 2)
