"""Ablation: number of parallel data-channel QPs (§IV-A)."""

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_ablation_parallel_qp(benchmark):
    rows = run_once(benchmark, ablations.run_qp_ablation)
    ablations.check_qp_ablation(rows)
    ablations.render_rows(rows, "Ablation — parallel data QPs (RoCE LAN)").print()
    for r in rows:
        benchmark.extra_info[r.label] = round(r.gbps, 2)
