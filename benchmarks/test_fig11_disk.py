"""Figure 11: RFTP memory-to-memory vs memory-to-disk."""

from benchmarks.conftest import run_once
from repro.experiments import fig11_disk as exp


def test_fig11_disk(benchmark):
    points = run_once(benchmark, exp.run)
    exp.check(points)
    exp.render(points).print()
    for p in points:
        benchmark.extra_info[f"{p.mode}_gbps"] = round(p.gbps, 2)
