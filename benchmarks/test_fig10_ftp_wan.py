"""Figure 10: GridFTP vs RFTP over the ANI WAN (10G RoCE, 49 ms)."""

from benchmarks.conftest import run_once
from repro.experiments import fig10_wan_ftp as exp


def test_fig10_ftp_wan(benchmark):
    points = run_once(benchmark, exp.run)
    exp.check(points)
    exp.render(points).print()
    for p in points:
        benchmark.extra_info[f"{p.tool}_{p.streams}st_gbps"] = round(p.gbps, 2)
