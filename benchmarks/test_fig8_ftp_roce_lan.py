"""Figure 8: GridFTP vs RFTP over RoCE in the LAN."""

from benchmarks.conftest import run_once
from repro.experiments import fig8_fig9_lan_ftp as exp
from repro.testbeds import roce_lan


def test_fig8_ftp_roce_lan(benchmark):
    points = run_once(benchmark, exp.run, roce_lan)
    exp.check(points, bare_metal_gbps=40.0)
    exp.render(points, "Fig. 8 — GridFTP vs RFTP, RoCE LAN (40G)").print()
    rftp_peak = max(p.gbps for p in points if p.tool == "rftp")
    grid_peak = max(p.gbps for p in points if p.tool == "gridftp")
    benchmark.extra_info["rftp_peak_gbps"] = round(rftp_peak, 2)
    benchmark.extra_info["gridftp_peak_gbps"] = round(grid_peak, 2)
