"""Figure 3: RDMA semantics over the 40G RoCE LAN (bandwidth + CPU)."""

from benchmarks.conftest import run_once
from repro.experiments import fig3_fig4_semantics as exp
from repro.testbeds import roce_lan


def test_fig3_semantics_roce(benchmark):
    points = run_once(benchmark, exp.run, roce_lan)
    exp.check(points, line_rate_gbps=40.0)
    exp.render(points, "Fig. 3 — RDMA semantics, RoCE LAN (40G)").print()
    peak = max(p.gbps for p in points)
    benchmark.extra_info["peak_gbps"] = round(peak, 2)
