"""Ablation: I/O depth sweep (§III-B: 'post multiple I/O tasks in flight')."""

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_iodepth_sweep(benchmark):
    rows = run_once(benchmark, ablations.run_iodepth_sweep)
    ablations.check_iodepth_sweep(rows)
    ablations.render_rows(rows, "Ablation — I/O depth (RDMA WRITE, 128K, RoCE LAN)").print()
    for r in rows:
        benchmark.extra_info[r.label] = round(r.gbps, 2)
