"""Ablation: proactive vs on-demand credits; grant-ramp shape (§IV)."""

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_ablation_credits(benchmark):
    rows = run_once(benchmark, ablations.run_credit_ablation)
    ablations.check_credit_ablation(rows)
    ablations.render_rows(rows, "Ablation — credit flow control (ANI WAN)").print()
    for r in rows:
        benchmark.extra_info[r.label] = round(r.gbps, 2)
