"""Figure 10: GridFTP vs RFTP over the ANI WAN (10G RoCE, 49 ms RTT).

Memory-to-memory transfers with 1 and 8 streams.  The WAN is where the
protocol design pays off: RFTP's proactive credits keep a BDP's worth of
RDMA WRITEs in flight and reach ~99 % of the 10G line; GridFTP is at the
mercy of TCP's loss response — badly with one stream, partially healed
by eight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis import Table
from repro.apps.gridftp import run_gridftp
from repro.apps.rftp import run_rftp
from repro.core import ProtocolConfig
from repro.testbeds import ani_wan

__all__ = ["run", "check", "render", "STREAMS"]

STREAMS = (1, 8)
BLOCK_SIZE = 4 << 20
TOTAL_BYTES = 8 << 30
#: Pool sized ≈ 2 BDP: a credit's round trip is two one-way latencies
#: (data out, BLOCK_DONE + grant back), so covering one BDP of flight
#: needs two BDPs of registered blocks.
POOL_BLOCKS = 48
#: Seeds averaged for the loss-sensitive GridFTP runs.
SEEDS = (0, 1, 2)


@dataclass(frozen=True)
class Point:
    tool: str
    streams: int
    gbps: float
    client_cpu_pct: float
    server_cpu_pct: float
    losses: int = 0


def run() -> List[Point]:
    points: List[Point] = []
    for streams in STREAMS:
        gbps = cpu_c = cpu_s = 0.0
        losses = 0
        for seed in SEEDS:
            g = run_gridftp(
                ani_wan(seed=seed), TOTAL_BYTES, streams=streams, block_size=BLOCK_SIZE
            )
            gbps += g.gbps / len(SEEDS)
            cpu_c += g.client_cpu_pct / len(SEEDS)
            cpu_s += g.server_cpu_pct / len(SEEDS)
            losses += g.losses
        points.append(Point("gridftp", streams, gbps, cpu_c, cpu_s, losses))

        cfg = ProtocolConfig(
            block_size=BLOCK_SIZE,
            num_channels=streams,
            source_blocks=POOL_BLOCKS,
            sink_blocks=POOL_BLOCKS,
        )
        r = run_rftp(ani_wan(), TOTAL_BYTES, cfg)
        points.append(
            Point("rftp", streams, r.gbps, r.client_cpu_pct, r.server_cpu_pct)
        )
    return points


def _sel(points: List[Point], tool: str, streams: int) -> Point:
    for p in points:
        if p.tool == tool and p.streams == streams:
            return p
    raise KeyError((tool, streams))


def check(points: List[Point]) -> None:
    rftp1 = _sel(points, "rftp", 1)
    rftp8 = _sel(points, "rftp", 8)
    grid1 = _sel(points, "gridftp", 1)
    grid8 = _sel(points, "gridftp", 8)
    # RFTP ≈ line rate with one stream already (Figure 10's headline).
    assert rftp1.gbps > 9.0
    assert rftp8.gbps > 9.0
    # GridFTP single stream is well below; parallel streams help but do
    # not close the gap.
    assert grid1.gbps < 8.0
    assert grid8.gbps > grid1.gbps
    assert rftp8.gbps > grid8.gbps
    assert rftp1.gbps > grid1.gbps * 1.2
    # GridFTP saw real loss events.
    assert grid1.losses + grid8.losses > 0
    # RFTP does it with less CPU.
    assert rftp1.client_cpu_pct < grid1.client_cpu_pct
    assert rftp8.client_cpu_pct < grid8.client_cpu_pct


def render(points: List[Point]) -> Table:
    table = Table(
        "Fig. 10 — GridFTP vs RFTP over RoCE WAN (10G, 49 ms)",
        ["tool", "streams", "Gbps", "client cpu%", "server cpu%", "losses"],
    )
    for p in points:
        table.add_row(
            p.tool,
            p.streams,
            f"{p.gbps:.2f}",
            f"{p.client_cpu_pct:.0f}",
            f"{p.server_cpu_pct:.0f}",
            p.losses,
        )
    return table
