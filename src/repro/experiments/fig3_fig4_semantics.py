"""Figures 3 & 4: RDMA semantics comparison (fio engine).

Sweeps block size × I/O depth for WRITE / READ / SEND-RECV on the RoCE
LAN (Fig. 3) and InfiniBand LAN (Fig. 4), reporting bandwidth and
combined source+sink CPU — the two panels of each figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.analysis import Table
from repro.apps.fio import FioJob, run_fio
from repro.testbeds import Testbed

__all__ = ["run", "check", "render", "SEMANTICS", "BLOCK_SIZES"]

SEMANTICS = ("write", "read", "send")
#: The paper sweeps 4K..4M; 16K-128K is the recommended band.
BLOCK_SIZES = (4 << 10, 16 << 10, 64 << 10, 128 << 10, 512 << 10, 4 << 20)
LOW_DEPTH, HIGH_DEPTH = 1, 16


@dataclass(frozen=True)
class Point:
    semantics: str
    block_size: int
    iodepth: int
    gbps: float
    cpu_pct: float
    lat_us: float


def _blocks_for(block_size: int, iodepth: int) -> int:
    """Scale the op count so each point simulates a similar byte volume."""
    target = 192 << 20 if iodepth > 1 else 48 << 20
    return max(iodepth * 8, min(3000, target // block_size))


def run(testbed_factory: Callable[[], Testbed]) -> List[Point]:
    points: List[Point] = []
    for iodepth in (LOW_DEPTH, HIGH_DEPTH):
        for semantics in SEMANTICS:
            for block_size in BLOCK_SIZES:
                tb = testbed_factory()
                result = run_fio(
                    tb,
                    FioJob(
                        semantics=semantics,
                        block_size=block_size,
                        iodepth=iodepth,
                        total_blocks=_blocks_for(block_size, iodepth),
                    ),
                )
                points.append(
                    Point(
                        semantics=semantics,
                        block_size=block_size,
                        iodepth=iodepth,
                        gbps=result.gbps,
                        cpu_pct=result.total_cpu_pct,
                        lat_us=result.lat_mean_us,
                    )
                )
    return points


def _at(points: List[Point], semantics: str, block_size: int, iodepth: int) -> Point:
    for p in points:
        if (
            p.semantics == semantics
            and p.block_size == block_size
            and p.iodepth == iodepth
        ):
            return p
    raise KeyError((semantics, block_size, iodepth))


def check(points: List[Point], line_rate_gbps: float) -> None:
    """The §III-B observations, as assertions."""
    # (1) High depth: WRITE and SEND/RECV beat READ (small/mid blocks).
    for bs in (16 << 10, 64 << 10):
        write = _at(points, "write", bs, HIGH_DEPTH).gbps
        send = _at(points, "send", bs, HIGH_DEPTH).gbps
        read = _at(points, "read", bs, HIGH_DEPTH).gbps
        assert write > 1.2 * read, f"WRITE must beat READ at {bs}"
        assert send > 1.2 * read, f"SEND must beat READ at {bs}"
    # (2,3) Saturation from the 16K-128K band upward.
    peak = max(p.gbps for p in points if p.iodepth == HIGH_DEPTH)
    for bs in (128 << 10, 512 << 10, 4 << 20):
        got = _at(points, "write", bs, HIGH_DEPTH).gbps
        assert got > 0.9 * peak, f"saturation expected at {bs}"
    # (4) CPU falls as block size rises.
    for semantics in SEMANTICS:
        cpu_small = _at(points, semantics, 16 << 10, HIGH_DEPTH).cpu_pct
        cpu_large = _at(points, semantics, 4 << 20, HIGH_DEPTH).cpu_pct
        assert cpu_large < cpu_small
    # (5) SEND/RECV burns far more CPU than WRITE at peak.
    assert (
        _at(points, "send", 128 << 10, HIGH_DEPTH).cpu_pct
        > 1.5 * _at(points, "write", 128 << 10, HIGH_DEPTH).cpu_pct
    )
    # (6) Low depth: all semantics similar and well below line rate.
    lows = [_at(points, s, 128 << 10, LOW_DEPTH).gbps for s in SEMANTICS]
    assert max(lows) < 0.6 * line_rate_gbps
    assert max(lows) < 1.6 * min(lows)
    # High depth clearly beats low depth.
    assert (
        _at(points, "write", 128 << 10, HIGH_DEPTH).gbps
        > 2 * _at(points, "write", 128 << 10, LOW_DEPTH).gbps
    )


def render(points: List[Point], title: str) -> Table:
    table = Table(title, ["iodepth", "semantics", "block", "Gbps", "cpu%", "lat(us)"])
    for p in points:
        table.add_row(
            p.iodepth,
            p.semantics,
            f"{p.block_size >> 10}K",
            f"{p.gbps:.2f}",
            f"{p.cpu_pct:.1f}",
            f"{p.lat_us:.1f}",
        )
    return table
