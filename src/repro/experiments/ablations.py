"""Ablations of the design choices DESIGN.md calls out.

1. **Proactive vs on-demand credits** (§IV-A): the Tian-et-al.-style
   scheme spends an RTT asking for credits whenever the source runs dry;
   on a 49 ms path that stalls the pipeline.
2. **Exponential vs linear credit grant ramp** (§IV-C): granting 2
   credits per completion doubles the in-flight budget per round trip,
   like TCP slow start; a 1:1 grant ramps linearly and takes far longer
   to fill a long fat pipe.
3. **Parallel data QPs** (§IV-A): multiple data channels remove the
   single-QP ceiling (and exercise out-of-order reassembly).
4. **I/O depth** (§III-B): keeping many blocks in flight is the key to
   RDMA throughput — revisited at the middleware level via pool size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis import Table
from repro.apps.fio import FioJob, run_fio
from repro.apps.rftp import run_rftp
from repro.core import ProtocolConfig
from repro.testbeds import ani_wan, roce_lan

__all__ = [
    "run_credit_ablation",
    "check_credit_ablation",
    "run_qp_ablation",
    "check_qp_ablation",
    "run_iodepth_sweep",
    "check_iodepth_sweep",
    "run_recovery_ablation",
    "check_recovery_ablation",
    "run_resume_ablation",
    "check_resume_ablation",
    "render_rows",
]

WAN_BYTES = 4 << 30
BLOCK = 4 << 20


@dataclass(frozen=True)
class Row:
    label: str
    gbps: float
    detail: str = ""


def _wan_cfg(**over) -> ProtocolConfig:
    base = dict(
        block_size=BLOCK,
        num_channels=4,
        source_blocks=48,
        sink_blocks=48,
    )
    base.update(over)
    return ProtocolConfig(**base)


# -- 1 & 2: credit policies ----------------------------------------------------------
def run_credit_ablation() -> List[Row]:
    rows: List[Row] = []
    proactive = run_rftp(ani_wan(), WAN_BYTES, _wan_cfg(proactive_credits=True))
    rows.append(
        Row(
            "proactive, grant x2 (paper)",
            proactive.gbps,
            f"mr_requests={proactive.outcome.mr_requests}",
        )
    )
    linear = run_rftp(ani_wan(), WAN_BYTES, _wan_cfg(credit_grant_ratio=1))
    rows.append(
        Row(
            "proactive, grant x1 (linear ramp)",
            linear.gbps,
            f"mr_requests={linear.outcome.mr_requests}",
        )
    )
    on_demand = run_rftp(ani_wan(), WAN_BYTES, _wan_cfg(proactive_credits=False))
    rows.append(
        Row(
            "on-demand (Tian et al. style)",
            on_demand.gbps,
            f"mr_requests={on_demand.outcome.mr_requests}",
        )
    )
    return rows


def check_credit_ablation(rows: List[Row]) -> None:
    proactive = rows[0]
    linear = rows[1]
    on_demand = rows[2]
    # Proactive beats the request/response scheme on the WAN.
    assert proactive.gbps > on_demand.gbps * 1.05
    # The x2 ramp is at least as good as the linear ramp.
    assert proactive.gbps >= linear.gbps * 0.98
    # On-demand begs for credits orders of magnitude more often.
    p_req = int(proactive.detail.split("=")[1])
    o_req = int(on_demand.detail.split("=")[1])
    assert o_req > p_req


# -- 3: parallel data QPs ---------------------------------------------------------------
def run_qp_ablation() -> List[Row]:
    rows: List[Row] = []
    for channels in (1, 2, 4, 8):
        r = run_rftp(
            roce_lan(),
            512 << 20,
            ProtocolConfig(
                block_size=512 << 10,
                num_channels=channels,
                source_blocks=32,
                sink_blocks=32,
            ),
        )
        rows.append(Row(f"{channels} data QP(s)", r.gbps))
    return rows


def check_qp_ablation(rows: List[Row]) -> None:
    # All configurations must stay functional and near line rate on the
    # LAN; parallel QPs must never hurt.
    assert all(r.gbps > 30.0 for r in rows)
    assert rows[-1].gbps >= rows[0].gbps * 0.95


# -- 4: I/O depth sweep --------------------------------------------------------------------
def run_iodepth_sweep() -> List[Row]:
    rows: List[Row] = []
    for depth in (1, 2, 4, 8, 16, 32, 64):
        r = run_fio(
            roce_lan(),
            FioJob(
                semantics="write",
                block_size=128 << 10,
                iodepth=depth,
                total_blocks=max(400, depth * 40),
            ),
        )
        rows.append(Row(f"iodepth={depth}", r.gbps))
    return rows


def check_iodepth_sweep(rows: List[Row]) -> None:
    gbps = [r.gbps for r in rows]
    # Monotone non-decreasing (within tolerance) and saturating.
    for a, b in zip(gbps, gbps[1:]):
        assert b >= a * 0.98
    assert gbps[0] < 0.5 * gbps[-1]
    assert gbps[-1] > 0.9 * 40.0


# -- 5: recovery overhead under injected faults -----------------------------------------
def run_recovery_ablation() -> List[Row]:
    """Goodput cost of the Fig. 6 re-send path on the ANI WAN.

    Sweeps the per-WRITE transient fault rate; every run must still
    deliver byte-exact and leak nothing (the chaos harness checks), so
    the only degree of freedom is how much goodput recovery costs.
    """
    from repro.faults import FaultPlan, run_chaos

    rows: List[Row] = []
    for rate in (0.0, 0.02, 0.05, 0.10):
        r = run_chaos(
            "ani-wan",
            total_bytes=256 << 20,
            plan=FaultPlan(seed=0, write_fault_rate=rate),
        )
        if not r.clean:
            raise AssertionError(
                f"chaos run at fault rate {rate} was not clean: {r.leaks}"
            )
        assert r.outcome is not None
        rows.append(
            Row(
                f"write fault rate {rate:.0%}",
                r.outcome.gbps,
                f"resends={r.resends} faults={r.write_faults}",
            )
        )
    return rows


def check_recovery_ablation(rows: List[Row]) -> None:
    resends = [int(r.detail.split()[0].split("=")[1]) for r in rows]
    # Fault-free baseline needs no re-sends; injected faults exercise them.
    assert resends[0] == 0
    assert all(n > 0 for n in resends[1:])
    assert resends[1] < resends[-1]
    # Recovery is cheap: even at 10% WRITE faults the pipeline keeps the
    # pipe busy, costing a bounded slice of fault-free goodput.
    assert rows[-1].gbps > rows[0].gbps * 0.5


# -- 6: integrity, selective repair, and session resume ---------------------------------
def run_resume_ablation() -> List[Row]:
    """Cost of end-to-end integrity and value of resumable sessions.

    Three parts, all on the ANI WAN:

    - goodput vs payload-corruption rate with BLOCK_NACK repair on —
      every run must stay byte-exact and leak-free;
    - a mid-transfer link flap longer than the retry budget, survived by
      SESSION_RESUME: audited bytes-on-wire must stay strictly below
      what a full restart would push;
    - the same corruption plan with repair disabled, which must
      reproduce the typed-abort behaviour instead of delivering garbage.
    """
    from repro.faults import FaultPlan, run_chaos

    rows: List[Row] = []
    for rate in (0.0, 0.01, 0.03):
        r = run_chaos(
            "ani-wan",
            total_bytes=256 << 20,
            plan=FaultPlan(seed=0, payload_corrupt_rate=rate),
        )
        if not r.clean:
            raise AssertionError(
                f"chaos run at corrupt rate {rate} was not clean: {r.leaks}"
            )
        assert r.outcome is not None
        rows.append(
            Row(
                f"corrupt rate {rate:.0%}, NACK repair",
                r.outcome.gbps,
                f"repairs={r.repairs} mismatches={r.checksum_mismatches}",
            )
        )

    # A small pipeline keeps the flap timing deterministic: the session
    # is mid-data-phase at t=0.6s and the 30s outage far exceeds the
    # control retry budget.
    flap_cfg = ProtocolConfig(
        block_size=1 << 20, num_channels=2, source_blocks=8, sink_blocks=8
    )
    total = 64 << 20
    r = run_chaos(
        "ani-wan",
        total_bytes=total,
        plan=FaultPlan(seed=1, payload_corrupt_rate=0.01, link_flaps=((0.6, 30.0),)),
        config=flap_cfg,
        resume_attempts=3,
        resume_backoff=35.0,
        horizon=600.0,
    )
    if not r.clean:
        raise AssertionError(f"flap+resume chaos run was not clean: {r.leaks}")
    assert r.outcome is not None
    restart_floor = total + r.resumed_from * flap_cfg.block_size
    rows.append(
        Row(
            "30s flap, SESSION_RESUME",
            r.outcome.gbps,
            f"resumed_from={r.resumed_from} wire={int(r.data_bytes_sent)}"
            f" restart_floor={restart_floor}",
        )
    )

    r = run_chaos(
        "ani-wan",
        total_bytes=total,
        plan=FaultPlan(seed=1, payload_corrupt_rate=0.05),
        config=ProtocolConfig(
            block_size=1 << 20, num_channels=2, source_blocks=8, sink_blocks=8,
            block_repair=False,
        ),
    )
    if not r.clean:
        raise AssertionError(f"repair-off chaos run was not clean: {r.leaks}")
    rows.append(Row("corrupt 5%, repair OFF", 0.0, f"error={r.error}"))
    return rows


def check_resume_ablation(rows: List[Row]) -> None:
    baseline, low, high, resumed, aborted = rows
    details = [dict(kv.split("=") for kv in r.detail.split()) for r in rows]
    # No corruption -> no repairs; corruption -> every mismatch repaired.
    assert int(details[0]["repairs"]) == 0
    assert int(details[1]["repairs"]) > 0
    assert int(details[2]["repairs"]) >= int(details[1]["repairs"])
    for d in details[:3]:
        assert int(d["repairs"]) == int(d["mismatches"])
    # Selective repair is cheap: goodput degrades boundedly with rate.
    assert high.gbps > baseline.gbps * 0.5
    # The resumed run re-sent only the missing suffix: strictly fewer
    # bytes on the wire than restarting the dataset from block zero.
    assert int(details[3]["resumed_from"]) > 0
    assert int(details[3]["wire"]) < int(details[3]["restart_floor"])
    # With repair off the same corruption is fatal, not silent.
    assert details[4]["error"] not in ("None", "")


def render_rows(rows: List[Row], title: str) -> Table:
    table = Table(title, ["configuration", "Gbps", "detail"])
    for r in rows:
        table.add_row(r.label, f"{r.gbps:.2f}", r.detail)
    return table
