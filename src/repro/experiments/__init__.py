"""Experiment drivers: one module per table/figure of the paper.

Each module exposes a ``run(...)`` function that executes the experiment
on freshly-built testbeds and returns structured results (rows/series
matching the paper's figure), plus a ``check(results)`` that asserts the
paper's qualitative findings hold — who wins, by roughly what factor,
where saturation and crossovers fall.  The ``benchmarks/`` tree wraps
these in pytest-benchmark entries; ``EXPERIMENTS.md`` records the
paper-vs-measured comparison.
"""

from repro.experiments import (
    ablations,
    fig3_fig4_semantics,
    fig8_fig9_lan_ftp,
    fig10_wan_ftp,
    fig11_disk,
    table1_testbeds,
)

__all__ = [
    "ablations",
    "fig3_fig4_semantics",
    "fig8_fig9_lan_ftp",
    "fig10_wan_ftp",
    "fig11_disk",
    "table1_testbeds",
]
