"""Figure 11: RFTP memory-to-memory vs memory-to-disk.

Run on the WAN testbed (where the paper's 400 GB RAID file sets lived):
with direct I/O the RAID keeps pace with the 10G stream, so disk and
memory bandwidth match, at slightly higher server CPU.  A POSIX-I/O
variant is included to show what RFTP avoided (and why GridFTP, which
lacked direct I/O, 'is not comparable').
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis import Table
from repro.apps.io import DiskSink, NullSink
from repro.apps.rftp import run_rftp
from repro.core import ProtocolConfig
from repro.testbeds import ani_wan

__all__ = ["run", "check", "render"]

TOTAL_BYTES = 4 << 30
BLOCK_SIZE = 4 << 20


@dataclass(frozen=True)
class Point:
    mode: str  # "memory" | "disk-direct" | "disk-posix"
    gbps: float
    client_cpu_pct: float
    server_cpu_pct: float


def _cfg() -> ProtocolConfig:
    return ProtocolConfig(
        block_size=BLOCK_SIZE,
        num_channels=4,
        source_blocks=48,
        sink_blocks=48,
        writer_threads=4,
    )


def run() -> List[Point]:
    points: List[Point] = []
    tb = ani_wan()
    mem = run_rftp(tb, TOTAL_BYTES, _cfg(), sink=NullSink(tb.dst))
    points.append(Point("memory", mem.gbps, mem.client_cpu_pct, mem.server_cpu_pct))

    tb = ani_wan()
    direct = run_rftp(tb, TOTAL_BYTES, _cfg(), sink=DiskSink(tb.dst, direct=True))
    points.append(
        Point("disk-direct", direct.gbps, direct.client_cpu_pct, direct.server_cpu_pct)
    )

    tb = ani_wan()
    posix = run_rftp(tb, TOTAL_BYTES, _cfg(), sink=DiskSink(tb.dst, direct=False))
    points.append(
        Point("disk-posix", posix.gbps, posix.client_cpu_pct, posix.server_cpu_pct)
    )
    return points


def _sel(points: List[Point], mode: str) -> Point:
    for p in points:
        if p.mode == mode:
            return p
    raise KeyError(mode)


def check(points: List[Point]) -> None:
    mem = _sel(points, "memory")
    direct = _sel(points, "disk-direct")
    posix = _sel(points, "disk-posix")
    # Figure 11: same bandwidth between memory and (direct-I/O) disk...
    assert abs(direct.gbps - mem.gbps) / mem.gbps < 0.1
    # ...with slightly higher server CPU for the disk path.
    assert direct.server_cpu_pct >= mem.server_cpu_pct
    # POSIX writes burn clearly more server CPU than direct I/O.
    assert posix.server_cpu_pct > direct.server_cpu_pct * 1.5


def render(points: List[Point]) -> Table:
    table = Table(
        "Fig. 11 — RFTP memory-to-memory vs memory-to-disk (ANI WAN)",
        ["mode", "Gbps", "client cpu%", "server cpu%"],
    )
    for p in points:
        table.add_row(
            p.mode, f"{p.gbps:.2f}", f"{p.client_cpu_pct:.0f}", f"{p.server_cpu_pct:.0f}"
        )
    return table
