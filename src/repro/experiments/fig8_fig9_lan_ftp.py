"""Figures 8 & 9: GridFTP vs RFTP over the LAN testbeds.

Memory-to-memory transfers across block sizes × stream counts, reporting
aggregate bandwidth and client/server CPU utilisation — GridFTP rows and
RFTP rows side by side, as in the paper's grouped bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.analysis import Table
from repro.apps.gridftp import run_gridftp
from repro.apps.rftp import run_rftp
from repro.core import ProtocolConfig
from repro.testbeds import Testbed

__all__ = ["run", "check", "render", "BLOCK_SIZES", "STREAMS"]

BLOCK_SIZES = (128 << 10, 512 << 10, 2 << 20, 8 << 20)
STREAMS = (1, 8)
#: Bytes moved per point — long enough for steady state, short enough
#: for an interactive benchmark run.
TOTAL_BYTES = 512 << 20


@dataclass(frozen=True)
class Point:
    tool: str  # "gridftp" | "rftp"
    block_size: int
    streams: int
    gbps: float
    client_cpu_pct: float
    server_cpu_pct: float


def _rftp_config(block_size: int, streams: int) -> ProtocolConfig:
    return ProtocolConfig(
        block_size=block_size,
        num_channels=streams,
        source_blocks=32,
        sink_blocks=32,
    )


def run(testbed_factory: Callable[[], Testbed]) -> List[Point]:
    points: List[Point] = []
    for streams in STREAMS:
        for block_size in BLOCK_SIZES:
            g = run_gridftp(
                testbed_factory(), TOTAL_BYTES, streams=streams, block_size=block_size
            )
            points.append(
                Point(
                    "gridftp",
                    block_size,
                    streams,
                    g.gbps,
                    g.client_cpu_pct,
                    g.server_cpu_pct,
                )
            )
            r = run_rftp(
                testbed_factory(), TOTAL_BYTES, _rftp_config(block_size, streams)
            )
            points.append(
                Point(
                    "rftp",
                    block_size,
                    streams,
                    r.gbps,
                    r.client_cpu_pct,
                    r.server_cpu_pct,
                )
            )
    return points


def _sel(points: List[Point], tool: str, block_size: int, streams: int) -> Point:
    for p in points:
        if p.tool == tool and p.block_size == block_size and p.streams == streams:
            return p
    raise KeyError((tool, block_size, streams))


def check(points: List[Point], bare_metal_gbps: float) -> None:
    """The §V-C observations."""
    for streams in STREAMS:
        for bs in BLOCK_SIZES:
            rftp = _sel(points, "rftp", bs, streams)
            grid = _sel(points, "gridftp", bs, streams)
            # RFTP saturates bare metal at every block size...
            assert rftp.gbps > 0.85 * bare_metal_gbps, (bs, streams, rftp.gbps)
            # ...and beats GridFTP decisively in bandwidth.
            assert rftp.gbps > 1.5 * grid.gbps, (bs, streams)
            # GridFTP's host burns more than one core total...
            assert grid.client_cpu_pct > 100.0
            # ...while RFTP needs less CPU than GridFTP to move more data.
            assert rftp.client_cpu_pct < grid.client_cpu_pct
    # RFTP CPU declines as block size grows (per stream count).
    for streams in STREAMS:
        cpu = [_sel(points, "rftp", bs, streams).client_cpu_pct for bs in BLOCK_SIZES]
        assert cpu[-1] < cpu[0]
    # GridFTP cannot exceed roughly half of bare metal on a 40G LAN.
    assert all(
        p.gbps < 0.6 * bare_metal_gbps for p in points if p.tool == "gridftp"
    )


def render(points: List[Point], title: str) -> Table:
    table = Table(
        title,
        ["tool", "streams", "block", "Gbps", "client cpu%", "server cpu%"],
    )
    for p in points:
        table.add_row(
            p.tool,
            p.streams,
            f"{p.block_size >> 10}K",
            f"{p.gbps:.2f}",
            f"{p.client_cpu_pct:.0f}",
            f"{p.server_cpu_pct:.0f}",
        )
    return table
