"""Table I: testbed description — rendered from the encoded configs."""

from __future__ import annotations

from typing import Dict

from repro.analysis import Table
from repro.testbeds import TESTBEDS, Testbed

__all__ = ["run", "check", "render"]


def _row(tb: Testbed) -> Dict[str, str]:
    cpus = {tb.src.spec.cpu_model, tb.dst.spec.cpu_model}
    cores = (
        f"{tb.src.spec.cores}"
        if tb.src.spec.cores == tb.dst.spec.cores
        else f"{tb.src.spec.cores}/{tb.dst.spec.cores}"
    )
    mem = (
        f"{tb.src.spec.mem_bytes >> 30}"
        if tb.src.spec.mem_bytes == tb.dst.spec.mem_bytes
        else f"{tb.src.spec.mem_bytes >> 30}/{tb.dst.spec.mem_bytes >> 30}"
    )
    return {
        "testbed": tb.name,
        "arch": tb.arch.value,
        "cpu": " + ".join(sorted(cpus)),
        "cores": cores,
        "mem_gb": mem,
        "nic_gbps": f"{tb.nic_gbps:g}",
        "tcp_cc": tb.tcp_cc,
        "mtu": str(tb.mtu),
        "rtt_ms": f"{tb.rtt * 1e3:g}",
        "bare_metal_gbps": f"{tb.bare_metal_gbps:g}",
    }


def run() -> Dict[str, Dict[str, str]]:
    """Build every testbed and extract its Table I row."""
    return {name: _row(factory()) for name, factory in TESTBEDS.items()}


def check(rows: Dict[str, Dict[str, str]]) -> None:
    """The paper's Table I values must round-trip through the encodings."""
    assert rows["roce-lan"]["nic_gbps"] == "40"
    assert rows["roce-lan"]["rtt_ms"] == "0.025"
    assert rows["roce-lan"]["tcp_cc"] == "bic"
    assert rows["infiniband-lan"]["mtu"] == "65520"
    assert rows["infiniband-lan"]["rtt_ms"] == "0.013"
    assert float(rows["infiniband-lan"]["bare_metal_gbps"]) < 26
    assert rows["ani-wan"]["nic_gbps"] == "10"
    assert rows["ani-wan"]["rtt_ms"] == "49"
    assert rows["ani-wan"]["cores"] == "16/8"
    assert rows["ani-wan"]["mem_gb"] == "64/24"


def render(rows: Dict[str, Dict[str, str]]) -> Table:
    columns = list(next(iter(rows.values())).keys())
    table = Table("Table I — testbed description", columns)
    for row in rows.values():
        table.add_row(*row.values())
    return table
