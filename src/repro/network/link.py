"""A unidirectional network link with serialisation and propagation."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["Link"]


class Link:
    """One direction of a cable or provisioned circuit.

    Parameters
    ----------
    gbps:
        Line rate in gigabits per second.
    delay:
        One-way propagation delay in seconds.
    mtu:
        Maximum transmission unit in bytes.  Only enforced for callers that
        ask (:meth:`check_mtu`); bulk RDMA transfers are segmented by
        hardware below the granularity we simulate.
    name:
        Label for tracing and error messages.
    """

    def __init__(
        self,
        engine: "Engine",
        gbps: float,
        delay: float = 0.0,
        mtu: int = 9000,
        name: str = "link",
    ) -> None:
        if gbps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("propagation delay must be non-negative")
        self.engine = engine
        self.gbps = gbps
        self.bytes_per_second = gbps * 1e9 / 8.0
        self.delay = delay
        self.mtu = mtu
        self.name = name
        self._wire = Resource(engine, capacity=1)
        #: Fluid busy-until horizon for the wire (absolute sim time).
        #: ``start = max(arrival, free); end = start + service`` is the
        #: same float chain the discrete request/timeout/release path
        #: produces, so fluid completions are bit-identical.
        self._fluid_free = 0.0
        #: How many :class:`~repro.network.fabric.Path` objects serialise
        #: through this link — whole-path chain booking is only sound for
        #: a link owned by exactly one path.
        self._path_uses = 0
        #: Set once a flap is injected: paths stop booking whole-path
        #: chains and fall back to per-hop reservations, which model the
        #: outage window.
        self._flap_seen = False
        #: Per-link escape hatch: ``False`` forces discrete events on
        #: this link even when the engine runs fluid.  Flip it before
        #: traffic flows — the two modes must not share a busy wire.
        self.use_fluid: Optional[bool] = None
        reg = engine.metrics
        labels = {"link": name, "i": reg.sequence("link")}
        self.bytes_sent = reg.counter("link.bytes_sent", **labels)
        self._m_flap_stalls = reg.counter("link.flap_stalls", **labels)
        self._m_latency_spikes = reg.counter("link.latency_spikes", **labels)
        #: Absolute sim time until which the link is down (flap injection).
        self._down_until = 0.0
        #: Optional fault hook ``(nbytes) -> float``: extra serialisation
        #: delay in seconds (latency spike), 0.0 for a clean transit.
        self.fault_hook = None

    # -- backwards-compat stat views ------------------------------------------
    @property
    def flap_stalls(self) -> int:
        return int(self._m_flap_stalls.total)

    @property
    def latency_spikes(self) -> int:
        return int(self._m_latency_spikes.total)

    def fail_for(self, duration: float) -> None:
        """Take the link down for ``duration`` seconds (a flap).

        In-flight serialisation finishes (bits already on the wire); new
        transmissions stall until the link comes back.  Overlapping flaps
        extend the outage.
        """
        if duration <= 0:
            raise ValueError("flap duration must be positive")
        self._down_until = max(self._down_until, self.engine.now + duration)
        self._flap_seen = True
        self.engine.trace("link", "flap", name=self.name, until=self._down_until)

    @property
    def is_down(self) -> bool:
        return self.engine.now < self._down_until

    def serialize(self, nbytes: int) -> Generator:
        """Process generator: occupy the wire while ``nbytes`` serialise.

        Propagation delay is *not* included; multi-hop paths add the summed
        propagation once (see :class:`~repro.network.fabric.Path`).
        """
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        if nbytes == 0:
            return
        engine = self.engine
        if (
            engine.use_fluid
            and self.use_fluid is not False
            and self.fault_hook is None
        ):
            # Fluid fast path: book the wire analytically and sleep once
            # until the completion instant.  The arrival loop replicates
            # the discrete stall loop's float arithmetic (and stall
            # counts) for a flap that is already in force; a flap
            # injected *while* a reservation is parked is absorbed
            # optimistically (bits treated as already scheduled) — the
            # fault injector therefore pins flap-armed links to discrete
            # mode, where the outage semantics are exact.
            arrival = engine.now
            while arrival < self._down_until:
                self._m_flap_stalls.add()
                arrival = arrival + (self._down_until - arrival)
            free = self._fluid_free
            start = arrival if arrival > free else free
            end = start + nbytes / self.bytes_per_second
            self._fluid_free = end
            yield engine.timeout_at(end)
            self.bytes_sent.add(nbytes)
            return
        while self.engine.now < self._down_until:
            self._m_flap_stalls.add()
            yield self.engine.timeout(self._down_until - self.engine.now)
        yield self._wire.request()
        try:
            # A flap may have started while we queued for the wire.
            while self.engine.now < self._down_until:
                self._m_flap_stalls.add()
                yield self.engine.timeout(self._down_until - self.engine.now)
            delay = nbytes / self.bytes_per_second
            if self.fault_hook is not None:
                spike = self.fault_hook(nbytes)
                if spike > 0:
                    self._m_latency_spikes.add()
                    delay += spike
            yield self.engine.timeout(delay)
        finally:
            self._wire.release()
        self.bytes_sent.add(nbytes)

    def check_mtu(self, nbytes: int) -> None:
        """Raise if a single unsegmented datagram exceeds the link MTU."""
        if nbytes > self.mtu:
            raise ValueError(
                f"datagram of {nbytes} bytes exceeds MTU {self.mtu} on {self.name}"
            )

    def utilization(self, since: float, until: float) -> float:
        """Fraction of capacity used over a window (needs ``bytes_sent``)."""
        span = until - since
        if span <= 0:
            return 0.0
        return self.bytes_sent.total / (self.bytes_per_second * span)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Link {self.name} {self.gbps}Gbps delay={self.delay * 1e3:.3f}ms>"
