"""Network fabric: links, multi-hop paths, and testbed topologies.

Timing is modelled at transfer-unit granularity (a block or a control
message), not per Ethernet frame: each unit serialises FIFO through every
link of its path and then experiences the path's propagation delay.
Because links are independent FIFO resources, units pipeline across hops
and steady-state throughput equals the bottleneck link rate — the property
that matters for reproducing the paper's bandwidth curves.
"""

from repro.network.link import Link
from repro.network.fabric import DuplexPath, Path, back_to_back, lan_switched, wan_path

__all__ = [
    "DuplexPath",
    "Link",
    "Path",
    "back_to_back",
    "lan_switched",
    "wan_path",
]
