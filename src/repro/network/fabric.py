"""Multi-hop paths and the three testbed topologies from Table I."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Sequence, Tuple

from repro.network.link import Link
from repro.sim.events import AllOf

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["Path", "DuplexPath", "back_to_back", "lan_switched", "wan_path"]


class Path:
    """An ordered sequence of links from one host's NIC to another's.

    A transfer unit serialises through each link in order (store-and-
    forward at block granularity) and then waits the summed propagation
    delay.  Small control messages use :meth:`deliver_latency` — pure
    latency plus a negligible serialisation on the bottleneck.
    """

    def __init__(self, engine: "Engine", links: Sequence[Link], name: str = "path") -> None:
        if not links:
            raise ValueError("a path needs at least one link")
        self.engine = engine
        self.links: List[Link] = list(links)
        self.name = name
        for link in self.links:
            link._path_uses += 1
        reg = engine.metrics
        labels = {"path": name, "i": reg.sequence("path")}
        self._m_bytes = reg.counter("path.bytes_total", **labels)
        self._m_ctrl = reg.counter("path.ctrl_datagrams", **labels)

    @property
    def bottleneck_gbps(self) -> float:
        """Rate of the slowest link on the path."""
        return min(link.gbps for link in self.links)

    @property
    def bottleneck_bytes_per_second(self) -> float:
        return self.bottleneck_gbps * 1e9 / 8.0

    @property
    def latency(self) -> float:
        """One-way propagation delay (sum over hops), seconds."""
        return sum(link.delay for link in self.links)

    @property
    def mtu(self) -> int:
        return min(link.mtu for link in self.links)

    def transmit(self, nbytes: int) -> Generator:
        """Process generator: move ``nbytes`` along the path.

        Completes when the last byte arrives at the far end.  Consecutive
        transfers pipeline across hops because each link is an independent
        FIFO resource.

        Under fluid mode a path whose links are clean (no faults armed,
        never flapped) and exclusively owned books the whole hop chain
        analytically — ``start_i = max(end_{i-1}, free_i)`` per hop plus
        the summed propagation — as one timer.  The chain evaluates the
        same float expressions hop-by-hop execution would, so arrival
        times are bit-identical; any ineligible link drops the transfer
        to per-hop serialisation.
        """
        engine = self.engine
        if engine.use_fluid and nbytes > 0:
            links = self.links
            chain_ok = True
            for link in links:
                if (
                    link.use_fluid is False
                    or link.fault_hook is not None
                    or link._flap_seen
                    or link._path_uses != 1
                ):
                    chain_ok = False
                    break
            if chain_ok:
                t = engine.now
                for link in links:
                    free = link._fluid_free
                    start = t if t > free else free
                    t = start + nbytes / link.bytes_per_second
                    link._fluid_free = t
                delay = self.latency
                if delay > 0:
                    t = t + delay
                if t > engine.now:
                    yield engine.timeout_at(t)
                for link in links:
                    link.bytes_sent.add(nbytes)
                self._m_bytes.add(nbytes)
                return
        for link in self.links:
            yield from link.serialize(nbytes)
        delay = self.latency
        if delay > 0:
            yield self.engine.timeout(delay)
        self._m_bytes.add(nbytes)

    def transmit_burst(self, nbytes: int, count: int) -> Generator:
        """Process generator: move ``count`` back-to-back units of
        ``nbytes`` down the path, completing when the *last* unit arrives.

        Models a packetized window (a cwnd of MTU-sized segments): units
        pipeline across hops exactly as ``count`` concurrent
        :meth:`transmit` calls issued in order would — unit *j*'s first
        hop starts as soon as the wire frees, not after unit *j-1*
        arrives.  Under fluid mode an eligible path books the entire
        burst analytically as a single timer (this is the fast-forward
        that replaces per-packet events); otherwise the units run as
        real concurrent transfers joined by ``AllOf``.
        """
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        if count < 0:
            raise ValueError("burst count must be non-negative")
        if count == 0:
            return
        if count == 1 or nbytes == 0:
            yield from self.transmit(nbytes)
            return
        engine = self.engine
        if engine.use_fluid:
            links = self.links
            chain_ok = True
            for link in links:
                if (
                    link.use_fluid is False
                    or link.fault_hook is not None
                    or link._flap_seen
                    or link._path_uses != 1
                ):
                    chain_ok = False
                    break
            if chain_ok:
                now = engine.now
                t = now
                for _ in range(count):
                    t = now
                    for link in links:
                        free = link._fluid_free
                        start = t if t > free else free
                        t = start + nbytes / link.bytes_per_second
                        link._fluid_free = t
                delay = self.latency
                if delay > 0:
                    t = t + delay
                if t > now:
                    yield engine.timeout_at(t)
                total = nbytes * count
                for link in links:
                    link.bytes_sent.add(total)
                self._m_bytes.add(total)
                return
        procs = [engine.process(self.transmit(nbytes)) for _ in range(count)]
        yield AllOf(engine, procs)

    def deliver_latency(self, nbytes: int = 64) -> Generator:
        """Process generator: deliver a small control datagram.

        Serialises only on the bottleneck (the rest is negligible at this
        granularity), then propagates.
        """
        rate = self.bottleneck_bytes_per_second
        wait = self.latency + nbytes / rate
        if wait > 0:
            yield self.engine.timeout(wait)
        self._m_ctrl.add()

    def __repr__(self) -> str:  # pragma: no cover
        hops = " -> ".join(link.name for link in self.links)
        return f"<Path {self.name}: {hops}>"


class DuplexPath:
    """A pair of directed paths between two endpoints (full duplex)."""

    def __init__(self, forward: Path, backward: Path) -> None:
        self.forward = forward
        self.backward = backward

    @property
    def rtt(self) -> float:
        """Round-trip propagation delay in seconds."""
        return self.forward.latency + self.backward.latency

    def reversed(self) -> "DuplexPath":
        """The same channel viewed from the other endpoint."""
        return DuplexPath(self.backward, self.forward)


def back_to_back(
    engine: "Engine",
    gbps: float,
    rtt: float,
    mtu: int = 9000,
    name: str = "b2b",
) -> DuplexPath:
    """Two hosts joined by one cable (the RoCE LAN testbed).

    ``rtt`` is the measured round-trip time; each direction gets half.
    """
    half = rtt / 2.0
    fwd = Link(engine, gbps, half, mtu, f"{name}.fwd")
    bwd = Link(engine, gbps, half, mtu, f"{name}.bwd")
    return DuplexPath(
        Path(engine, [fwd], f"{name}.fwd"),
        Path(engine, [bwd], f"{name}.bwd"),
    )


def lan_switched(
    engine: "Engine",
    gbps: float,
    rtt: float,
    mtu: int = 65520,
    name: str = "lan",
) -> DuplexPath:
    """Two hosts through one switch (the InfiniBand QDR LAN testbed)."""
    quarter = rtt / 4.0
    fwd = [
        Link(engine, gbps, quarter, mtu, f"{name}.a-sw"),
        Link(engine, gbps, quarter, mtu, f"{name}.sw-b"),
    ]
    bwd = [
        Link(engine, gbps, quarter, mtu, f"{name}.b-sw"),
        Link(engine, gbps, quarter, mtu, f"{name}.sw-a"),
    ]
    return DuplexPath(
        Path(engine, fwd, f"{name}.fwd"),
        Path(engine, bwd, f"{name}.bwd"),
    )


def wan_path(
    engine: "Engine",
    nic_gbps: float,
    rtt: float,
    backbone_gbps: float = 100.0,
    mtu: int = 9000,
    name: str = "wan",
) -> DuplexPath:
    """A long-haul circuit: 10G host links into a 100G backbone (ANI).

    The backbone carries essentially all the propagation delay; the edge
    links are local.
    """
    half = rtt / 2.0

    def one_way(tag: str) -> Path:
        links = [
            Link(engine, nic_gbps, 1e-6, mtu, f"{name}.{tag}.edge-in"),
            Link(engine, backbone_gbps, max(half - 2e-6, 0.0), mtu, f"{name}.{tag}.core"),
            Link(engine, nic_gbps, 1e-6, mtu, f"{name}.{tag}.edge-out"),
        ]
        return Path(engine, links, f"{name}.{tag}")

    return DuplexPath(one_way("fwd"), one_way("bwd"))
