"""Deterministic jitter shared by every backoff/retry-hint site.

Retries and retry-after hints must de-synchronise (a thousand clients
backing off by exactly the same delay re-collide forever) yet stay
replayable: the same run seed must produce the same schedule, attempt
for attempt, including across crash recovery.  The resolution is the
same scheme :class:`~repro.sim.rng.RandomStreams` uses — hash the seed
and a stable key with BLAKE2b and read the digest as a fraction — so the
jitter is a pure function of *what* is retrying, independent of dispatch
order, wall clock, and how many other retries are in flight.

Users:

- :mod:`repro.sched.broker` — per-(job, file, attempt) retry backoff;
- :mod:`repro.sched.overload` — per-(job, shed-count) ``RETRY_AFTER``
  hints handed to shed submissions.
"""

from __future__ import annotations

import hashlib

__all__ = ["jitter_fraction", "jittered"]


def jitter_fraction(seed: int, *parts: object) -> float:
    """Deterministic fraction in [0, 1) from ``seed`` and a stable key.

    ``parts`` are joined with ``|`` after ``str()`` conversion, so any
    mix of strings and ints works as long as the caller keeps the key
    stable across incarnations (job id, path, attempt — not object ids
    or clock values).
    """
    key = "|".join(str(p) for p in (seed, *parts))
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2.0 ** 64


def jittered(base: float, spread: float, seed: int, *parts: object) -> float:
    """Scale ``base`` by a deterministic factor in [1, 1 + spread].

    The backoff/retry-after idiom both scheduler sites share: ``spread``
    is the jitter fraction knob (0 disables), the factor is derived from
    :func:`jitter_fraction` over the same key space.
    """
    if spread <= 0.0:
        return base
    return base * (1.0 + spread * jitter_fraction(seed, *parts))
