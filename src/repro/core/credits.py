"""Credit-based flow control with proactive feedback (§IV-A, §IV-C).

A *credit* is a token carrying a destination memory region: the sink
block's id, address, and rkey.  The source must hold a credit before it
may RDMA-WRITE a block; the sink replenishes credits through MR_INFO_REP
control messages.

Two policies are implemented:

- **proactive** (the paper's design): the sink pushes an initial batch
  right after session setup and, for every BLOCK_DONE notification,
  grants *up to two* fresh credits.  Granting 2-for-1 doubles the
  source's credit balance each round trip — the "similar to the slow
  start of TCP" ramp that fills a long fat pipe quickly.
- **on-demand** (the ablation, modelling Tian et al. [19]): the sink only
  answers explicit MR_INFO_REQ messages, costing the source a full RTT
  stall every time it runs dry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.core.blocks import SinkBlock
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pool import BlockPool
    from repro.sim.engine import Engine

__all__ = ["Credit", "CreditLedger", "CreditGranter"]


@dataclass(frozen=True)
class Credit:
    """Permission to write one block into a specific sink memory region."""

    block_id: int
    addr: int
    rkey: int

    @staticmethod
    def for_block(block: SinkBlock) -> "Credit":
        return Credit(
            block_id=block.block_id,
            addr=block.mr.buffer.addr,
            rkey=block.mr.rkey,
        )


class CreditLedger:
    """Source-side credit balance.

    Senders wait on :meth:`acquire`; the control-message handler deposits
    batches as MR_INFO_REP messages arrive.
    """

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._credits = Store(engine)
        reg = engine.metrics
        labels = {"i": reg.sequence("credit_ledger")}
        self._m_received = reg.counter("credits.received_total", **labels)
        self._m_flushed = reg.counter("credits.flushed_total", **labels)
        self._m_peak = reg.gauge("credits.peak_balance", **labels)
        reg.gauge_fn("credits.balance", lambda: len(self._credits), **labels)
        reg.gauge_fn("credits.waiters", lambda: self._credits.waiters, **labels)
        #: (time, cumulative credits received) — lets experiments verify
        #: the exponential ramp of the ×2 grant policy.
        self.history: List[tuple] = []
        #: An MR_INFO_REQ is already in flight for this link.  Senders of
        #: *all* sessions sharing the ledger consult this before asking
        #: again, so a zero balance with N concurrent jobs produces one
        #: request, not N.
        self.request_outstanding = False

    # -- backwards-compat stat views ------------------------------------------
    @property
    def total_received(self) -> int:
        return int(self._m_received.total)

    @property
    def peak_balance(self) -> int:
        return int(self._m_peak.value)

    @property
    def flushed(self) -> int:
        """Credits discarded by :meth:`flush` (stale grants to a dead
        session incarnation, dropped at resume)."""
        return int(self._m_flushed.total)

    @property
    def balance(self) -> int:
        return len(self._credits)

    @property
    def waiters(self) -> int:
        return self._credits.waiters

    def deposit(self, credits: List[Credit]) -> None:
        """Add granted credits (from an MR_INFO_REP)."""
        self.request_outstanding = False
        self._credits.put_many(credits)
        self._m_received.add(len(credits))
        self._m_peak.set_max(self.balance)
        self.history.append((self.engine.now, self.total_received))
        self.engine.trace(
            "credits", "deposit",
            granted=len(credits), balance=self.balance, total=self.total_received,
        )

    def refund(self, credits: List[Credit]) -> None:
        """Return credits an aborted session never consumed.

        Unlike :meth:`deposit` this does not count toward
        ``total_received`` or the grant-ramp history — the sink already
        accounted for these when it granted them.
        """
        self._credits.put_many(credits)
        self._m_peak.set_max(self.balance)

    def flush(self) -> int:
        """Drop every held credit; returns how many were discarded.

        A resuming session must not spend credits granted to its dead
        incarnation: the sink revoked those regions when the session was
        reclaimed, so writing into them would clobber blocks the sink
        considers free.  The SESSION_RESUME grant replaces the balance
        wholesale.
        """
        flushed = len(self._credits.items)
        self._credits.items.clear()
        self.request_outstanding = False
        if flushed:
            self._m_flushed.add(flushed)
        if flushed:
            self.engine.trace("credits", "flush", discarded=flushed)
        return flushed

    def acquire(self):
        """Event resolving to one :class:`Credit` (FIFO wait)."""
        return self._credits.get()

    def cancel(self, event) -> bool:
        """Withdraw a pending :meth:`acquire` (timed-out/aborted waiter)."""
        return self._credits.cancel_get(event)


class CreditGranter:
    """Sink-side grant policy.

    The granter owns the decision *which free blocks to advertise and
    when*; actually transmitting the MR_INFO_REP is the sink engine's
    job (it owns the control channel).
    """

    def __init__(
        self,
        pool: "BlockPool[SinkBlock]",
        grant_ratio: int = 2,
        proactive: bool = True,
    ) -> None:
        if grant_ratio < 1:
            raise ValueError("grant_ratio must be >= 1")
        self.pool = pool
        self.grant_ratio = grant_ratio
        self.proactive = proactive
        #: An MR_INFO_REQ arrived while no block was free; the next freed
        #: block must be granted immediately.
        self.pending_request = False
        reg = pool.engine.metrics
        self._m_granted = reg.counter(
            "credits.granted_total", i=reg.sequence("credit_granter")
        )

    @property
    def total_granted(self) -> int:
        return int(self._m_granted.total)

    def _take_free(self, limit: int) -> List[Credit]:
        granted: List[Credit] = []
        while len(granted) < limit:
            block = self.pool.try_get_free_blk()
            if block is None:
                break
            block.advertise()
            granted.append(Credit.for_block(block))
        if granted:
            self._m_granted.add(len(granted))
        return granted

    # -- the three grant triggers of §IV-C -----------------------------------------
    def initial_grant(self, count: int) -> List[Credit]:
        """Session established: push the initial proactive batch."""
        if not self.proactive:
            return []
        return self._take_free(count)

    def on_block_done(self) -> List[Credit]:
        """A completion notification consumed one credit: grant up to
        ``grant_ratio`` replacements (exponential ramp).  Returns an empty
        list when nothing is free — the notification is simply not
        answered, exactly as the paper specifies."""
        if not self.proactive and not self.pending_request:
            return []
        limit = self.grant_ratio if self.proactive else 1
        granted = self._take_free(limit)
        if granted:
            self.pending_request = False
        return granted

    def on_request(self) -> List[Credit]:
        """An explicit MR_INFO_REQ: must answer as soon as one block is
        free; if none is, remember the debt."""
        granted = self._take_free(max(self.grant_ratio, 1))
        if not granted:
            self.pending_request = True
        return granted

    def on_block_freed(self) -> List[Credit]:
        """A consumer returned a block.  If a request is outstanding (or
        the policy is proactive and the source might be starving), satisfy
        it now."""
        if self.pending_request:
            granted = self._take_free(1)
            if granted:
                self.pending_request = False
            return granted
        if self.proactive:
            # Keep the pipeline primed: recycle the freed block as a fresh
            # credit right away.
            return self._take_free(1)
        return []
