"""Typed transfer errors raised by the recovery-hardened middleware.

Every abort path fails the job's ``done`` event with one of these
instead of hanging the engine, so applications (and the chaos harness)
can distinguish *why* a session died and assert that cleanup ran.
"""

from __future__ import annotations

__all__ = [
    "TransferError",
    "NegotiationTimeout",
    "AckTimeout",
    "CreditStarvation",
    "ResendLimitExceeded",
    "StaleSessionReclaimed",
    "EndpointCrashed",
    "DataChannelsLost",
    "MarkerTimeout",
    "PeerDead",
    "TransportFallbackFailed",
    "StuckTransfer",
    "TransferCanceled",
    "InjectedAttemptFault",
]


class TransferError(RuntimeError):
    """Base class for per-session transfer failures.

    Carries the session id so multi-session callers can attribute the
    failure without parsing the message.
    """

    def __init__(self, session_id: int, message: str) -> None:
        super().__init__(f"session {session_id}: {message}")
        self.session_id = session_id


class NegotiationTimeout(TransferError):
    """A negotiation request (BLOCK_SIZE/CHANNELS/SESSION) exhausted its
    retry budget without a reply."""


class AckTimeout(TransferError):
    """DATASET_DONE was (re)sent but no DATASET_DONE_ACK ever arrived."""


class CreditStarvation(TransferError):
    """The source ran dry of credits and repeated MR_INFO_REQs went
    unanswered within the retry budget."""


class ResendLimitExceeded(TransferError):
    """A block's RDMA WRITE failed more than ``max_block_resends`` times."""


class StaleSessionReclaimed(TransferError):
    """The sink's garbage collector reaped a session that had been idle
    longer than ``session_idle_timeout``."""


class EndpointCrashed(TransferError):
    """An injected endpoint crash (source or sink process death) killed
    the session mid-transfer.  Resumable via SESSION_RESUME."""


class MarkerTimeout(TransferError):
    """Repair copies sat WAITING with no restart-marker progress for the
    whole control retry budget — the sink stopped acking (crashed, or the
    path died) while the source's pool was pinned by the repair hold."""


class DataChannelsLost(TransferError):
    """Every data-channel queue pair died; with no surviving channel to
    redistribute in-flight blocks onto, the session cannot degrade
    further and aborts."""


class PeerDead(TransferError):
    """The heartbeat monitor declared the peer dead: a budget of
    consecutive PINGs went unanswered with nothing else inbound.
    Resumable via SESSION_RESUME once the peer returns."""


class TransportFallbackFailed(TransferError):
    """The TCP degradation path could not save the session: the sink
    denied TRANSPORT_FALLBACK, no TCP factory is wired on the link, or
    the fallback stream stalled with zero progress."""


class StuckTransfer(TransferError):
    """The scheduler's progress watchdog killed the session: no
    delivered-byte progress within a multiple of the adaptive RTO, yet
    no lower-layer timeout fired (the slot was wedged, not failing)."""


class TransferCanceled(TransferError):
    """The broker canceled the session deliberately (job cancel or a
    per-job deadline expiring) while the transfer was still in flight."""


class InjectedAttemptFault(TransferError):
    """A chaos-injected failure at the broker's attempt boundary: the
    attempt dies before any transfer traffic (the retry-storm seam —
    cheap, instant failures are what make retry storms metastable)."""
