"""The paper's core contribution: the RDMA data-transfer middleware.

The middleware sits between applications (RFTP, the fio-style engine)
and the simulated verbs transport, and implements the protocol of
Section IV:

- hybrid semantics: a dedicated control queue pair carries
  SEND/RECV control messages, one or more data queue pairs carry bulk
  payload via RDMA WRITE (:mod:`repro.core.channels`),
- registered buffer-block pools with the paper's two finite state
  machines (:mod:`repro.core.blocks`, :mod:`repro.core.pool`),
- credit-based flow control with proactive feedback and an exponential
  grant ramp (:mod:`repro.core.credits`),
- out-of-order reassembly keyed by (session id, sequence number)
  (:mod:`repro.core.reassembly`),
- session negotiation, transfer, and teardown driven by event-handling
  threads (:mod:`repro.core.source_link`, :mod:`repro.core.sink_engine`),
- a public facade (:class:`repro.core.middleware.RdmaMiddleware`).
"""

from repro.core.blocks import SinkBlock, SinkBlockState, SourceBlock, SourceBlockState
from repro.core.config import ProtocolConfig
from repro.core.credits import Credit, CreditGranter, CreditLedger
from repro.core.errors import (
    AckTimeout,
    CreditStarvation,
    DataChannelsLost,
    EndpointCrashed,
    MarkerTimeout,
    NegotiationTimeout,
    PeerDead,
    ResendLimitExceeded,
    StaleSessionReclaimed,
    TransferError,
    TransportFallbackFailed,
)
from repro.core.health import (
    BreakerState,
    ChannelBreaker,
    HealthMonitor,
    RttEstimator,
)
from repro.core.jitter import jitter_fraction, jittered
from repro.core.messages import (
    BlockHeader,
    ControlMessage,
    CtrlType,
    CTRL_MSG_BYTES,
    HEADER_BYTES,
    block_checksum,
)
from repro.core.middleware import RdmaMiddleware, TransferOutcome
from repro.core.pool import BlockPool
from repro.core.reassembly import ReassemblyBuffer
from repro.core.source_link import SourceLink, TransferJob

__all__ = [
    "AckTimeout",
    "BlockHeader",
    "BlockPool",
    "BreakerState",
    "CTRL_MSG_BYTES",
    "ChannelBreaker",
    "ControlMessage",
    "Credit",
    "CreditGranter",
    "CreditLedger",
    "CreditStarvation",
    "CtrlType",
    "DataChannelsLost",
    "EndpointCrashed",
    "HealthMonitor",
    "MarkerTimeout",
    "NegotiationTimeout",
    "PeerDead",
    "ResendLimitExceeded",
    "RttEstimator",
    "StaleSessionReclaimed",
    "TransferError",
    "TransportFallbackFailed",
    "HEADER_BYTES",
    "ProtocolConfig",
    "RdmaMiddleware",
    "ReassemblyBuffer",
    "SinkBlock",
    "SinkBlockState",
    "SourceBlock",
    "SourceBlockState",
    "SourceLink",
    "TransferJob",
    "TransferOutcome",
    "block_checksum",
    "jitter_fraction",
    "jittered",
]
