"""Protocol configuration knobs (and the ablation switches)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProtocolConfig"]


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunable parameters of the middleware protocol.

    Defaults follow the paper's recommendations: large blocks, several
    parallel data channels, a deep pool of in-flight blocks, proactive
    credits with the ×2 "slow-start" grant ramp.
    """

    #: Negotiated payload block size in bytes.
    block_size: int = 4 * 1024 * 1024
    #: Number of parallel data-channel queue pairs.
    num_channels: int = 4
    #: Source-side registered block pool size (bounds blocks in flight).
    source_blocks: int = 32
    #: Sink-side registered block pool size (bounds outstanding credits).
    sink_blocks: int = 32
    #: Max credits the sink grants per BLOCK_DONE notification (2 gives the
    #: exponential ramp of §IV-C; 1 gives a linear, ablation-only ramp).
    credit_grant_ratio: int = 2
    #: Credits pushed unprompted right after session setup.
    initial_credits: int = 2
    #: Proactive feedback (the paper's design).  False reproduces the
    #: request/response credit scheme of Tian et al. [19]: the source must
    #: spend an RTT asking whenever it runs dry.
    proactive_credits: bool = True
    #: Number of data-loading threads at the source.
    reader_threads: int = 2
    #: Number of consumer threads at the sink.
    writer_threads: int = 2
    #: Per-QP send queue depth.
    send_queue_depth: int = 512
    #: Control QP receive ring size.
    ctrl_recv_depth: int = 128
    #: Base timeout for control-plane request/reply exchanges (negotiation,
    #: MR_INFO_REQ when starved, DATASET_DONE_ACK).  Doubled per retry.
    #: Once the RTT estimator has samples it replaces this as the per-
    #: attempt base; before any sample, adaptive paths degrade to it.
    ctrl_timeout: float = 0.25
    #: Multiplier applied to ctrl_timeout after each failed attempt.
    ctrl_backoff: float = 2.0
    #: Ceiling on any single control-plane timeout step: the exponential
    #: backoff (previously unbounded) and the adaptive RTO both clamp
    #: here.  The default equals ctrl_timeout * ctrl_backoff^ctrl_retries
    #: with the stock knobs, so default behaviour is unchanged.
    ctrl_timeout_max: float = 8.0
    #: Floor under the adaptive RTO, so a µs-RTT LAN estimate can never
    #: collapse a timeout below the scheduler/processing noise floor.
    ctrl_timeout_min: float = 100e-6
    #: Retries (beyond the first attempt) before a control exchange aborts
    #: the session with a typed error.
    ctrl_retries: int = 5
    #: RDMA WRITE failures tolerated per block before the session aborts.
    max_block_resends: int = 16
    #: Sink-side: a session with no traffic for this long is reclaimed.
    session_idle_timeout: float = 5.0
    #: Sink-side garbage-collector sweep period.
    gc_interval: float = 0.5
    #: Stamp a per-block checksum into every BlockHeader and verify it at
    #: the sink before delivering the block (end-to-end integrity).
    checksum_blocks: bool = True
    #: Repair corrupt blocks via BLOCK_NACK selective re-send from the
    #: source's still-WAITING copy.  Requires ``checksum_blocks``.  When
    #: False a detected mismatch is counted and the block withheld, so
    #: the session dies with a typed error instead of delivering garbage.
    block_repair: bool = True
    #: Sink-side restart-marker cadence: one BLOCK_MARKER (cumulative
    #: consumed-prefix ack) per this many consumed blocks.  Markers both
    #: release the source's repair copies and anchor SESSION_RESUME.
    marker_interval_blocks: int = 4
    #: Accept SESSION_RESUME_REQ re-attachments at the sink.
    session_resume: bool = True
    #: Control-channel PING/PONG liveness probes on both engines, so an
    #: idle peer's death is detected in bounded time instead of at the
    #: next request.
    heartbeats: bool = True
    #: Clamp band for the adaptive heartbeat cadence.
    heartbeat_interval_min: float = 0.05
    heartbeat_interval_max: float = 2.0
    #: Heartbeat cadence in RTOs (clamped to the band above).
    heartbeat_rto_multiplier: float = 8.0
    #: Consecutive unanswered heartbeat intervals tolerated before the
    #: peer is declared dead (typed PeerDead abort / sink reclaim).
    heartbeat_misses: int = 3
    #: Consecutive completion errors that trip a data channel's circuit
    #: breaker OPEN (quarantined from the send rotation).
    breaker_failures: int = 3
    #: Floor on the breaker's quarantine cooldown, seconds.
    breaker_cooldown_min: float = 0.1
    #: Adaptive cooldown in RTOs (the larger of this and the floor wins).
    breaker_rto_multiplier: float = 8.0
    #: Sink-side idle GC patience in RTOs; the configured
    #: session_idle_timeout stays the floor, so on a long path sessions
    #: are reclaimed later, never sooner.
    idle_rto_multiplier: float = 64.0
    #: Degrade to a TCP connection through the same fabric when every
    #: data channel is dead (instead of the DataChannelsLost abort),
    #: resuming from the restart marker with checksums still verified.
    tcp_fallback: bool = True
    #: While degraded, periodically try to re-establish a data channel
    #: and promote the session back to RDMA (half-open probe WRITE).
    fallback_repromote: bool = True
    #: Sink-side cap on per-session bookkeeping retained after a session
    #: finishes or is reclaimed (the idempotent-ack ledger, restart-marker
    #: anchors, accounting epochs).  On a long-lived link multiplexing
    #: many short sessions this history previously grew without bound;
    #: the oldest retired session's state is evicted beyond the cap.
    sink_session_history: int = 4096
    #: Connection-scaling mode: sessions to the same (host, port) lease
    #: shared data channels from one per-host QP pool whose receive side
    #: is a shared receive queue, instead of each opening ``num_channels``
    #: dedicated QPs and a dedicated block pool.  Escape hatch like
    #: ``use_fluid``/``use_wheel``: with the default False every code
    #: path, metric label and event order is bit-identical to the
    #: dedicated-QP protocol.
    use_srq: bool = False
    #: Shared receive-WQE budget per host pool (``use_srq`` only).  Sized
    #: for aggregate arrival rate, not per-connection: this bounds pinned
    #: receive memory regardless of how many sessions are multiplexed.
    srq_depth: int = 256
    #: Data QPs in the shared per-host pool (``use_srq`` only).  Replaces
    #: per-link ``num_channels`` fan-out: every session on the host pair
    #: stripes over these.
    qp_pool_size: int = 4
    #: Concurrent session leases one host pool hands out (``use_srq``
    #: only).  This is what the scheduler's door caps derive from — real
    #: pool capacity, not a config constant.
    pool_sessions: int = 32
    #: Eager/rendezvous switch (``use_srq`` only): a session whose block
    #: payloads fit under this many bytes rides SEND/RECV on the shared
    #: channels — one shared WQE per block, no MR exchange, no credit
    #: round trips.  Larger sessions keep the rendezvous path: credits
    #: carrying (addr, rkey) and dedicated RDMA WRITEs.  0 disables the
    #: eager path entirely.
    eager_threshold: int = 1024 * 1024

    def __post_init__(self) -> None:
        if self.block_size < 4096:
            raise ValueError("block size below 4 KiB is not supported")
        if self.num_channels < 1:
            raise ValueError("need at least one data channel")
        if self.source_blocks < 2 or self.sink_blocks < 2:
            raise ValueError("pools need at least two blocks")
        if self.credit_grant_ratio < 1:
            raise ValueError("credit_grant_ratio must be >= 1")
        if self.initial_credits < 1:
            raise ValueError("initial_credits must be >= 1")
        if self.initial_credits > self.sink_blocks:
            raise ValueError("initial_credits cannot exceed the sink pool")
        if self.reader_threads < 1 or self.writer_threads < 1:
            raise ValueError("need at least one reader and one writer thread")
        if self.ctrl_timeout <= 0:
            raise ValueError("ctrl_timeout must be positive")
        if self.ctrl_backoff < 1.0:
            raise ValueError("ctrl_backoff must be >= 1")
        if self.ctrl_retries < 0:
            raise ValueError("ctrl_retries must be >= 0")
        if self.max_block_resends < 1:
            raise ValueError("max_block_resends must be >= 1")
        if self.session_idle_timeout <= 0 or self.gc_interval <= 0:
            raise ValueError("GC timings must be positive")
        if self.block_repair and not self.checksum_blocks:
            raise ValueError("block_repair requires checksum_blocks")
        if self.marker_interval_blocks < 1:
            raise ValueError("marker_interval_blocks must be >= 1")
        if self.ctrl_timeout_max < self.ctrl_timeout:
            raise ValueError("ctrl_timeout_max must be >= ctrl_timeout")
        if not 0 < self.ctrl_timeout_min <= self.ctrl_timeout:
            raise ValueError("need 0 < ctrl_timeout_min <= ctrl_timeout")
        if self.heartbeat_interval_min <= 0:
            raise ValueError("heartbeat_interval_min must be positive")
        if self.heartbeat_interval_max < self.heartbeat_interval_min:
            raise ValueError(
                "heartbeat_interval_max must be >= heartbeat_interval_min"
            )
        if self.heartbeat_rto_multiplier <= 0:
            raise ValueError("heartbeat_rto_multiplier must be positive")
        if self.heartbeat_misses < 1:
            raise ValueError("heartbeat_misses must be >= 1")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.breaker_cooldown_min <= 0:
            raise ValueError("breaker_cooldown_min must be positive")
        if self.breaker_rto_multiplier <= 0:
            raise ValueError("breaker_rto_multiplier must be positive")
        if self.idle_rto_multiplier <= 0:
            raise ValueError("idle_rto_multiplier must be positive")
        if self.sink_session_history < 1:
            raise ValueError("sink_session_history must be >= 1")
        if self.srq_depth < 1:
            raise ValueError("srq_depth must be >= 1")
        if self.qp_pool_size < 1:
            raise ValueError("qp_pool_size must be >= 1")
        if self.pool_sessions < 1:
            raise ValueError("pool_sessions must be >= 1")
        if self.eager_threshold < 0:
            raise ValueError("eager_threshold must be >= 0")
