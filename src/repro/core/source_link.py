"""Multi-session source link: one connection set, many transfer jobs.

§IV-C: "The application probably issues multiple data transfer tasks
simultaneously.  Each task is associated with a global session identifier
which is available in both the source and sink."  A :class:`SourceLink`
owns the shared per-connection state — the control channel, the parallel
data QPs, the registered block pool, and the credit ledger — and runs any
number of concurrent or sequential :meth:`transfer` jobs over it.  The
sink routes by session id and reassembles each session independently.

Shared threads (Figure 2's pool):

- one *control thread* routes inbound messages: credit grants feed the
  shared ledger, negotiation replies and DATASET_DONE_ACKs go to their
  session's job;
- one *completion thread* reaps WRITE completions off the shared send CQ
  and routes them to the owning job by work-request id.

Per-job threads: readers (load payload into blocks) and a sender (pair
LOADED blocks with credits, post RDMA WRITEs).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Dict, Generator, Optional, Tuple

from repro.core.blocks import SourceBlock
from repro.core.channels import ControlChannel, DataChannels
from repro.core.config import ProtocolConfig
from repro.core.credits import Credit, CreditLedger
from repro.core.messages import BlockHeader, ControlMessage, CtrlType
from repro.core.pool import BlockPool
from repro.sim.events import Event
from repro.sim.resources import Store
from repro.verbs.cq import CompletionChannel, CompletionQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.host import Host
    from repro.sim.engine import Engine

__all__ = ["SourceLink", "TransferJob"]

_REPLY_TYPES = (
    CtrlType.BLOCK_SIZE_REP,
    CtrlType.CHANNELS_REP,
    CtrlType.SESSION_REP,
    CtrlType.DATASET_DONE_ACK,
)


class TransferJob:
    """One dataset transfer (one session) running on a link."""

    def __init__(
        self,
        link: "SourceLink",
        session_id: int,
        total_bytes: int,
        data_source: Any,
    ) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.link = link
        self.session_id = session_id
        self.total_bytes = total_bytes
        self.data_source = data_source
        self.block_size = link.config.block_size
        self.total_blocks = -(-total_bytes // self.block_size)
        self.completed_blocks = 0
        self.resends = 0
        #: Per-block source-side latency: post of the RDMA WRITE to the
        #: polled completion (includes the RC ACK round trip), seconds.
        self.block_latencies: list = []
        self._post_times: Dict[int, float] = {}
        self._next_load_seq = 0
        self._loaded: Store = Store(link.engine)
        self._replies: Dict[CtrlType, Store] = {
            t: Store(link.engine) for t in _REPLY_TYPES
        }
        #: Succeeds (with this job) when the sink acknowledges the dataset.
        self.done: Event = Event(link.engine)
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def _block_extent(self, seq: int) -> Tuple[int, int]:
        offset = seq * self.block_size
        length = min(self.block_size, self.total_bytes - offset)
        return offset, length


class SourceLink:
    """Shared sender-side state for one middleware connection."""

    def __init__(
        self,
        host: "Host",
        ctrl: ControlChannel,
        data: DataChannels,
        data_send_cq: CompletionQueue,
        pool: BlockPool[SourceBlock],
        config: ProtocolConfig,
    ) -> None:
        self.host = host
        self.engine: "Engine" = host.engine
        self.ctrl = ctrl
        self.data = data
        self.data_send_cq = data_send_cq
        self.data_cc = CompletionChannel(data_send_cq)
        self.pool = pool
        self.config = config
        self.ledger = CreditLedger(self.engine)
        self.jobs: Dict[int, TransferJob] = {}
        self.mr_requests_sent = 0
        self._wr_ids = itertools.count()
        self._inflight: Dict[int, Tuple[TransferJob, SourceBlock, Credit]] = {}
        self._active_jobs = 0
        self._started = False

    # -- public API --------------------------------------------------------------
    def transfer(self, data_source: Any, total_bytes: int, session_id: int):
        """Process event resolving to the finished :class:`TransferJob`."""
        job = TransferJob(self, session_id, total_bytes, data_source)
        if session_id in self.jobs:
            raise ValueError(f"session {session_id} already active on this link")
        self.jobs[session_id] = job
        self._active_jobs += 1
        if not self._started:
            self._started = True
            self.engine.process(self._control_thread())
            self.engine.process(self._completion_thread())

        def _run() -> Generator:
            thread = self.host.thread(f"src-nego-{session_id}", "app")
            yield from self._negotiate(thread, job)
            job.started_at = self.engine.now
            for i in range(self.config.reader_threads):
                self.engine.process(self._reader_thread(job, i))
            self.engine.process(self._sender_thread(job))
            finished: TransferJob = yield job.done
            return finished

        return self.engine.process(_run())

    # -- negotiation (phase 1 of §IV-C) ---------------------------------------------
    def _negotiate(self, thread, job: TransferJob) -> Generator:
        sid = job.session_id
        yield from self.ctrl.send(
            thread, ControlMessage(CtrlType.BLOCK_SIZE_REQ, sid, job.block_size)
        )
        reply: ControlMessage = yield job._replies[CtrlType.BLOCK_SIZE_REP].get()
        if not reply.data:
            raise RuntimeError(f"sink rejected block size {job.block_size}")
        yield from self.ctrl.send(
            thread, ControlMessage(CtrlType.CHANNELS_REQ, sid, len(self.data))
        )
        reply = yield job._replies[CtrlType.CHANNELS_REP].get()
        if not reply.data:
            raise RuntimeError("sink rejected channel count")
        yield from self.ctrl.send(
            thread, ControlMessage(CtrlType.SESSION_REQ, sid, job.total_bytes)
        )
        reply = yield job._replies[CtrlType.SESSION_REP].get()
        accepted, initial_credits = reply.data
        if not accepted:
            raise RuntimeError("sink rejected session")
        if initial_credits:
            self.ledger.deposit(list(initial_credits))

    # -- per-job threads -----------------------------------------------------------
    def _reader_thread(self, job: TransferJob, index: int) -> Generator:
        thread = self.host.thread(f"src-reader{job.session_id}.{index}", "app")
        while True:
            if job._next_load_seq >= job.total_blocks:
                return
            seq = job._next_load_seq
            job._next_load_seq += 1
            offset, length = job._block_extent(seq)
            block: SourceBlock = yield self.pool.get_free_blk()
            block.reserve()
            payload = yield from job.data_source.read(thread, length, seq)
            header = BlockHeader(job.session_id, seq, offset, length)
            block.loaded(header, payload)
            yield job._loaded.put(block)

    def _sender_thread(self, job: TransferJob) -> Generator:
        thread = self.host.thread(f"src-sender{job.session_id}", "app")
        while True:
            block: SourceBlock = yield job._loaded.get()
            if block is None:
                return  # all blocks of this job completed
            if self.ledger.balance == 0:
                # Out of credits: beg the sink (the RTT-costing situation
                # proactive feedback exists to avoid).
                self.mr_requests_sent += 1
                yield from self.ctrl.send(
                    thread, ControlMessage(CtrlType.MR_INFO_REQ, job.session_id)
                )
            credit: Credit = yield self.ledger.acquire()
            assert block.header is not None
            block.sending()
            wr_id = next(self._wr_ids)
            self._inflight[wr_id] = (job, block, credit)
            job._post_times[wr_id] = self.engine.now
            yield from self.data.post_write(
                thread, block, credit, block.header, wr_id=wr_id
            )
            block.waiting()

    # -- shared threads -------------------------------------------------------------
    def _completion_thread(self) -> Generator:
        thread = self.host.thread("src-completion", "app")
        while True:
            yield self.data_cc.wait(thread)
            wcs = yield self.data_send_cq.poll(thread, max_entries=64)
            for wc in wcs:
                job, block, credit = self._inflight.pop(wc.wr_id)
                posted_at = job._post_times.pop(wc.wr_id, None)
                if posted_at is not None and wc.ok:
                    job.block_latencies.append(self.engine.now - posted_at)
                if wc.ok:
                    yield from self.ctrl.send(
                        thread,
                        ControlMessage(
                            CtrlType.BLOCK_DONE,
                            job.session_id,
                            (credit.block_id, block.header),
                        ),
                    )
                    block.release()
                    self.pool.put_free_blk(block)
                    job.completed_blocks += 1
                    if job.completed_blocks == job.total_blocks:
                        yield job._loaded.put(None)  # release the sender
                        yield from self.ctrl.send(
                            thread,
                            ControlMessage(
                                CtrlType.DATASET_DONE,
                                job.session_id,
                                job.total_bytes,
                            ),
                        )
                else:
                    # Failed WRITE (Fig. 6: WAITING → LOADED re-send).
                    # The payload never landed, so the credit's region is
                    # still empty — re-post immediately with the SAME
                    # credit.  Routing it back through the ledger would
                    # let fresh blocks steal it and, with a fully
                    # advertised sink pool, leave the retransmission
                    # unable to ever acquire a region (head-of-line
                    # deadlock).
                    job.resends += 1
                    block.resend()
                    block.sending()
                    wr_id = next(self._wr_ids)
                    self._inflight[wr_id] = (job, block, credit)
                    job._post_times[wr_id] = self.engine.now
                    assert block.header is not None
                    yield from self.data.post_write(
                        thread, block, credit, block.header, wr_id=wr_id
                    )
                    block.waiting()

    def _control_thread(self) -> Generator:
        thread = self.host.thread("src-ctrl", "app")
        while True:
            msgs = yield from self.ctrl.receive(thread)
            for msg in msgs:
                if msg.type is CtrlType.MR_INFO_REP:
                    self.ledger.deposit(list(msg.data))
                    continue
                job = self.jobs.get(msg.session_id)
                if job is None:  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"control message for unknown session {msg.session_id}"
                    )
                if msg.type is CtrlType.DATASET_DONE_ACK:
                    job.finished_at = self.engine.now
                    self._active_jobs -= 1
                    job.done.succeed(job)
                elif msg.type in job._replies:
                    yield job._replies[msg.type].put(msg)
                else:  # pragma: no cover - defensive
                    raise RuntimeError(f"unexpected control message {msg.type}")
