"""Multi-session source link: one connection set, many transfer jobs.

§IV-C: "The application probably issues multiple data transfer tasks
simultaneously.  Each task is associated with a global session identifier
which is available in both the source and sink."  A :class:`SourceLink`
owns the shared per-connection state — the control channel, the parallel
data QPs, the registered block pool, and the credit ledger — and runs any
number of concurrent or sequential :meth:`transfer` jobs over it.  The
sink routes by session id and reassembles each session independently.

Shared threads (Figure 2's pool):

- one *control thread* routes inbound messages: credit grants feed the
  shared ledger, negotiation replies and DATASET_DONE_ACKs go to their
  session's job;
- one *completion thread* reaps WRITE completions off the shared send CQ
  and routes them to the owning job by work-request id.

Per-job threads: readers (load payload into blocks) and a sender (pair
LOADED blocks with credits, post RDMA WRITEs).

Recovery model: every control-plane exchange (negotiation requests,
MR_INFO_REQ when starved, the DATASET_DONE/ACK handshake) carries a
timeout with exponential backoff and a bounded retry budget; each block's
RDMA WRITE may fail at most ``max_block_resends`` times.  Exhausting any
budget aborts the session *gracefully*: pool blocks return to the free
list, unconsumed credits are refunded to the shared ledger, and the job's
``done`` event fails with a typed :class:`~repro.core.errors.TransferError`
instead of hanging the engine.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Dict, Generator, Optional, Tuple

from repro.core.blocks import SourceBlock
from repro.core.channels import ControlChannel, DataChannels, NoLiveChannelError
from repro.core.config import ProtocolConfig
from repro.core.credits import Credit, CreditLedger
from repro.core.errors import (
    AckTimeout,
    CreditStarvation,
    DataChannelsLost,
    EndpointCrashed,
    MarkerTimeout,
    NegotiationTimeout,
    PeerDead,
    ResendLimitExceeded,
    TransferError,
    TransportFallbackFailed,
)
from repro.core.health import ChannelBreaker, HealthMonitor
from repro.core.messages import (
    BlockHeader,
    ControlMessage,
    CtrlType,
    block_checksum,
)
from repro.core.pool import BlockPool
from repro.sim.events import AnyOf, Event
from repro.sim.resources import Store
from repro.verbs.cq import CompletionChannel, CompletionQueue
from repro.verbs.qp import QpState
from repro.verbs.wr import WcStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.host import Host
    from repro.sim.engine import Engine

__all__ = ["SourceLink", "TransferJob"]

_REPLY_TYPES = (
    CtrlType.BLOCK_SIZE_REP,
    CtrlType.CHANNELS_REP,
    CtrlType.SESSION_REP,
    CtrlType.SESSION_RESUME_REP,
    CtrlType.DATASET_DONE_ACK,
    CtrlType.TRANSPORT_FALLBACK_REP,
    CtrlType.TRANSPORT_RESTORE_REP,
)


class TransferJob:
    """One dataset transfer (one session) running on a link."""

    def __init__(
        self,
        link: "SourceLink",
        session_id: int,
        total_bytes: int,
        data_source: Any,
    ) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.link = link
        self.session_id = session_id
        self.total_bytes = total_bytes
        self.data_source = data_source
        self.block_size = link.config.block_size
        self.total_blocks = -(-total_bytes // self.block_size)
        #: Eager transport (srq mode): blocks ride SEND/RECV on the shared
        #: channels — no credits, no MR exchange, no BLOCK_DONE.  Decided
        #: per session at :meth:`SourceLink.transfer`; rendezvous (RDMA
        #: WRITE against credited regions) stays the default.
        self.eager = False
        #: First block this incarnation sends.  0 for a fresh session; a
        #: resumed session starts at the sink's restart marker and never
        #: re-reads (or re-sends) the prefix below it.
        self.start_seq = 0
        # Session-labelled registry counters are cumulative across every
        # incarnation reusing this session id (resumes, id reuse after
        # completion); the plain attributes below stay per-incarnation, so
        # both are maintained: the attribute for job-local views and tests,
        # the counter for exported snapshots.
        reg = link.engine.metrics
        labels = {"link": link._m_idx, "session": session_id}
        self._m_completed = reg.counter("source.blocks_completed", **labels)
        self._m_resends = reg.counter("source.block_resends", **labels)
        self._m_repairs = reg.counter("source.block_repairs", **labels)
        self._m_ctrl_retries = reg.counter("source.ctrl_retries", **labels)
        self._m_fallback_blocks = reg.counter("source.fallback_blocks", **labels)
        self._m_latency = reg.histogram("source.block_latency_seconds", **labels)
        self.completed_blocks = 0
        self.resends = 0
        #: NACK-driven selective re-sends performed.
        self.repairs = 0
        #: Control-plane retransmissions (timed-out requests resent).
        self.ctrl_retries = 0
        #: seq -> completed block held WAITING as a repair copy until a
        #: restart marker (cumulative consumed-prefix ack) or the
        #: DATASET_DONE_ACK covers it.  Only populated when
        #: ``config.block_repair``; a seq whose repair re-send is in
        #: flight is temporarily absent (ownership sits in _inflight).
        self.unacked: Dict[int, SourceBlock] = {}
        #: Highest cumulative restart marker received from the sink.
        self.marker = 0
        #: seq -> BLOCK_NACK repair attempts (bounded by max_block_resends).
        self.nack_attempts: Dict[int, int] = {}
        #: Per-block source-side latency: post of the RDMA WRITE to the
        #: polled completion (includes the RC ACK round trip), seconds.
        self.block_latencies: list = []
        self._post_times: Dict[int, float] = {}
        self._next_load_seq = 0
        self._loaded: Store = Store(link.engine)
        self._replies: Dict[CtrlType, Store] = {
            t: Store(link.engine) for t in _REPLY_TYPES
        }
        #: Succeeds (with this job) when the sink acknowledges the dataset.
        self.done: Event = Event(link.engine)
        #: Succeeds when the session aborts — always success-typed so it
        #: can sit inside AnyOf waits without failing them; the *typed*
        #: failure goes through ``done``.
        self._abort: Event = Event(link.engine)
        self.aborted = False
        #: Succeeds when this incarnation's RDMA-plane threads (readers,
        #: sender, credit waits) must stop: on abort, and on degradation
        #: to the TCP fallback path.  Replaced with a fresh event when
        #: the session is promoted back to RDMA.
        self._halt: Event = Event(link.engine)
        #: True while the TCP fallback carries this session.
        self.fallback_active = False
        #: Set by the re-promotion watchdog once an RDMA channel is back.
        self.repromote_ready = False
        #: True once the fallback pump has queued every remaining block
        #: (the stall watchdog stands down; the ack watchdog takes over).
        self._fallback_pump_done = False
        self._fallback_stream = None
        #: Times the session degraded to TCP / blocks the fallback
        #: carried / times it was promoted back to RDMA.
        self.fallbacks = 0
        self.fallback_blocks = 0
        self.repromotions = 0
        #: seq -> time its first BLOCK_DONE was sent (None once re-sent:
        #: Karn's rule discards ambiguous samples).  Restart markers
        #: close the loop and feed the link's RTT estimator.
        self._done_sent_at: Dict[int, Optional[float]] = {}
        self.error: Optional[TransferError] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # -- incarnation-local increments that also feed the registry --------------
    def _count_completed(self) -> None:
        self.completed_blocks += 1
        self._m_completed.add()

    def _count_resend(self) -> None:
        self.resends += 1
        self._m_resends.add()

    def _count_repair(self) -> None:
        self.repairs += 1
        self._m_repairs.add()

    def _count_ctrl_retry(self) -> None:
        self.ctrl_retries += 1
        self._m_ctrl_retries.add()

    def _count_fallback_block(self) -> None:
        self.fallback_blocks += 1
        self._m_fallback_blocks.add()

    @property
    def halted(self) -> bool:
        """RDMA-plane threads must stop (abort or TCP degradation)."""
        return self.aborted or self.fallback_active

    @property
    def blocks_to_send(self) -> int:
        """Blocks this incarnation owes the sink."""
        return self.total_blocks - self.start_seq

    def _block_extent(self, seq: int) -> Tuple[int, int]:
        offset = seq * self.block_size
        length = min(self.block_size, self.total_bytes - offset)
        return offset, length


class SourceLink:
    """Shared sender-side state for one middleware connection."""

    def __init__(
        self,
        host: "Host",
        ctrl: ControlChannel,
        data: DataChannels,
        data_send_cq: CompletionQueue,
        pool: BlockPool[SourceBlock],
        config: ProtocolConfig,
        host_pool=None,
    ) -> None:
        self.host = host
        self.engine: "Engine" = host.engine
        self.ctrl = ctrl
        self.data = data
        self.data_send_cq = data_send_cq
        #: Shared :class:`~repro.core.channels.HostChannelPool` this link
        #: rides (srq mode), or ``None`` for the dedicated-QP protocol.
        #: A pooled link does not own the send CQ: the pool's dispatcher
        #: holds the only completion channel and routes completions into
        #: ``_wc_inbox`` by wr_id.
        self._host_pool = host_pool
        if host_pool is None:
            self.data_cc = CompletionChannel(data_send_cq)
            self._wc_inbox = None
        else:
            self.data_cc = None
            self._wc_inbox = Store(self.engine)
        self.pool = pool
        self.config = config
        self.ledger = CreditLedger(self.engine)
        #: Adaptive RTT estimation and peer liveness — one per link; the
        #: control path is shared by every session riding it.
        self.health = HealthMonitor(self.engine, config)
        #: Optional zero-arg factory returning a connected
        #: :class:`~repro.tcp.connection.TcpConnection` through the same
        #: fabric, wired by the middleware when the testbed has a TCP
        #: path.  Without it the link cannot degrade, and total channel
        #: loss stays a :class:`DataChannelsLost` abort.
        self.tcp_factory = None
        #: Optional zero-arg channel re-establishment hook (the
        #: middleware's reopen_channel bound to this link), used by the
        #: re-promotion watchdog to bring RDMA back during fallback.
        self._reopen = None
        self.jobs: Dict[int, TransferJob] = {}
        reg = self.engine.metrics
        self._m_idx = reg.sequence("source_link")
        labels = {"link": self._m_idx}
        self._m_mr_requests = reg.counter("source.mr_requests", **labels)
        self._m_stray = reg.counter("source.stray_messages", **labels)
        self._m_crashes = reg.counter("source.crashes", **labels)
        self._m_pings = reg.counter("source.pings", **labels)
        self._m_pongs = reg.counter("source.pongs", **labels)
        self._m_peer_dead = reg.counter("source.peer_dead", **labels)
        self._m_breaker_trips = reg.counter("source.breaker_trips", **labels)
        self._m_fallbacks = reg.counter("source.fallbacks", **labels)
        self._m_repromotions = reg.counter("source.repromotions", **labels)
        reg.gauge_fn("source.active_jobs", lambda: self._active_jobs, **labels)
        reg.gauge_fn("source.inflight_wrs", lambda: len(self._inflight), **labels)
        reg.gauge_fn("source.rto_seconds", lambda: self.health.rtt.rto, **labels)
        #: qp_num -> circuit breaker, created lazily as channels carry
        #: traffic; survives detach/adopt so a flapping QP that comes
        #: back keeps its quarantine history.
        self._breakers: Dict[int, ChannelBreaker] = {}
        if host_pool is None:
            data.breaker_lookup = self._breaker_for
        self._hb_running = False
        #: Pooled links draw wr_ids from the pool-wide space (the shared
        #: send CQ needs collision-free routing across links).
        self._wr_ids = itertools.count() if host_pool is None else host_pool.wr_ids
        #: wr_id -> (job, block, credit, failed_attempts, is_repair).
        self._inflight: Dict[
            int, Tuple[TransferJob, SourceBlock, Credit, int, bool]
        ] = {}
        self._active_jobs = 0
        self._started = False
        #: True once a full negotiation (block size + channel count) has
        #: succeeded on this link.  Both parameters are link-level: a
        #: later session asking for the same ones can skip straight to
        #: SESSION_REQ (``transfer(reuse_negotiation=True)``), trading
        #: three control round trips for one — the difference between one
        #: RTT and three per file on a WAN small-file run.
        self._negotiated = False
        #: Data QPs in creation order, for fault injection by index — the
        #: live rotation in ``self.data`` shrinks as channels die.
        self._all_data_qps = list(data.qps)

    # -- backwards-compat stat views ------------------------------------------
    @property
    def session_load(self) -> int:
        """Live transfer sessions multiplexed on this link right now.

        The scheduler's session-concurrency watermark seam: each session
        holds QP/credit/pinned-pool state, so this is what brownout
        watches (alongside :attr:`BlockPool.occupancy`) when deciding to
        shrink per-door concurrency.
        """
        return len(self.jobs)

    @property
    def mr_requests_sent(self) -> int:
        return int(self._m_mr_requests.total)

    @property
    def stray_messages(self) -> int:
        """Inbound control messages for finished/aborted/unknown sessions
        (stale retransmission replies, duplicate ACKs) — counted, not
        fatal: with retries in play they are expected traffic."""
        return int(self._m_stray.total)

    @property
    def crashes(self) -> int:
        return int(self._m_crashes.total)

    @property
    def breaker_trips(self) -> int:
        return int(self._m_breaker_trips.total)

    @property
    def fallbacks(self) -> int:
        return int(self._m_fallbacks.total)

    @property
    def repromotions(self) -> int:
        return int(self._m_repromotions.total)

    def _breaker_for(self, qp_num: int) -> ChannelBreaker:
        if self._host_pool is not None:
            # Shared QPs carry every rider's traffic, so quarantine
            # history lives at the pool, not per link.
            return self._host_pool.breaker_for(qp_num)
        breaker = self._breakers.get(qp_num)
        if breaker is None:
            breaker = ChannelBreaker(
                qp_num, self.config.breaker_failures, self.health.breaker_cooldown
            )
            self._breakers[qp_num] = breaker
        return breaker

    def _new_wr_id(self) -> int:
        """Allocate a wr_id, registering the completion route when the
        send CQ is shared (pooled links)."""
        wr_id = next(self._wr_ids)
        if self._host_pool is not None:
            self._host_pool.routes[wr_id] = self
        return wr_id

    def _release_lease(self, job: TransferJob) -> None:
        """Return the session's channel lease to the host pool.

        Idempotent, and the single choke point for every way a session
        ends — normal completion, abort (cancel, deadline, watchdog,
        crash) — so leases cannot leak through any teardown path.
        """
        if self._host_pool is not None:
            self._host_pool.sessions.release(job)

    def _start_shared_threads(self) -> None:
        if not self._started:
            self._started = True
            self.engine.process(self._control_thread())
            self.engine.process(self._completion_thread())
        if self.config.heartbeats and not self._hb_running:
            self._hb_running = True
            self.engine.process(self._heartbeat_thread())

    # -- public API --------------------------------------------------------------
    def transfer(
        self,
        data_source: Any,
        total_bytes: int,
        session_id: int,
        reuse_negotiation: bool = False,
    ):
        """Process event resolving to the finished :class:`TransferJob`.

        The process *fails* with a :class:`TransferError` subclass when the
        session aborts (timeout budgets exhausted); all pool blocks and
        credits have been reclaimed by then.

        With ``reuse_negotiation`` set, a link that already completed a
        full negotiation skips the link-level BLOCK_SIZE/CHANNELS
        exchanges and opens the session with a single SESSION_REQ round
        trip — the fast path for many small files to one peer.
        """
        job = TransferJob(self, session_id, total_bytes, data_source)
        if session_id in self.jobs:
            raise ValueError(f"session {session_id} already active on this link")
        if self._host_pool is not None:
            if not self._host_pool.sessions.lease(job):
                raise ValueError(
                    f"session {session_id}: host pool at lease capacity"
                    f" ({self._host_pool.sessions.capacity} sessions)"
                )
            # Eager iff every payload this session sends fits under the
            # negotiated threshold — a sub-threshold dataset, or one whose
            # negotiated block size is already that small.  The decision
            # is per *session* so the sink's credit machinery is either
            # fully engaged or fully bypassed; mixing per-block would let
            # eager arrivals starve while credits pin every free block.
            cfg = self.config
            job.eager = (
                cfg.eager_threshold > 0
                and min(cfg.block_size, total_bytes) <= cfg.eager_threshold
            )
        self.jobs[session_id] = job
        self._active_jobs += 1
        self._start_shared_threads()
        skip_link_setup = reuse_negotiation and self._negotiated

        def _run() -> Generator:
            thread = self.host.thread(f"src-nego-{session_id}", "app")
            yield from self._negotiate(thread, job, skip_link_setup=skip_link_setup)
            if not job.aborted:
                job.started_at = self.engine.now
                for i in range(self.config.reader_threads):
                    self.engine.process(self._reader_thread(job, i))
                self.engine.process(self._sender_thread(job))
                if self.config.block_repair:
                    self.engine.process(self._marker_watchdog(job))
            finished: TransferJob = yield job.done
            return finished

        return self.engine.process(_run())

    def resume(self, data_source: Any, total_bytes: int, session_id: int):
        """Process event re-attaching a dead session at its restart marker.

        One SESSION_RESUME_REQ round trip replaces the full negotiation
        (block size and channel count are link-level and already agreed).
        The sink replies with the resume point — the contiguous prefix it
        has durably consumed — and a fresh credit grant; this incarnation
        reads and sends only the missing suffix.  Like :meth:`transfer`,
        the returned process fails with a typed :class:`TransferError`
        when the resume is rejected or the re-attached session aborts.

        Resume assumes no *other* session is concurrently healthy on the
        link: accepting the REP flushes the shared credit ledger (stale
        grants from the dead incarnation target regions the sink has
        revoked), which would strand a healthy neighbour's credits.
        """
        job = TransferJob(self, session_id, total_bytes, data_source)
        if session_id in self.jobs:
            raise ValueError(f"session {session_id} already active on this link")
        if self._host_pool is not None and not self._host_pool.sessions.lease(job):
            raise ValueError(
                f"session {session_id}: host pool at lease capacity"
                f" ({self._host_pool.sessions.capacity} sessions)"
            )
        # A resumed session always rides rendezvous: the sink re-anchors
        # it with a fresh credit grant, and the restart marker already
        # paid the MR-exchange cost eager exists to avoid.
        self.jobs[session_id] = job
        self._active_jobs += 1
        self._start_shared_threads()

        def _run() -> Generator:
            thread = self.host.thread(f"src-resume-{session_id}", "app")
            reply = yield from self._request_reply(
                thread, job,
                CtrlType.SESSION_RESUME_REQ,
                (job.total_bytes, self._marker_interval()),
                CtrlType.SESSION_RESUME_REP,
            )
            if reply is not None:
                accepted, resume_seq, _initial = reply.data
                if not accepted:
                    self._abort_job(
                        job,
                        NegotiationTimeout(session_id, "sink rejected session resume"),
                    )
                elif not job.aborted:
                    job.start_seq = min(resume_seq, job.total_blocks)
                    job.marker = job.start_seq
                    job._next_load_seq = job.start_seq
                    job.started_at = self.engine.now
                    self.engine.trace(
                        "link", "resume",
                        session=session_id, start_seq=job.start_seq,
                    )
                    if job.blocks_to_send == 0:
                        # Everything already landed (the sink holds the
                        # whole dataset, acked or not): go straight to the
                        # completion handshake.
                        yield from self.ctrl.send(
                            thread,
                            ControlMessage(
                                CtrlType.DATASET_DONE, session_id, job.total_bytes
                            ),
                        )
                        self.engine.process(self._ack_watchdog(job))
                    else:
                        for i in range(self.config.reader_threads):
                            self.engine.process(self._reader_thread(job, i))
                        self.engine.process(self._sender_thread(job))
                        if self.config.block_repair:
                            self.engine.process(self._marker_watchdog(job))
            finished: TransferJob = yield job.done
            return finished

        return self.engine.process(_run())

    def crash(self) -> None:
        """Kill the source process: every live job dies with
        :class:`EndpointCrashed` and all volatile state (loaded blocks,
        repair copies, the credit ledger) is lost.  The sink's restart
        markers make the sessions resumable afterwards."""
        self._m_crashes.add()
        self.engine.trace("link", "crash")
        for job in list(self.jobs.values()):
            self._abort_job(
                job, EndpointCrashed(job.session_id, "source process crashed")
            )
        self.ledger.flush()

    def abort_session(self, session_id: int, exc: TransferError) -> bool:
        """Kill ONE live session with a typed error, leaving its link
        siblings untouched.  The scheduler's surgical teardown — used by
        the progress watchdog (a wedged session must not hold its worker
        slot) and by job cancellation/deadlines.  Returns False when the
        session is unknown (already finished or aborted)."""
        job = self.jobs.get(session_id)
        if job is None:
            return False
        self._abort_job(job, exc)
        return True

    def kill_channel(self, index: int) -> bool:
        """Kill the ``index``-th data QP (injected channel failure).

        In-flight WRITEs on it flush with WR_FLUSH_ERR; the completion
        thread detaches the dead channel and redistributes the blocks
        across survivors.  Returns False for an unknown or already-dead
        channel."""
        if not 0 <= index < len(self._all_data_qps):
            return False
        qp = self._all_data_qps[index]
        if qp.state is QpState.ERROR:
            return False
        qp.kill()
        self.engine.trace("link", "kill_channel", qp=qp.qp_num, index=index)
        return True

    # -- abort / cleanup -------------------------------------------------------------
    def _abort_job(self, job: TransferJob, exc: TransferError) -> None:
        """Tear a session down without leaking link-shared resources.

        Idempotent.  Reclaims blocks parked in the loaded queue here;
        blocks held by a live reader/sender or posted in ``_inflight`` are
        recycled by their owning thread once it observes the abort (that
        thread holds the only safe reference at that moment).
        """
        if job.aborted or job.done.triggered:
            return
        job.aborted = True
        job.error = exc
        self.jobs.pop(job.session_id, None)
        self._active_jobs -= 1
        self._release_lease(job)
        while job._loaded.items:
            blk = job._loaded.items.popleft()
            if blk is None:
                continue  # sender-release sentinel
            blk.scrap()
            self.pool.put_free_blk(blk)
        # Repair copies held WAITING for markers that will never come.
        # Seqs whose repair re-send is in flight are not in the map — the
        # completion thread recycles those.
        while job.unacked:
            _seq, blk = job.unacked.popitem()
            blk.scrap()
            self.pool.put_free_blk(blk)
        job.nack_attempts.clear()
        self.engine.trace(
            "link", "abort", session=job.session_id, error=type(exc).__name__
        )
        job._abort.succeed()
        if not job._halt.triggered:
            job._halt.succeed()
        job.done.fail(exc)
        # An external teardown (crash/cancel) can land while the session's
        # own process is parked microseconds away from ``yield job.done``
        # (mid-negotiation send, thread.exec) with no waiter attached yet.
        # Defusing keeps that window from nuking the whole engine; waiters
        # attached before processing still receive the typed error, and an
        # abandoned session still fails loudly through the transfer's
        # outer process event.
        job.done.defuse()

    def _recycle(self, block: SourceBlock, credit: Optional[Credit] = None) -> None:
        """Return an abandoned block (and optionally its credit) to the
        shared pools."""
        block.scrap()
        self.pool.put_free_blk(block)
        if credit is not None:
            # The WRITE never landed (or the session died before BLOCK_DONE
            # was meaningful), so the sink region is still writable: hand
            # the credit to whichever session acquires it next.
            self.ledger.refund([credit])

    # -- control-plane request/reply with retry ----------------------------------------
    def _request_reply(
        self,
        thread,
        job: TransferJob,
        req_type: CtrlType,
        payload: Any,
        rep_type: CtrlType,
    ) -> Generator:
        """Send ``req_type`` and await ``rep_type`` under the retry budget.

        The first attempt waits one adaptive RTO (microseconds on a quiet
        LAN once the estimator has samples); later attempts back off along
        a ladder floored by the static ``ctrl_timeout`` schedule, so a
        sharp estimate buys a fast first retransmit without shrinking the
        total patience budget below what injected delay faults need.
        Per Karn's rule only an unambiguous (first-attempt) exchange
        feeds the estimator.

        Returns the reply message, or ``None`` after aborting the job with
        :class:`NegotiationTimeout`.
        """
        sid = job.session_id
        store = job._replies[rep_type]
        attempts = self.config.ctrl_retries + 1
        for attempt in range(attempts):
            if attempt:
                job._count_ctrl_retry()
            sent_at = self.engine.now
            yield from self.ctrl.send(thread, ControlMessage(req_type, sid, payload))
            get_ev = store.get()
            timer = self.engine.timeout(self.health.request_timeout(attempt))
            outcome = yield AnyOf(self.engine, [get_ev, timer, job._abort])
            if job.aborted:
                # Torn down externally (endpoint crash, cancel, watchdog
                # kill) while this round trip was in flight: stop waiting
                # so the abort completes instead of racing retries against
                # a session that no longer exists.
                timer.cancel()
                store.cancel_get(get_ev)
                return None
            if get_ev in outcome:
                timer.cancel()
                if attempt == 0:
                    self.health.rtt.observe(self.engine.now - sent_at)
                return outcome[get_ev]
            store.cancel_get(get_ev)
            if get_ev.triggered and get_ev.ok:
                # The reply slipped in between the timer firing and this
                # process resuming — same instant, still a win.
                if attempt == 0:
                    self.health.rtt.observe(self.engine.now - sent_at)
                return get_ev.value
        self._abort_job(
            job,
            NegotiationTimeout(
                sid, f"no {rep_type.value} after {attempts} attempts"
            ),
        )
        return None

    def _marker_interval(self) -> int:
        """Restart-marker cadence this source can afford.

        Repair copies stay WAITING until a marker covers them, so up to
        ``2 * interval`` blocks sit outside the free pool at any instant
        (one interval delivered-but-unmarked, one in the marker's flight
        time).  That hold must stay a small fraction of the pool or the
        readers run stop-and-wait on the remainder — an 8-block pool at
        interval 4 measurably halves goodput.  The source advertises a
        cadence of at most an eighth of its pool during session setup and
        the sink honours it per session; tiny pools degrade to per-block
        markers rather than deadlock.
        """
        return max(1, min(self.config.marker_interval_blocks, len(self.pool.blocks) // 8))

    # -- negotiation (phase 1 of §IV-C) ---------------------------------------------
    def _negotiate(
        self, thread, job: TransferJob, skip_link_setup: bool = False
    ) -> Generator:
        sid = job.session_id
        if not skip_link_setup:
            reply = yield from self._request_reply(
                thread, job, CtrlType.BLOCK_SIZE_REQ, job.block_size,
                CtrlType.BLOCK_SIZE_REP,
            )
            if reply is None:
                return
            if not reply.data:
                self._abort_job(
                    job,
                    NegotiationTimeout(
                        sid, f"sink rejected block size {job.block_size}"
                    ),
                )
                return
            reply = yield from self._request_reply(
                thread, job, CtrlType.CHANNELS_REQ, len(self.data),
                CtrlType.CHANNELS_REP,
            )
            if reply is None:
                return
            if not reply.data:
                self._abort_job(
                    job, NegotiationTimeout(sid, "sink rejected channel count")
                )
                return
        # Eager sessions advertise the transport in the request so the
        # sink skips the initial credit grant; the wire shape for
        # rendezvous sessions is unchanged (bit-identical non-srq runs).
        session_req = (
            (job.total_bytes, self._marker_interval(), True)
            if job.eager
            else (job.total_bytes, self._marker_interval())
        )
        reply = yield from self._request_reply(
            thread, job,
            CtrlType.SESSION_REQ, session_req,
            CtrlType.SESSION_REP,
        )
        if reply is None:
            return
        accepted, _initial = reply.data  # credits deposited by the control thread
        if not accepted:
            self._abort_job(job, NegotiationTimeout(sid, "sink rejected session"))
            return
        self._negotiated = True

    # -- per-job threads -----------------------------------------------------------
    def _reader_thread(self, job: TransferJob, index: int) -> Generator:
        thread = self.host.thread(f"src-reader{job.session_id}.{index}", "app")
        halt = job._halt
        while not job.halted:
            if job._next_load_seq >= job.total_blocks:
                return
            seq = job._next_load_seq
            job._next_load_seq += 1
            offset, length = job._block_extent(seq)
            get_ev = self.pool.get_free_blk()
            outcome = yield AnyOf(self.engine, [get_ev, halt])
            if get_ev in outcome:
                block: SourceBlock = outcome[get_ev]
            else:
                self.pool.cancel_get_free_blk(get_ev)
                if get_ev.triggered and get_ev.ok:
                    # Raced with the halt: we own the block, hand it back.
                    self.pool.put_free_blk(get_ev.value)
                return
            block.reserve()
            payload = yield from job.data_source.read(thread, length, seq)
            if job.halted:
                self._recycle(block)
                return
            header = BlockHeader(
                job.session_id, seq, offset, length,
                checksum=(
                    block_checksum(payload) if self.config.checksum_blocks else 0
                ),
            )
            block.loaded(header, payload)
            yield job._loaded.put(block)
        return

    def _acquire_credit(self, thread, job: TransferJob) -> Generator:
        """Obtain one credit, begging the sink (deduplicated MR_INFO_REQ)
        when the shared ledger runs dry.

        Returns a credit, or ``None`` when the job aborted — either
        externally or because the retry budget ran out
        (:class:`CreditStarvation`).
        """
        get_ev = self.ledger.acquire()
        if get_ev.triggered:
            return get_ev.value  # balance was positive: no stall, no request
        attempts = 0
        while True:
            if not self.ledger.request_outstanding:
                # One request in flight per *link*, however many jobs are
                # starved — the grant lands in the shared ledger anyway.
                self.ledger.request_outstanding = True
                self._m_mr_requests.add()
                if attempts:
                    job._count_ctrl_retry()
                yield from self.ctrl.send(
                    thread, ControlMessage(CtrlType.MR_INFO_REQ, job.session_id)
                )
            timer = self.engine.timeout(self.health.patience_timeout(attempts))
            outcome = yield AnyOf(self.engine, [get_ev, timer, job._halt])
            if get_ev in outcome:
                timer.cancel()
                return outcome[get_ev]
            self.ledger.cancel(get_ev)
            if get_ev.triggered and get_ev.ok:
                return get_ev.value
            if job.halted:
                return None
            attempts += 1
            if attempts > self.config.ctrl_retries:
                self._abort_job(
                    job,
                    CreditStarvation(
                        job.session_id,
                        f"no credits after {attempts} MR_INFO_REQ attempts",
                    ),
                )
                return None
            # Our outstanding request (whoever sent it) went unanswered
            # long enough — clear the dedupe latch and ask again.
            self.ledger.request_outstanding = False
            get_ev = self.ledger.acquire()
            if get_ev.triggered:
                return get_ev.value

    def _sender_thread(self, job: TransferJob) -> Generator:
        thread = self.host.thread(f"src-sender{job.session_id}", "app")
        halt = job._halt
        while True:
            get_ev = job._loaded.get()
            outcome = yield AnyOf(self.engine, [get_ev, halt])
            if get_ev in outcome:
                block: Optional[SourceBlock] = outcome[get_ev]
            else:
                job._loaded.cancel_get(get_ev)
                if get_ev.triggered and get_ev.ok and get_ev.value is not None:
                    self._recycle(get_ev.value)
                return
            if block is None:
                return  # all blocks of this job completed
            if job.halted:
                self._recycle(block)
                return
            if job.eager:
                # Eager transport: the shared receive queue at the sink
                # is the landing buffer — no credit to acquire.
                credit = None
            else:
                credit = yield from self._acquire_credit(thread, job)
                if credit is None:
                    self._recycle(block)
                    return
            if job.halted:
                if job.fallback_active and not job.aborted:
                    # Degrading to TCP: the sink revokes every RDMA
                    # region when it accepts, so drop the credit rather
                    # than refund a reference to a revoked region.
                    self._recycle(block)
                else:
                    self._recycle(block, credit)
                return
            assert block.header is not None
            block.sending()
            wr_id = self._new_wr_id()
            self._inflight[wr_id] = (job, block, credit, 0, False)
            job._post_times[wr_id] = self.engine.now
            ok = yield from self._post_block(thread, job, block, credit, wr_id)
            if not ok:
                return

    def _post_block(self, thread, job: TransferJob, block: SourceBlock,
                    credit: Credit, wr_id: int) -> Generator:
        """Post one WRITE; degrade to the TCP fallback (or fail the job
        with :class:`DataChannelsLost`) when no data channel survives.
        Returns False after either outcome (the block and credit have
        been reclaimed)."""
        assert block.header is not None
        try:
            if credit is None:  # eager transport (srq mode)
                yield from self.data.post_send_block(
                    thread, block, block.header, wr_id
                )
            else:
                yield from self.data.post_write(
                    thread, block, credit, block.header, wr_id=wr_id
                )
        except NoLiveChannelError:
            self._inflight.pop(wr_id, None)
            if self._host_pool is not None:
                self._host_pool.routes.pop(wr_id, None)
            job._post_times.pop(wr_id, None)
            if job.fallback_active or self._begin_fallback(job):
                # Degrading to TCP: the sink revokes every RDMA region
                # when it accepts the fallback, so the credit is
                # dropped, not refunded.
                self._recycle(block)
                return False
            self._recycle(block, credit)
            self._abort_job(
                job, DataChannelsLost(job.session_id, "every data channel is dead")
            )
            return False
        block.waiting()
        return True

    # -- shared threads -------------------------------------------------------------
    def _completion_thread(self) -> Generator:
        thread = self.host.thread("src-completion", "app")
        while True:
            if self._wc_inbox is not None:
                # Pooled link: the host pool's dispatcher owns the shared
                # CQ and routes this link's completions here by wr_id.
                wcs = [(yield self._wc_inbox.get())]
            else:
                yield self.data_cc.wait(thread)
                wcs = yield self.data_send_cq.poll(thread, max_entries=64)
            for wc in wcs:
                job, block, credit, attempts, is_repair = self._inflight.pop(wc.wr_id)
                posted_at = job._post_times.pop(wc.wr_id, None)
                if not wc.ok and wc.status is WcStatus.WR_FLUSH_ERR:
                    # A dead channel flushed this WR: detach it so the
                    # rotation shrinks to the survivors (idempotent — the
                    # first flushed WR wins, later ones find it gone).
                    self.data.detach(wc.qp_num)
                breaker = self._breaker_for(wc.qp_num)
                if wc.ok:
                    breaker.record_success()
                elif breaker.record_failure(self.engine.now):
                    self._m_breaker_trips.add()
                    self.engine.trace(
                        "link", "breaker_trip", qp=wc.qp_num,
                        trips=breaker.trips,
                    )
                if job.aborted or job.fallback_active:
                    # The session died (or degraded to TCP) while this
                    # WRITE was in flight; the completion thread holds
                    # the last live reference.
                    if job.fallback_active and not job.aborted:
                        # Regions are revoked at fallback accept: drop
                        # the credit instead of refunding it.
                        self._recycle(block)
                    else:
                        self._recycle(block, credit)
                    continue
                if posted_at is not None and wc.ok:
                    latency = self.engine.now - posted_at
                    job.block_latencies.append(latency)
                    job._m_latency.observe(latency)
                if wc.ok:
                    assert block.header is not None
                    if credit is not None:
                        yield from self.ctrl.send(
                            thread,
                            ControlMessage(
                                CtrlType.BLOCK_DONE,
                                job.session_id,
                                (credit.block_id, block.header),
                            ),
                        )
                    # Eager (credit is None): the SEND delivered header
                    # and payload together — there is no region to name,
                    # so no BLOCK_DONE rides the control QP.  Everything
                    # below (marker bookkeeping, the repair hold, dataset
                    # completion) applies to both transports.
                    # Restart markers ack this send later; remember when
                    # it left (Karn: a re-sent seq becomes ambiguous and
                    # is struck from the sample book).
                    seq = block.header.seq
                    job._done_sent_at[seq] = (
                        None if seq in job._done_sent_at else self.engine.now
                    )
                    if self.config.block_repair:
                        # Keep the copy WAITING until a restart marker (or
                        # the final ACK) covers it — a BLOCK_NACK re-sends
                        # from exactly this copy.
                        job.unacked[block.header.seq] = block
                    else:
                        block.release()
                        self.pool.put_free_blk(block)
                    if is_repair:
                        continue  # counted when it first completed
                    job._count_completed()
                    if job.completed_blocks == job.blocks_to_send:
                        yield job._loaded.put(None)  # release the sender
                        yield from self.ctrl.send(
                            thread,
                            ControlMessage(
                                CtrlType.DATASET_DONE,
                                job.session_id,
                                job.total_bytes,
                            ),
                        )
                        self.engine.process(self._ack_watchdog(job))
                else:
                    # Failed WRITE (Fig. 6: WAITING → LOADED re-send).
                    # The payload never landed, so the credit's region is
                    # still empty — re-post immediately with the SAME
                    # credit.  Routing it back through the ledger would
                    # let fresh blocks steal it and, with a fully
                    # advertised sink pool, leave the retransmission
                    # unable to ever acquire a region (head-of-line
                    # deadlock).  After a channel death the re-post lands
                    # on a surviving QP (least-loaded pick skips ERROR).
                    attempts += 1
                    if attempts > self.config.max_block_resends:
                        seq = block.header.seq if block.header else -1
                        self._recycle(block, credit)
                        self._abort_job(
                            job,
                            ResendLimitExceeded(
                                job.session_id,
                                f"block seq {seq} failed {attempts} times",
                            ),
                        )
                        continue
                    job._count_resend()
                    block.resend()
                    block.sending()
                    wr_id = self._new_wr_id()
                    self._inflight[wr_id] = (job, block, credit, attempts, is_repair)
                    job._post_times[wr_id] = self.engine.now
                    yield from self._post_block(thread, job, block, credit, wr_id)

    def _ack_watchdog(self, job: TransferJob) -> Generator:
        """Retransmit DATASET_DONE until the ACK lands, then give up with
        a typed :class:`AckTimeout`."""
        thread = self.host.thread(f"src-ack{job.session_id}", "app")
        attempts = self.config.ctrl_retries + 1
        for attempt in range(attempts):
            yield self.engine.timeout(self.health.patience_timeout(attempt))
            if job.done.triggered or job.aborted:
                return
            if attempt + 1 == attempts:
                break
            job._count_ctrl_retry()
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.DATASET_DONE, job.session_id, job.total_bytes),
            )
        self._abort_job(
            job,
            AckTimeout(
                job.session_id, f"no DATASET_DONE_ACK after {attempts} attempts"
            ),
        )

    def _marker_watchdog(self, job: TransferJob) -> Generator:
        """Liveness guard for the repair hold.

        Repair copies leave the free pool until a restart marker covers
        them, so a sink that stops acking (crashed, or the path died)
        would starve the readers *silently*: the sender idles on an empty
        loaded-queue and the credit watchdog never runs.  Abort with a
        typed :class:`MarkerTimeout` once copies have sat with zero
        release/repair progress for the whole control retry budget — the
        session becomes resumable instead of hung.
        """
        attempts = 0
        while not job.aborted and not job.done.triggered:
            signature = (
                job.marker, len(job.unacked), job.repairs, job.completed_blocks
            )
            timer = self.engine.timeout(self.health.patience_timeout(attempts))
            yield AnyOf(self.engine, [timer, job._abort])
            if not timer.triggered:
                # Abort won the race: the pending timer is dead weight.
                timer.cancel()
            if job.aborted or job.done.triggered:
                return
            progressed = signature != (
                job.marker, len(job.unacked), job.repairs, job.completed_blocks
            )
            if not job.unacked or progressed:
                # Covers the fallback window too: degradation drains
                # ``unacked``, so the watchdog idles instead of racing
                # the fallback for a second abort decision.
                attempts = 0
                continue
            attempts += 1
            if attempts > self.config.ctrl_retries:
                self._abort_job(
                    job,
                    MarkerTimeout(
                        job.session_id,
                        f"{len(job.unacked)} repair copies held with no"
                        f" restart-marker progress after {attempts} timeouts",
                    ),
                )
                return

    def _control_thread(self) -> Generator:
        thread = self.host.thread("src-ctrl", "app")
        while True:
            msgs = yield from self.ctrl.receive(thread)
            for msg in msgs:
                # Liveness and heartbeats come before session routing: a
                # PING/PONG is link-level (session id 0) and must never
                # be stray-counted or matched against a job.
                self.health.heard()
                if msg.type is CtrlType.PING:
                    yield from self.ctrl.send(
                        thread,
                        ControlMessage(CtrlType.PONG, msg.session_id, msg.data),
                    )
                    continue
                if msg.type is CtrlType.PONG:
                    self._m_pongs.add()
                    self.health.on_pong(msg.data)
                    continue
                if msg.type is CtrlType.MR_INFO_REP:
                    self.ledger.deposit(list(msg.data))
                    continue
                if msg.type is CtrlType.SESSION_REP:
                    # Deposit centrally (not in the negotiator): with
                    # retries in play a stale duplicate reply may never be
                    # drained from the job's reply store, but credits are
                    # link-level and must reach the shared ledger exactly
                    # once per grant.  The sink replies to duplicate
                    # SESSION_REQs with an empty grant, so this cannot
                    # double-deposit.
                    _accepted, initial = msg.data
                    if initial:
                        self.ledger.deposit(list(initial))
                if msg.type is CtrlType.SESSION_RESUME_REP:
                    accepted, _resume_seq, initial = msg.data
                    if accepted:
                        # Stale grants in the ledger belong to the dead
                        # incarnation and target regions the sink revoked
                        # at re-attach.  Control-QP FIFO ordering means
                        # any in-flight stale MR_INFO_REP was delivered
                        # before this REP, so flushing here is airtight;
                        # the sink re-grants from a clean pool on every
                        # non-idempotent resume, so a duplicate REP's
                        # flush-then-deposit is also safe.
                        self.ledger.flush()
                        if initial:
                            self.ledger.deposit(list(initial))
                if msg.type is CtrlType.TRANSPORT_RESTORE_REP:
                    ready, _resume_seq, initial = msg.data
                    if ready:
                        # Same reasoning as SESSION_RESUME_REP: stale
                        # grants target regions the sink revoked when it
                        # accepted the fallback, and the sink re-grants
                        # from a clean pool, so flush-then-deposit is
                        # safe under duplicate replies too.
                        self.ledger.flush()
                        if initial:
                            self.ledger.deposit(list(initial))
                job = self.jobs.get(msg.session_id)
                if job is None:
                    # Finished or aborted session: stale replies, markers
                    # and duplicate ACKs are expected under retransmission.
                    self._m_stray.add()
                    continue
                if msg.type is CtrlType.DATASET_DONE_ACK:
                    job.finished_at = self.engine.now
                    self._active_jobs -= 1
                    self._release_lease(job)
                    # The final cumulative ack: every repair copy is covered.
                    for seq in list(job.unacked):
                        blk = job.unacked.pop(seq)
                        blk.release()
                        self.pool.put_free_blk(blk)
                    job.nack_attempts.clear()
                    # Completed sessions leave the table so the session id
                    # can be reused and the dict stays bounded on
                    # long-lived links.
                    self.jobs.pop(msg.session_id, None)
                    job.done.succeed(job)
                elif msg.type is CtrlType.BLOCK_MARKER:
                    self._apply_marker(job, msg.data)
                elif msg.type is CtrlType.BLOCK_NACK:
                    yield from self._on_block_nack(thread, job, msg)
                elif msg.type in job._replies:
                    yield job._replies[msg.type].put(msg)
                else:
                    self._m_stray.add()

    def _apply_marker(self, job: TransferJob, upto: int) -> None:
        """A cumulative consumed-prefix ack: everything below ``upto`` is
        durably in the application sink, so the repair copies held for
        those seqs can finally be freed."""
        if upto <= job.marker:
            return  # stale or duplicate marker
        sent_at = job._done_sent_at.get(upto - 1)
        if sent_at is not None:
            # The marker was cut when the block acked here crossed the
            # sink's cadence; its BLOCK_DONE send time closes an RTT
            # loop (inflated by sink-side consumption — which only makes
            # derived timeouts more patient, never too eager).
            self.health.rtt.observe(self.engine.now - sent_at)
        for s in [s for s in job._done_sent_at if s < upto]:
            del job._done_sent_at[s]
        job.marker = upto
        for seq in [s for s in job.unacked if s < upto]:
            blk = job.unacked.pop(seq)
            blk.release()
            self.pool.put_free_blk(blk)
            job.nack_attempts.pop(seq, None)

    def _on_block_nack(self, thread, job: TransferJob, msg: ControlMessage) -> Generator:
        """BLOCK_NACK: the sink's end-to-end checksum caught a corrupt
        arrival.  Re-send from the still-WAITING local copy into the
        credit the NACK carries (the same region), bounded by the block
        resend budget."""
        seq, credit = msg.data
        block = job.unacked.pop(seq, None)
        if block is None:
            # A repair for this seq is already in flight (ownership sits
            # in _inflight) — or the NACK is stale.
            self._m_stray.add()
            return
        attempts = job.nack_attempts.get(seq, 0) + 1
        job.nack_attempts[seq] = attempts
        if attempts > self.config.max_block_resends:
            self._recycle(block, credit)
            self._abort_job(
                job,
                ResendLimitExceeded(
                    job.session_id, f"block seq {seq} NACKed {attempts} times"
                ),
            )
            return
        job._count_repair()
        self.engine.trace(
            "link", "repair", session=job.session_id, seq=seq, attempt=attempts
        )
        block.nacked()  # WAITING → NACKED (Fig. 6 extension)
        block.reload()  # NACKED → LOADED: the local copy is still valid
        block.sending()
        wr_id = self._new_wr_id()
        self._inflight[wr_id] = (job, block, credit, 0, True)
        job._post_times[wr_id] = self.engine.now
        yield from self._post_block(thread, job, block, credit, wr_id)

    # -- heartbeats (peer liveness in bounded time) -----------------------------------
    def _heartbeat_thread(self) -> Generator:
        """PING the sink whenever the link goes quiet for one adaptive
        heartbeat interval; declare :class:`PeerDead` after the miss
        budget.  Any inbound control traffic counts as life — PINGs only
        flow on an otherwise-idle link, so a healthy busy transfer pays
        nothing."""
        thread = self.host.thread("src-hb", "app")
        while self.jobs:
            interval = self.health.heartbeat_interval()
            yield self.engine.timeout(interval)
            if not self.jobs:
                break
            if self.engine.now - self.health.last_heard < interval:
                continue
            self.health.misses += 1
            if self.health.misses > self.config.heartbeat_misses:
                self._m_peer_dead.add()
                self.engine.trace("link", "peer_dead", misses=self.health.misses)
                for job in list(self.jobs.values()):
                    self._abort_job(
                        job,
                        PeerDead(
                            job.session_id,
                            f"peer silent for {self.health.misses}"
                            " heartbeat intervals",
                        ),
                    )
                continue
            self._m_pings.add()
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.PING, 0, self.health.next_ping()),
            )
        self._hb_running = False

    # -- graceful degradation: the TCP fallback path ----------------------------------
    def _begin_fallback(self, job: TransferJob) -> bool:
        """Flip a session whose every data channel died onto the TCP
        fallback.  Returns False when degradation is impossible (no
        factory wired, disabled, or the session already settled) — the
        caller then aborts with :class:`DataChannelsLost` as before."""
        if job.fallback_active:
            return True
        if job.aborted or job.done.triggered:
            return False
        if not self.config.tcp_fallback or self.tcp_factory is None:
            return False
        job.fallback_active = True
        job.fallbacks += 1
        job._fallback_pump_done = False
        job.repromote_ready = False
        self._m_fallbacks.add()
        # Halt the RDMA-plane threads; they recycle whatever they hold.
        # Blocks parked in the loaded queue and repair copies are
        # reclaimed here — the fallback pump re-reads straight from the
        # data source, and the sink's accept revokes every RDMA region,
        # so neither the copies nor their credits stay meaningful.
        while job._loaded.items:
            blk = job._loaded.items.popleft()
            if blk is None:
                continue
            blk.scrap()
            self.pool.put_free_blk(blk)
        while job.unacked:
            _seq, blk = job.unacked.popitem()
            blk.scrap()
            self.pool.put_free_blk(blk)
        job.nack_attempts.clear()
        if not job._halt.triggered:
            job._halt.succeed()
        self.engine.trace(
            "link", "fallback_begin", session=job.session_id, marker=job.marker
        )
        self.engine.process(self._fallback_thread(job))
        return True

    def _fallback_thread(self, job: TransferJob) -> Generator:
        """Carry the rest of the dataset over TCP: negotiate, pump the
        missing suffix with checksummed framed blocks, then either
        finish (DATASET_DONE over the control QP as usual) or promote
        the session back to RDMA when a channel returns."""
        from repro.tcp.fallback import TcpBlockStream

        thread = self.host.thread(f"src-fallback{job.session_id}", "app")
        sid = job.session_id
        try:
            conn = self.tcp_factory()
        except Exception as exc:  # factory refused (injected denial)
            self._abort_job(
                job, TransportFallbackFailed(sid, f"no TCP path: {exc}")
            )
            return
        stream = TcpBlockStream(conn)
        job._fallback_stream = stream
        # However the session settles, the TCP connection dies with it.
        job.done.add_callback(lambda _ev: conn.close())
        reply = yield from self._request_reply(
            thread, job,
            CtrlType.TRANSPORT_FALLBACK_REQ,
            (job.total_bytes, stream),
            CtrlType.TRANSPORT_FALLBACK_REP,
        )
        if reply is None:
            return  # aborted (NegotiationTimeout) — done-callback closed conn
        accepted, resume_seq = reply.data
        if not accepted:
            self._abort_job(
                job, TransportFallbackFailed(sid, "sink denied transport fallback")
            )
            return
        # The sink revoked every outstanding RDMA region when it
        # accepted; stale credits in the shared ledger must not survive.
        self.ledger.flush()
        resume_seq = min(max(resume_seq, 0), job.total_blocks)
        job.marker = resume_seq
        self.engine.trace(
            "link", "fallback_accepted", session=sid, resume_seq=resume_seq
        )
        self.engine.process(self._fallback_stall_watchdog(job, stream))
        if self.config.fallback_repromote and self._reopen is not None:
            self.engine.process(self._repromote_watchdog(job))
        seq = resume_seq
        while seq < job.total_blocks and not job.aborted:
            if job.repromote_ready:
                break
            offset, length = job._block_extent(seq)
            payload = yield from job.data_source.read(thread, length, seq)
            if job.aborted:
                return
            header = BlockHeader(
                sid, seq, offset, length,
                checksum=(
                    block_checksum(payload) if self.config.checksum_blocks else 0
                ),
            )
            yield from stream.send_block(thread, header, payload)
            job._count_fallback_block()
            seq += 1
        if job.aborted:
            return
        job._fallback_pump_done = True
        yield from stream.send_eof(thread)
        if seq >= job.total_blocks:
            # The whole remainder is queued on the TCP path; close out
            # with the ordinary completion handshake.  The ack watchdog
            # keeps retransmitting DATASET_DONE while the sink drains.
            yield from self.ctrl.send(
                thread, ControlMessage(CtrlType.DATASET_DONE, sid, job.total_bytes)
            )
            self.engine.process(self._ack_watchdog(job))
            return
        yield from self._restore_rdma(thread, job, seq)

    def _restore_rdma(self, thread, job: TransferJob, next_seq: int) -> Generator:
        """Promote the session back to RDMA after the sink has drained
        the TCP phase (signalled by the in-band EOF sentinel).  The sink
        answers "not ready" until its consumer hits the sentinel, so the
        handshake is polled under the patience budget."""
        sid = job.session_id
        store = job._replies[CtrlType.TRANSPORT_RESTORE_REP]
        for round_ in range(self.config.ctrl_retries + 1):
            while store.items:
                store.items.popleft()  # drop stale not-ready replies
            reply = yield from self._request_reply(
                thread, job,
                CtrlType.TRANSPORT_RESTORE_REQ,
                (job.total_bytes, self._marker_interval()),
                CtrlType.TRANSPORT_RESTORE_REP,
            )
            if reply is None:
                return  # aborted
            ready, resume_seq, _initial = reply.data  # credits: control thread
            if ready:
                break
            yield self.engine.timeout(self.health.patience_timeout(round_))
            if job.aborted:
                return
        else:
            self._abort_job(
                job,
                TransportFallbackFailed(
                    sid, "sink never drained the fallback stream"
                ),
            )
            return
        self._m_repromotions.add()
        job.repromotions += 1
        self.engine.trace("link", "repromote", session=sid, start_seq=resume_seq)
        # Re-arm the RDMA plane exactly like a session resume, minus the
        # session handshake: fresh halt event, cursors at the sink's
        # durable prefix, and a new reader/sender generation.
        job.fallback_active = False
        job.repromote_ready = False
        job._fallback_pump_done = False
        job._fallback_stream = None
        job._halt = Event(self.engine)
        job.start_seq = min(resume_seq, job.total_blocks)
        job.marker = job.start_seq
        job.completed_blocks = 0
        job._next_load_seq = job.start_seq
        job._done_sent_at.clear()
        if job.blocks_to_send == 0:
            yield from self.ctrl.send(
                thread, ControlMessage(CtrlType.DATASET_DONE, sid, job.total_bytes)
            )
            self.engine.process(self._ack_watchdog(job))
            return
        for i in range(self.config.reader_threads):
            self.engine.process(self._reader_thread(job, i))
        self.engine.process(self._sender_thread(job))

    def _fallback_stall_watchdog(self, job: TransferJob, stream) -> Generator:
        """A sink that dies *during* fallback must not hang the session:
        abort with :class:`TransportFallbackFailed` once the pump makes
        zero progress for the whole patience budget.  Stands down when
        the pump finishes (the ack watchdog owns the endgame) or the
        session is promoted back to RDMA."""
        attempts = 0
        last = -1
        while not job.aborted and not job.done.triggered:
            if (
                job._fallback_pump_done
                or not job.fallback_active
                or job._fallback_stream is not stream
            ):
                return
            timer = self.engine.timeout(self.health.patience_timeout(attempts))
            yield AnyOf(self.engine, [timer, job._abort])
            if not timer.triggered:
                # Abort won the race: the pending timer is dead weight.
                timer.cancel()
            if job.aborted or job.done.triggered:
                return
            if (
                job._fallback_pump_done
                or not job.fallback_active
                or job._fallback_stream is not stream
            ):
                return
            if stream.blocks_sent != last:
                last = stream.blocks_sent
                attempts = 0
                continue
            attempts += 1
            if attempts > self.config.ctrl_retries:
                self._abort_job(
                    job,
                    TransportFallbackFailed(
                        job.session_id,
                        f"fallback stream stalled at {stream.blocks_sent}"
                        f" blocks for {attempts} timeouts",
                    ),
                )
                return

    def _repromote_watchdog(self, job: TransferJob) -> Generator:
        """While degraded, periodically probe for an RDMA path: once a
        channel re-establishes (a breaker cooldown's worth of waiting
        between attempts), flag the pump to hand the tail back to the
        RDMA plane."""
        while job.fallback_active and not job.aborted and not job.done.triggered:
            yield self.engine.timeout(self.health.breaker_cooldown())
            if not job.fallback_active or job.aborted or job.done.triggered:
                return
            if job._fallback_pump_done or job.repromote_ready:
                return
            if self.data.alive_count == 0:
                reopen = self._reopen
                if reopen is None:
                    return
                try:
                    yield reopen()
                except Exception:
                    continue  # path still down; retry next cooldown
            if self.data.alive_count > 0:
                job.repromote_ready = True
                self.engine.trace(
                    "link", "repromote_requested", session=job.session_id
                )
                return
