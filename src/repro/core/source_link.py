"""Multi-session source link: one connection set, many transfer jobs.

§IV-C: "The application probably issues multiple data transfer tasks
simultaneously.  Each task is associated with a global session identifier
which is available in both the source and sink."  A :class:`SourceLink`
owns the shared per-connection state — the control channel, the parallel
data QPs, the registered block pool, and the credit ledger — and runs any
number of concurrent or sequential :meth:`transfer` jobs over it.  The
sink routes by session id and reassembles each session independently.

Shared threads (Figure 2's pool):

- one *control thread* routes inbound messages: credit grants feed the
  shared ledger, negotiation replies and DATASET_DONE_ACKs go to their
  session's job;
- one *completion thread* reaps WRITE completions off the shared send CQ
  and routes them to the owning job by work-request id.

Per-job threads: readers (load payload into blocks) and a sender (pair
LOADED blocks with credits, post RDMA WRITEs).

Recovery model: every control-plane exchange (negotiation requests,
MR_INFO_REQ when starved, the DATASET_DONE/ACK handshake) carries a
timeout with exponential backoff and a bounded retry budget; each block's
RDMA WRITE may fail at most ``max_block_resends`` times.  Exhausting any
budget aborts the session *gracefully*: pool blocks return to the free
list, unconsumed credits are refunded to the shared ledger, and the job's
``done`` event fails with a typed :class:`~repro.core.errors.TransferError`
instead of hanging the engine.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Dict, Generator, Optional, Tuple

from repro.core.blocks import SourceBlock
from repro.core.channels import ControlChannel, DataChannels
from repro.core.config import ProtocolConfig
from repro.core.credits import Credit, CreditLedger
from repro.core.errors import (
    AckTimeout,
    CreditStarvation,
    NegotiationTimeout,
    ResendLimitExceeded,
    TransferError,
)
from repro.core.messages import BlockHeader, ControlMessage, CtrlType
from repro.core.pool import BlockPool
from repro.sim.events import AnyOf, Event
from repro.sim.resources import Store
from repro.verbs.cq import CompletionChannel, CompletionQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.host import Host
    from repro.sim.engine import Engine

__all__ = ["SourceLink", "TransferJob"]

_REPLY_TYPES = (
    CtrlType.BLOCK_SIZE_REP,
    CtrlType.CHANNELS_REP,
    CtrlType.SESSION_REP,
    CtrlType.DATASET_DONE_ACK,
)


class TransferJob:
    """One dataset transfer (one session) running on a link."""

    def __init__(
        self,
        link: "SourceLink",
        session_id: int,
        total_bytes: int,
        data_source: Any,
    ) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.link = link
        self.session_id = session_id
        self.total_bytes = total_bytes
        self.data_source = data_source
        self.block_size = link.config.block_size
        self.total_blocks = -(-total_bytes // self.block_size)
        self.completed_blocks = 0
        self.resends = 0
        #: Control-plane retransmissions (timed-out requests resent).
        self.ctrl_retries = 0
        #: Per-block source-side latency: post of the RDMA WRITE to the
        #: polled completion (includes the RC ACK round trip), seconds.
        self.block_latencies: list = []
        self._post_times: Dict[int, float] = {}
        self._next_load_seq = 0
        self._loaded: Store = Store(link.engine)
        self._replies: Dict[CtrlType, Store] = {
            t: Store(link.engine) for t in _REPLY_TYPES
        }
        #: Succeeds (with this job) when the sink acknowledges the dataset.
        self.done: Event = Event(link.engine)
        #: Succeeds when the session aborts — always success-typed so it
        #: can sit inside AnyOf waits without failing them; the *typed*
        #: failure goes through ``done``.
        self._abort: Event = Event(link.engine)
        self.aborted = False
        self.error: Optional[TransferError] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def _block_extent(self, seq: int) -> Tuple[int, int]:
        offset = seq * self.block_size
        length = min(self.block_size, self.total_bytes - offset)
        return offset, length


class SourceLink:
    """Shared sender-side state for one middleware connection."""

    def __init__(
        self,
        host: "Host",
        ctrl: ControlChannel,
        data: DataChannels,
        data_send_cq: CompletionQueue,
        pool: BlockPool[SourceBlock],
        config: ProtocolConfig,
    ) -> None:
        self.host = host
        self.engine: "Engine" = host.engine
        self.ctrl = ctrl
        self.data = data
        self.data_send_cq = data_send_cq
        self.data_cc = CompletionChannel(data_send_cq)
        self.pool = pool
        self.config = config
        self.ledger = CreditLedger(self.engine)
        self.jobs: Dict[int, TransferJob] = {}
        self.mr_requests_sent = 0
        #: Inbound control messages for finished/aborted/unknown sessions
        #: (stale retransmission replies, duplicate ACKs) — counted, not
        #: fatal: with retries in play they are expected traffic.
        self.stray_messages = 0
        self._wr_ids = itertools.count()
        #: wr_id -> (job, block, credit, failed_attempts).
        self._inflight: Dict[int, Tuple[TransferJob, SourceBlock, Credit, int]] = {}
        self._active_jobs = 0
        self._started = False

    # -- public API --------------------------------------------------------------
    def transfer(self, data_source: Any, total_bytes: int, session_id: int):
        """Process event resolving to the finished :class:`TransferJob`.

        The process *fails* with a :class:`TransferError` subclass when the
        session aborts (timeout budgets exhausted); all pool blocks and
        credits have been reclaimed by then.
        """
        job = TransferJob(self, session_id, total_bytes, data_source)
        if session_id in self.jobs:
            raise ValueError(f"session {session_id} already active on this link")
        self.jobs[session_id] = job
        self._active_jobs += 1
        if not self._started:
            self._started = True
            self.engine.process(self._control_thread())
            self.engine.process(self._completion_thread())

        def _run() -> Generator:
            thread = self.host.thread(f"src-nego-{session_id}", "app")
            yield from self._negotiate(thread, job)
            if not job.aborted:
                job.started_at = self.engine.now
                for i in range(self.config.reader_threads):
                    self.engine.process(self._reader_thread(job, i))
                self.engine.process(self._sender_thread(job))
            finished: TransferJob = yield job.done
            return finished

        return self.engine.process(_run())

    # -- abort / cleanup -------------------------------------------------------------
    def _abort_job(self, job: TransferJob, exc: TransferError) -> None:
        """Tear a session down without leaking link-shared resources.

        Idempotent.  Reclaims blocks parked in the loaded queue here;
        blocks held by a live reader/sender or posted in ``_inflight`` are
        recycled by their owning thread once it observes the abort (that
        thread holds the only safe reference at that moment).
        """
        if job.aborted or job.done.triggered:
            return
        job.aborted = True
        job.error = exc
        self.jobs.pop(job.session_id, None)
        self._active_jobs -= 1
        while job._loaded.items:
            blk = job._loaded.items.popleft()
            if blk is None:
                continue  # sender-release sentinel
            blk.scrap()
            self.pool.put_free_blk(blk)
        self.engine.trace(
            "link", "abort", session=job.session_id, error=type(exc).__name__
        )
        job._abort.succeed()
        job.done.fail(exc)

    def _recycle(self, block: SourceBlock, credit: Optional[Credit] = None) -> None:
        """Return an abandoned block (and optionally its credit) to the
        shared pools."""
        block.scrap()
        self.pool.put_free_blk(block)
        if credit is not None:
            # The WRITE never landed (or the session died before BLOCK_DONE
            # was meaningful), so the sink region is still writable: hand
            # the credit to whichever session acquires it next.
            self.ledger.refund([credit])

    # -- control-plane request/reply with retry ----------------------------------------
    def _request_reply(
        self,
        thread,
        job: TransferJob,
        req_type: CtrlType,
        payload: Any,
        rep_type: CtrlType,
    ) -> Generator:
        """Send ``req_type`` and await ``rep_type`` under the retry budget.

        Returns the reply message, or ``None`` after aborting the job with
        :class:`NegotiationTimeout`.
        """
        sid = job.session_id
        store = job._replies[rep_type]
        timeout = self.config.ctrl_timeout
        attempts = self.config.ctrl_retries + 1
        for attempt in range(attempts):
            if attempt:
                job.ctrl_retries += 1
            yield from self.ctrl.send(thread, ControlMessage(req_type, sid, payload))
            get_ev = store.get()
            timer = self.engine.timeout(timeout)
            outcome = yield AnyOf(self.engine, [get_ev, timer])
            if get_ev in outcome:
                return outcome[get_ev]
            store.cancel_get(get_ev)
            if get_ev.triggered and get_ev.ok:
                # The reply slipped in between the timer firing and this
                # process resuming — same instant, still a win.
                return get_ev.value
            timeout *= self.config.ctrl_backoff
        self._abort_job(
            job,
            NegotiationTimeout(
                sid, f"no {rep_type.value} after {attempts} attempts"
            ),
        )
        return None

    # -- negotiation (phase 1 of §IV-C) ---------------------------------------------
    def _negotiate(self, thread, job: TransferJob) -> Generator:
        sid = job.session_id
        reply = yield from self._request_reply(
            thread, job, CtrlType.BLOCK_SIZE_REQ, job.block_size,
            CtrlType.BLOCK_SIZE_REP,
        )
        if reply is None:
            return
        if not reply.data:
            self._abort_job(
                job,
                NegotiationTimeout(sid, f"sink rejected block size {job.block_size}"),
            )
            return
        reply = yield from self._request_reply(
            thread, job, CtrlType.CHANNELS_REQ, len(self.data),
            CtrlType.CHANNELS_REP,
        )
        if reply is None:
            return
        if not reply.data:
            self._abort_job(job, NegotiationTimeout(sid, "sink rejected channel count"))
            return
        reply = yield from self._request_reply(
            thread, job, CtrlType.SESSION_REQ, job.total_bytes,
            CtrlType.SESSION_REP,
        )
        if reply is None:
            return
        accepted, _initial = reply.data  # credits deposited by the control thread
        if not accepted:
            self._abort_job(job, NegotiationTimeout(sid, "sink rejected session"))
            return

    # -- per-job threads -----------------------------------------------------------
    def _reader_thread(self, job: TransferJob, index: int) -> Generator:
        thread = self.host.thread(f"src-reader{job.session_id}.{index}", "app")
        while not job.aborted:
            if job._next_load_seq >= job.total_blocks:
                return
            seq = job._next_load_seq
            job._next_load_seq += 1
            offset, length = job._block_extent(seq)
            get_ev = self.pool.get_free_blk()
            outcome = yield AnyOf(self.engine, [get_ev, job._abort])
            if get_ev in outcome:
                block: SourceBlock = outcome[get_ev]
            else:
                self.pool.cancel_get_free_blk(get_ev)
                if get_ev.triggered and get_ev.ok:
                    # Raced with the abort: we own the block, hand it back.
                    self.pool.put_free_blk(get_ev.value)
                return
            block.reserve()
            payload = yield from job.data_source.read(thread, length, seq)
            if job.aborted:
                self._recycle(block)
                return
            header = BlockHeader(job.session_id, seq, offset, length)
            block.loaded(header, payload)
            yield job._loaded.put(block)
        return

    def _acquire_credit(self, thread, job: TransferJob) -> Generator:
        """Obtain one credit, begging the sink (deduplicated MR_INFO_REQ)
        when the shared ledger runs dry.

        Returns a credit, or ``None`` when the job aborted — either
        externally or because the retry budget ran out
        (:class:`CreditStarvation`).
        """
        get_ev = self.ledger.acquire()
        if get_ev.triggered:
            return get_ev.value  # balance was positive: no stall, no request
        timeout = self.config.ctrl_timeout
        attempts = 0
        while True:
            if not self.ledger.request_outstanding:
                # One request in flight per *link*, however many jobs are
                # starved — the grant lands in the shared ledger anyway.
                self.ledger.request_outstanding = True
                self.mr_requests_sent += 1
                if attempts:
                    job.ctrl_retries += 1
                yield from self.ctrl.send(
                    thread, ControlMessage(CtrlType.MR_INFO_REQ, job.session_id)
                )
            timer = self.engine.timeout(timeout)
            outcome = yield AnyOf(self.engine, [get_ev, timer, job._abort])
            if get_ev in outcome:
                return outcome[get_ev]
            self.ledger.cancel(get_ev)
            if get_ev.triggered and get_ev.ok:
                return get_ev.value
            if job.aborted:
                return None
            attempts += 1
            if attempts > self.config.ctrl_retries:
                self._abort_job(
                    job,
                    CreditStarvation(
                        job.session_id,
                        f"no credits after {attempts} MR_INFO_REQ attempts",
                    ),
                )
                return None
            # Our outstanding request (whoever sent it) went unanswered
            # long enough — clear the dedupe latch and ask again.
            self.ledger.request_outstanding = False
            timeout *= self.config.ctrl_backoff
            get_ev = self.ledger.acquire()
            if get_ev.triggered:
                return get_ev.value

    def _sender_thread(self, job: TransferJob) -> Generator:
        thread = self.host.thread(f"src-sender{job.session_id}", "app")
        while True:
            get_ev = job._loaded.get()
            outcome = yield AnyOf(self.engine, [get_ev, job._abort])
            if get_ev in outcome:
                block: Optional[SourceBlock] = outcome[get_ev]
            else:
                job._loaded.cancel_get(get_ev)
                if get_ev.triggered and get_ev.ok and get_ev.value is not None:
                    self._recycle(get_ev.value)
                return
            if block is None:
                return  # all blocks of this job completed
            if job.aborted:
                self._recycle(block)
                return
            credit = yield from self._acquire_credit(thread, job)
            if credit is None:
                self._recycle(block)
                return
            if job.aborted:
                self._recycle(block, credit)
                return
            assert block.header is not None
            block.sending()
            wr_id = next(self._wr_ids)
            self._inflight[wr_id] = (job, block, credit, 0)
            job._post_times[wr_id] = self.engine.now
            yield from self.data.post_write(
                thread, block, credit, block.header, wr_id=wr_id
            )
            block.waiting()

    # -- shared threads -------------------------------------------------------------
    def _completion_thread(self) -> Generator:
        thread = self.host.thread("src-completion", "app")
        while True:
            yield self.data_cc.wait(thread)
            wcs = yield self.data_send_cq.poll(thread, max_entries=64)
            for wc in wcs:
                job, block, credit, attempts = self._inflight.pop(wc.wr_id)
                posted_at = job._post_times.pop(wc.wr_id, None)
                if job.aborted:
                    # The session died while this WRITE was in flight; the
                    # completion thread holds the last live reference.
                    self._recycle(block, credit)
                    continue
                if posted_at is not None and wc.ok:
                    job.block_latencies.append(self.engine.now - posted_at)
                if wc.ok:
                    yield from self.ctrl.send(
                        thread,
                        ControlMessage(
                            CtrlType.BLOCK_DONE,
                            job.session_id,
                            (credit.block_id, block.header),
                        ),
                    )
                    block.release()
                    self.pool.put_free_blk(block)
                    job.completed_blocks += 1
                    if job.completed_blocks == job.total_blocks:
                        yield job._loaded.put(None)  # release the sender
                        yield from self.ctrl.send(
                            thread,
                            ControlMessage(
                                CtrlType.DATASET_DONE,
                                job.session_id,
                                job.total_bytes,
                            ),
                        )
                        self.engine.process(self._ack_watchdog(job))
                else:
                    # Failed WRITE (Fig. 6: WAITING → LOADED re-send).
                    # The payload never landed, so the credit's region is
                    # still empty — re-post immediately with the SAME
                    # credit.  Routing it back through the ledger would
                    # let fresh blocks steal it and, with a fully
                    # advertised sink pool, leave the retransmission
                    # unable to ever acquire a region (head-of-line
                    # deadlock).
                    attempts += 1
                    if attempts > self.config.max_block_resends:
                        seq = block.header.seq if block.header else -1
                        self._recycle(block, credit)
                        self._abort_job(
                            job,
                            ResendLimitExceeded(
                                job.session_id,
                                f"block seq {seq} failed {attempts} times",
                            ),
                        )
                        continue
                    job.resends += 1
                    block.resend()
                    block.sending()
                    wr_id = next(self._wr_ids)
                    self._inflight[wr_id] = (job, block, credit, attempts)
                    job._post_times[wr_id] = self.engine.now
                    assert block.header is not None
                    yield from self.data.post_write(
                        thread, block, credit, block.header, wr_id=wr_id
                    )
                    block.waiting()

    def _ack_watchdog(self, job: TransferJob) -> Generator:
        """Retransmit DATASET_DONE until the ACK lands, then give up with
        a typed :class:`AckTimeout`."""
        thread = self.host.thread(f"src-ack{job.session_id}", "app")
        timeout = self.config.ctrl_timeout
        attempts = self.config.ctrl_retries + 1
        for attempt in range(attempts):
            yield self.engine.timeout(timeout)
            if job.done.triggered or job.aborted:
                return
            timeout *= self.config.ctrl_backoff
            if attempt + 1 == attempts:
                break
            job.ctrl_retries += 1
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.DATASET_DONE, job.session_id, job.total_bytes),
            )
        self._abort_job(
            job,
            AckTimeout(
                job.session_id, f"no DATASET_DONE_ACK after {attempts} attempts"
            ),
        )

    def _control_thread(self) -> Generator:
        thread = self.host.thread("src-ctrl", "app")
        while True:
            msgs = yield from self.ctrl.receive(thread)
            for msg in msgs:
                if msg.type is CtrlType.MR_INFO_REP:
                    self.ledger.deposit(list(msg.data))
                    continue
                if msg.type is CtrlType.SESSION_REP:
                    # Deposit centrally (not in the negotiator): with
                    # retries in play a stale duplicate reply may never be
                    # drained from the job's reply store, but credits are
                    # link-level and must reach the shared ledger exactly
                    # once per grant.  The sink replies to duplicate
                    # SESSION_REQs with an empty grant, so this cannot
                    # double-deposit.
                    _accepted, initial = msg.data
                    if initial:
                        self.ledger.deposit(list(initial))
                job = self.jobs.get(msg.session_id)
                if job is None:
                    # Finished or aborted session: stale replies and
                    # duplicate ACKs are expected under retransmission.
                    self.stray_messages += 1
                    continue
                if msg.type is CtrlType.DATASET_DONE_ACK:
                    job.finished_at = self.engine.now
                    self._active_jobs -= 1
                    # Completed sessions leave the table so the session id
                    # can be reused and the dict stays bounded on
                    # long-lived links.
                    self.jobs.pop(msg.session_id, None)
                    job.done.succeed(job)
                elif msg.type in job._replies:
                    yield job._replies[msg.type].put(msg)
                else:
                    self.stray_messages += 1
