"""Buffer-block finite state machines (Figure 6 of the paper).

Source-side block lifecycle::

    FREE --get_free_blk--> LOADING --data loaded--> LOADED
         --post WRITE ok--> WAITING --completion ok--> FREE
                                    --completion bad--> LOADED (re-send)

Sink-side block lifecycle::

    FREE --advertised / consumption event--> WAITING
         --finish notification--> READY --put_free_blk--> FREE

Illegal transitions raise :class:`BlockStateError`; the engines are
written so that a healthy run never triggers one, and the tests assert
the guards hold under hypothesis-generated call sequences.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Optional

from repro.core.messages import BlockHeader

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.verbs.mr import MemoryRegion

__all__ = [
    "BlockStateError",
    "SourceBlock",
    "SourceBlockState",
    "SinkBlock",
    "SinkBlockState",
]


class BlockStateError(RuntimeError):
    """An FSM transition guard was violated."""


class SourceBlockState(enum.Enum):
    FREE = "free"
    LOADING = "loading"
    LOADED = "loaded"
    SENDING = "start_sending"
    WAITING = "waiting"
    #: The sink reported a checksum mismatch for the landed copy; the
    #: block's local copy is still valid and will be re-sent.
    NACKED = "nacked"


class SinkBlockState(enum.Enum):
    FREE = "free"
    WAITING = "waiting"
    READY = "data_ready"


class SourceBlock:
    """A registered source-side buffer block."""

    __slots__ = ("block_id", "mr", "state", "header", "payload")

    def __init__(self, block_id: int, mr: "MemoryRegion") -> None:
        self.block_id = block_id
        self.mr = mr
        self.state = SourceBlockState.FREE
        self.header: Optional[BlockHeader] = None
        self.payload: Any = None

    def _expect(self, *allowed: SourceBlockState) -> None:
        if self.state not in allowed:
            raise BlockStateError(
                f"source block {self.block_id}: illegal transition from "
                f"{self.state.value} (expected {[s.value for s in allowed]})"
            )

    def reserve(self) -> "SourceBlock":
        """FREE → LOADING (application claimed the block via get_free_blk)."""
        self._expect(SourceBlockState.FREE)
        self.state = SourceBlockState.LOADING
        return self

    def loaded(self, header: BlockHeader, payload: Any = None) -> None:
        """LOADING → LOADED (payload now resides in the registered region)."""
        self._expect(SourceBlockState.LOADING)
        self.header = header
        self.payload = payload
        self.state = SourceBlockState.LOADED

    def sending(self) -> None:
        """LOADED → SENDING (task being encapsulated and posted)."""
        self._expect(SourceBlockState.LOADED)
        self.state = SourceBlockState.SENDING

    def waiting(self) -> None:
        """SENDING → WAITING (WR posted successfully; content in flight)."""
        self._expect(SourceBlockState.SENDING)
        self.state = SourceBlockState.WAITING

    def release(self) -> None:
        """WAITING → FREE (completion polled successfully)."""
        self._expect(SourceBlockState.WAITING)
        self.header = None
        self.payload = None
        self.state = SourceBlockState.FREE

    def resend(self) -> None:
        """WAITING → LOADED (completion failed; data still valid)."""
        self._expect(SourceBlockState.WAITING)
        self.state = SourceBlockState.LOADED

    def nacked(self) -> None:
        """WAITING → NACKED (sink reported a checksum mismatch)."""
        self._expect(SourceBlockState.WAITING)
        self.state = SourceBlockState.NACKED

    def reload(self) -> None:
        """NACKED → LOADED (the still-valid local copy re-enters the send
        path — the Fig. 6 extension for selective block repair)."""
        self._expect(SourceBlockState.NACKED)
        self.state = SourceBlockState.LOADED

    def scrap(self) -> None:
        """any non-FREE → FREE (session aborted; contents abandoned).

        Unlike :meth:`release` this is legal from every in-use state —
        abort can catch a block mid-load, loaded, or awaiting completion.
        """
        self._expect(
            SourceBlockState.LOADING,
            SourceBlockState.LOADED,
            SourceBlockState.SENDING,
            SourceBlockState.WAITING,
            SourceBlockState.NACKED,
        )
        self.header = None
        self.payload = None
        self.state = SourceBlockState.FREE


class SinkBlock:
    """A registered sink-side buffer block (a credit's backing store)."""

    __slots__ = ("block_id", "mr", "state", "header", "payload")

    def __init__(self, block_id: int, mr: "MemoryRegion") -> None:
        self.block_id = block_id
        self.mr = mr
        self.state = SinkBlockState.FREE
        self.header: Optional[BlockHeader] = None
        self.payload: Any = None

    def _expect(self, *allowed: SinkBlockState) -> None:
        if self.state not in allowed:
            raise BlockStateError(
                f"sink block {self.block_id}: illegal transition from "
                f"{self.state.value} (expected {[s.value for s in allowed]})"
            )

    def advertise(self) -> "SinkBlock":
        """FREE → WAITING (credit for this block sent to the source)."""
        self._expect(SinkBlockState.FREE)
        self.state = SinkBlockState.WAITING
        return self

    def finish(self, header: BlockHeader, payload: Any = None) -> None:
        """WAITING → READY (finish notification for this block arrived)."""
        self._expect(SinkBlockState.WAITING)
        self.header = header
        self.payload = payload
        self.state = SinkBlockState.READY

    def consume(self) -> Any:
        """READY → FREE (application took the payload via get_ready_blk +
        put_free_blk)."""
        self._expect(SinkBlockState.READY)
        payload = self.payload
        self.header = None
        self.payload = None
        self.state = SinkBlockState.FREE
        return payload

    def revoke(self) -> None:
        """WAITING → FREE (advertised credit withdrawn; no data landed).

        Used by the stale-session collector: a credit granted to a dead
        source will never be written into, so the block goes straight
        back to the free pool.
        """
        self._expect(SinkBlockState.WAITING)
        self.header = None
        self.payload = None
        self.state = SinkBlockState.FREE
