"""Public middleware facade: connect, serve, transfer.

This is the API applications (RFTP, examples, benchmarks) program
against.  A server middleware listens for sessions; a client middleware
establishes one control QP plus ``num_channels`` data QPs per transfer,
runs sessions over a :class:`~repro.core.source_link.SourceLink`, and returns a
:class:`TransferOutcome` with protocol statistics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, Optional

from repro.core.channels import ControlChannel, DataChannels, HostChannelPool
from repro.core.config import ProtocolConfig
from repro.core.messages import HEADER_BYTES
from repro.core.pool import BlockPool, ResourcePool
from repro.core.sink_engine import SinkEngine
from repro.core.source_link import SourceLink
from repro.sim.events import Event
from repro.verbs.cq import CompletionChannel
from repro.verbs.wr import RecvWR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.host import Host
    from repro.sim.engine import Engine
    from repro.verbs.cm import ConnectionManager
    from repro.verbs.device import Device
    from repro.verbs.srq import SharedReceiveQueue

__all__ = ["RdmaMiddleware", "TransferOutcome", "allocate_session_id"]

_session_ids = itertools.count(1)
_client_ids = itertools.count(1)


def allocate_session_id() -> int:
    """Draw the next id from the shared session-id space.

    Exposed for callers (the transfer broker) that must know a session's
    id *before* launching the transfer, so the attempt can be journaled
    and — after a crash — re-attached via SESSION_RESUME under the same
    id the sink already holds marker state for.
    """
    return next(_session_ids)


@dataclass(frozen=True)
class TransferOutcome:
    """Result of one completed dataset transfer."""

    session_id: int
    bytes: int
    elapsed: float
    blocks: int
    resends: int
    mr_requests: int
    ctrl_sent: int
    ctrl_received: int
    peak_credits: int
    rnr_naks: int
    #: Control-plane retransmissions this session needed (timeouts on
    #: negotiation / MR_INFO_REQ / DATASET_DONE).
    ctrl_retries: int = 0
    #: BLOCK_NACK-driven selective re-sends (checksum repair).
    repairs: int = 0
    #: First block this incarnation actually sent (non-zero only for
    #: resumed sessions: everything below came from a prior incarnation).
    resumed_from: int = 0
    #: Times the session degraded to the TCP fallback path.
    fallbacks: int = 0
    #: Blocks the TCP fallback carried.
    fallback_blocks: int = 0
    #: Times the session was promoted back to RDMA mid-transfer.
    repromotions: int = 0

    @property
    def gbps(self) -> float:
        """Application goodput in gigabits per second."""
        if self.elapsed <= 0:
            return float("inf")
        return self.bytes * 8.0 / self.elapsed / 1e9


class RdmaMiddleware:
    """Per-host middleware instance (Figure 2's layer)."""

    def __init__(
        self,
        host: "Host",
        device: "Device",
        cm: "ConnectionManager",
        config: Optional[ProtocolConfig] = None,
    ) -> None:
        self.host = host
        self.device = device
        self.cm = cm
        self.config = config or ProtocolConfig()
        self.engine: "Engine" = host.engine
        self.pd = device.alloc_pd()
        self.sink_engines: Dict[int, SinkEngine] = {}  # by client id
        #: srq mode, client side: one shared data-plane per (peer, port).
        #: Values are either a live :class:`HostChannelPool` or a
        #: ``("pending", Event)`` sentinel while the first opener is
        #: still connecting its QPs (racers wait on the event).
        self._host_pools: Dict[Any, Any] = {}
        #: srq mode, server side: the shared receive queue and its
        #: dispatcher state, created on the first :meth:`serve`.
        self._srq: Optional["SharedReceiveQueue"] = None
        self._srq_recv_cq = None

    # -- server role ----------------------------------------------------------------
    def serve(self, port: int, data_sink: Any) -> None:
        """Start accepting transfer sessions on ``port``.

        ``data_sink`` must provide ``write(thread, nbytes, header, payload)``
        as a process generator (see :mod:`repro.apps.io`).

        In srq mode every accepted data QP is attached to one shared
        receive queue instead of owning a receive ring: eager SENDs from
        any client draw landing buffers from the same bounded WQE pool,
        and one dispatcher thread demultiplexes arrivals to the owning
        :class:`SinkEngine` by session id.
        """
        listener = self.cm.listen(self.device, port)
        if self.config.use_srq and self._srq is None:
            self._srq = self.pd.create_srq(depth=self.config.srq_depth)
            self._srq_recv_cq = self.device.create_cq()
            # Pre-post the shared ring (setup time, not charged).  Each
            # WQE must fit a full block plus its wire header, or an
            # arriving SEND is dropped with a local length error.
            wqe_len = self.config.block_size + HEADER_BYTES
            for i in range(self.config.srq_depth):
                self._srq.post_recv(RecvWR(length=wqe_len, wr_id=i))
            self.engine.process(self._srq_dispatch())

        def _accept_loop() -> Generator:
            while True:
                request = yield listener.get_request()
                kind = request.private_data[0]
                if kind == "ctrl":
                    client_id = request.private_data[1]
                    ctrl_qp = self.device.create_qp(
                        self.pd,
                        self.device.create_cq(),
                        self.device.create_cq(),
                        max_send_wr=self.config.send_queue_depth,
                    )
                    request.accept(ctrl_qp)
                    ctrl = ControlChannel(ctrl_qp, self.config.ctrl_recv_depth)
                    engine = SinkEngine(
                        self.host,
                        ctrl,
                        self.config,
                        data_sink,
                        pool_factory=self._make_sink_pool,
                    )
                    engine.start()
                    self.sink_engines[client_id] = engine
                elif kind == "data":
                    # An empty CQ is falsy (len 0), so the shared recv CQ
                    # must be tested against None, not truthiness.
                    recv_cq = (
                        self._srq_recv_cq
                        if self._srq_recv_cq is not None
                        else self.device.create_cq()
                    )
                    data_qp = self.device.create_qp(
                        self.pd,
                        self.device.create_cq(),
                        recv_cq,
                        max_send_wr=self.config.send_queue_depth,
                        srq=self._srq,
                    )
                    request.accept(data_qp)
                else:  # pragma: no cover - defensive
                    request.reject(f"unknown endpoint kind {kind!r}")

        self.engine.process(_accept_loop())

    def _make_sink_pool(self, block_size: int) -> BlockPool:
        return BlockPool.build_sink(
            self.host, self.pd, self.config.sink_blocks, block_size
        )

    def _engine_for_session(self, session_id: int) -> Optional[SinkEngine]:
        """The sink engine holding a live registration for ``session_id``."""
        for engine in self.sink_engines.values():
            if session_id in engine._expected_bytes:
                return engine
        return None

    def _srq_dispatch(self) -> Generator:
        """Shared-receive-queue dispatcher: route eager arrivals.

        One thread serves every data QP attached to the SRQ.  The
        consumed WQE is re-posted only *after* the engine's handler
        returns — the handler may wait on a free sink block, so pool
        starvation shrinks the shared ring and surfaces as RNR NAKs on
        the wire, the eager analogue of withholding credits.
        """
        assert self._srq is not None and self._srq_recv_cq is not None
        thread = self.host.thread("srq-sink", "app")
        recv_channel = CompletionChannel(self._srq_recv_cq)
        profile = self.device.arch_profile
        wqe_len = self.config.block_size + HEADER_BYTES
        stray = self.engine.metrics.counter("sink.eager_stray")
        while True:
            yield recv_channel.wait(thread)
            wcs = yield self._srq_recv_cq.poll(thread, max_entries=64)
            for wc in wcs:
                if not wc.ok or wc.payload is None:
                    continue
                wire = wc.payload
                engine = self._engine_for_session(wire.header.session_id)
                if engine is None:
                    # No live registration (late arrival after finish /
                    # reclaim, or a misrouted SEND): drop and count.
                    stray.add()
                else:
                    yield from engine.on_eager_block(thread, wire)
                yield thread.exec(profile.post_recv_seconds)
                self._srq.post_recv(RecvWR(length=wqe_len, wr_id=wc.wr_id))

    # -- client role -----------------------------------------------------------------
    def _get_host_pool(
        self,
        remote: "Device",
        port: int,
        cfg: ProtocolConfig,
        client_id: int,
        fault_injector: Any,
    ) -> Generator:
        """The shared :class:`HostChannelPool` for ``(remote, port)``,
        creating it on first use (srq mode only).

        Concurrent first openers race here; a pending sentinel is stored
        synchronously (before the first yield) so exactly one of them
        connects the pool QPs while the rest wait on its event.  Fault
        injectors are installed on the pool QPs at creation only — the
        first opener's hooks cover every rider, matching the shared
        fate of shared channels.
        """
        key = (remote, port)
        entry = self._host_pools.get(key)
        if isinstance(entry, HostChannelPool):
            return entry
        if entry is not None:  # ("pending", event): creation in flight
            yield entry[1]
            return self._host_pools[key]
        pending = Event(self.engine)
        self._host_pools[key] = ("pending", pending)
        send_cq = self.device.create_cq()
        qps = []
        for i in range(cfg.qp_pool_size):
            qp = self.device.create_qp(
                self.pd,
                send_cq,
                self.device.create_cq(),
                max_send_wr=cfg.send_queue_depth,
            )
            yield self.cm.connect(qp, remote, port, ("data", client_id, i))
            qp.fault_injector = getattr(
                fault_injector, "data_qp_hook", fault_injector
            )
            qp.corrupt_injector = getattr(fault_injector, "data_corrupt_hook", None)
            qps.append(qp)
        data = DataChannels(qps)
        pool = BlockPool.build_source(
            self.host, self.pd, cfg.source_blocks, cfg.block_size
        )
        sessions = ResourcePool(self.engine, cfg.pool_sessions)
        hpool = HostChannelPool(self.host, data, send_cq, pool, sessions, cfg)
        hpool.start()
        self._host_pools[key] = hpool
        pending.succeed(hpool)
        return hpool

    def open_link(
        self,
        remote: "Device",
        port: int,
        config: Optional[ProtocolConfig] = None,
        fault_injector: Any = None,
        tcp_factory: Any = None,
    ):
        """Process event resolving to a :class:`SourceLink`.

        Establishes the connection set of §IV: one control QP plus
        ``num_channels`` data QPs sharing a send CQ, and the registered
        source block pool.  Any number of concurrent or sequential
        sessions can then run over the link via
        :meth:`SourceLink.transfer`.

        ``tcp_factory`` (optional): zero-arg callable returning a
        connected :class:`~repro.tcp.connection.TcpConnection` through
        the same fabric (e.g. ``testbed.tcp_connection``).  When wired,
        a session that loses every data channel degrades to the TCP
        fallback path instead of aborting.
        """
        cfg = config or self.config
        client_id = next(_client_ids)

        def _open() -> Generator:
            ctrl_qp = self.device.create_qp(
                self.pd,
                self.device.create_cq(),
                self.device.create_cq(),
                max_send_wr=cfg.send_queue_depth,
            )
            yield self.cm.connect(ctrl_qp, remote, port, ("ctrl", client_id))
            ctrl = ControlChannel(ctrl_qp, cfg.ctrl_recv_depth)
            ctrl_hook = getattr(fault_injector, "ctrl_hook", None)
            if ctrl_hook is not None:
                ctrl.fault_hook = ctrl_hook
            if cfg.use_srq:
                # Shared data-plane: lease channels from the per-host QP
                # pool instead of opening num_channels dedicated QPs and
                # a dedicated block pool for this link.
                hpool = yield from self._get_host_pool(
                    remote, port, cfg, client_id, fault_injector
                )
                link = SourceLink(
                    self.host,
                    ctrl,
                    hpool.data,
                    hpool.send_cq,
                    hpool.block_pool,
                    cfg,
                    host_pool=hpool,
                )
                link._ctrl_qp = ctrl_qp  # for RNR stats in outcomes
                # A *copy*: reopen_channel appends to both link.data.qps
                # and _data_qps; aliasing would double-register the QP.
                link._data_qps = list(hpool.data.qps)
                link._client_id = client_id
                link._fault_injector = fault_injector
                link.tcp_factory = tcp_factory
                link._reopen = lambda: self.reopen_channel(link, remote, port, cfg)
                return link
            data_send_cq = self.device.create_cq()
            data_recv_cq = self.device.create_cq()
            data_qps = []
            for i in range(cfg.num_channels):
                qp = self.device.create_qp(
                    self.pd,
                    data_send_cq,
                    data_recv_cq,
                    max_send_wr=cfg.send_queue_depth,
                )
                yield self.cm.connect(qp, remote, port, ("data", client_id, i))
                # A FaultInjector exposes its data-plane hook; plain
                # callables (the original testing interface) pass through.
                qp.fault_injector = getattr(
                    fault_injector, "data_qp_hook", fault_injector
                )
                qp.corrupt_injector = getattr(
                    fault_injector, "data_corrupt_hook", None
                )
                data_qps.append(qp)
            data = DataChannels(data_qps)
            pool = BlockPool.build_source(
                self.host, self.pd, cfg.source_blocks, cfg.block_size
            )
            link = SourceLink(self.host, ctrl, data, data_send_cq, pool, cfg)
            link._ctrl_qp = ctrl_qp  # for RNR stats in outcomes
            link._data_qps = data_qps
            link._client_id = client_id  # for reopen_channel
            link._fault_injector = fault_injector
            link.tcp_factory = tcp_factory
            link._reopen = lambda: self.reopen_channel(link, remote, port, cfg)
            return link

        return self.engine.process(_open())

    def transfer(
        self,
        remote: "Device",
        port: int,
        data_source: Any,
        total_bytes: int,
        config: Optional[ProtocolConfig] = None,
        fault_injector: Any = None,
        link: Optional[SourceLink] = None,
        tcp_factory: Any = None,
        reuse_negotiation: bool = False,
        session_id: Optional[int] = None,
    ):
        """Process event resolving to a :class:`TransferOutcome`.

        ``data_source`` must provide ``read(thread, nbytes, seq)`` as a
        process generator returning the block payload.  Passing an
        existing ``link`` (from :meth:`open_link`) runs the session over
        it instead of establishing fresh connections.
        ``fault_injector`` (testing): a ``(SendWR) -> bool`` installed on
        every data QP; returning True fails that WRITE transiently,
        exercising the protocol's re-send path.
        ``reuse_negotiation`` (with an already-negotiated ``link``): skip
        the link-level BLOCK_SIZE/CHANNELS exchanges and open the session
        with a single SESSION_REQ round trip — the scheduler's fast path
        for runs of small files to one peer.
        ``session_id`` (optional): run the session under a caller-chosen
        id from :func:`allocate_session_id` instead of drawing one here —
        lets the broker journal the attempt before it starts.
        """
        if session_id is None:
            session_id = next(_session_ids)

        def _run() -> Generator:
            the_link = link
            if the_link is None:
                the_link = yield self.open_link(
                    remote, port, config, fault_injector, tcp_factory
                )
            mr_reqs_before = the_link.mr_requests_sent
            job = yield the_link.transfer(
                data_source,
                total_bytes,
                session_id,
                reuse_negotiation=reuse_negotiation,
            )
            assert job.started_at is not None and job.finished_at is not None
            return TransferOutcome(
                session_id=session_id,
                bytes=total_bytes,
                elapsed=job.finished_at - job.started_at,
                blocks=job.total_blocks,
                resends=job.resends,
                mr_requests=the_link.mr_requests_sent - mr_reqs_before,
                ctrl_sent=the_link.ctrl.sent,
                ctrl_received=the_link.ctrl.received,
                peak_credits=the_link.ledger.peak_balance,
                rnr_naks=sum(qp.rnr_naks.count for qp in the_link._data_qps)
                + the_link._ctrl_qp.rnr_naks.count,
                ctrl_retries=job.ctrl_retries,
                repairs=job.repairs,
                fallbacks=job.fallbacks,
                fallback_blocks=job.fallback_blocks,
                repromotions=job.repromotions,
            )

        return self.engine.process(_run())

    def resume(
        self,
        remote: "Device",
        port: int,
        data_source: Any,
        total_bytes: int,
        session_id: int,
        config: Optional[ProtocolConfig] = None,
        fault_injector: Any = None,
        link: Optional[SourceLink] = None,
        tcp_factory: Any = None,
    ):
        """Process event resolving to a :class:`TransferOutcome` for a
        *resumed* session.

        ``session_id`` must be the id of a session that previously died
        mid-transfer (on this link or a dead predecessor).  The sink is
        asked for its restart marker and only the missing suffix is read
        and re-sent; the stitched result at the sink is byte-exact.  Fails
        with a typed :class:`~repro.core.errors.TransferError` when the
        sink rejects the resume or the re-attached session aborts again.
        """

        def _run() -> Generator:
            the_link = link
            if the_link is None:
                the_link = yield self.open_link(
                    remote, port, config, fault_injector, tcp_factory
                )
            mr_reqs_before = the_link.mr_requests_sent
            job = yield the_link.resume(data_source, total_bytes, session_id)
            assert job.started_at is not None and job.finished_at is not None
            return TransferOutcome(
                session_id=session_id,
                bytes=max(0, total_bytes - job.start_seq * job.block_size),
                elapsed=job.finished_at - job.started_at,
                blocks=job.blocks_to_send,
                resends=job.resends,
                mr_requests=the_link.mr_requests_sent - mr_reqs_before,
                ctrl_sent=the_link.ctrl.sent,
                ctrl_received=the_link.ctrl.received,
                peak_credits=the_link.ledger.peak_balance,
                rnr_naks=sum(qp.rnr_naks.count for qp in the_link._data_qps)
                + the_link._ctrl_qp.rnr_naks.count,
                ctrl_retries=job.ctrl_retries,
                repairs=job.repairs,
                resumed_from=job.start_seq,
                fallbacks=job.fallbacks,
                fallback_blocks=job.fallback_blocks,
                repromotions=job.repromotions,
            )

        return self.engine.process(_run())

    def reopen_channel(
        self,
        link: SourceLink,
        remote: "Device",
        port: int,
        config: Optional[ProtocolConfig] = None,
    ):
        """Process event re-establishing one data channel on ``link``.

        After a failover shrank the rotation, this restores parallelism:
        a fresh data QP is connected, inherits the link's fault hooks,
        and joins the send rotation.  Resolves to the new QueuePair.
        """
        cfg = config or self.config

        def _reopen() -> Generator:
            qp = self.device.create_qp(
                self.pd,
                link.data_send_cq,
                self.device.create_cq(),
                max_send_wr=cfg.send_queue_depth,
            )
            yield self.cm.connect(
                qp, remote, port, ("data", link._client_id, len(link._all_data_qps))
            )
            injector = getattr(link, "_fault_injector", None)
            qp.fault_injector = getattr(injector, "data_qp_hook", injector)
            qp.corrupt_injector = getattr(injector, "data_corrupt_hook", None)
            link.data.adopt(qp)
            link._all_data_qps.append(qp)
            link._data_qps.append(qp)
            return qp

        return self.engine.process(_reopen())
