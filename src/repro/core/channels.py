"""Channel wrappers: the control QP and the parallel data QPs.

The control channel runs SEND/RECV with a pre-posted receive ring (sized
so a healthy run never draws an RNR NAK); bulk payload goes over one or
more data QPs as RDMA WRITE.  All verbs-call CPU costs are charged to the
calling thread here, in one place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional

from repro.core.messages import ControlMessage, CTRL_MSG_BYTES, DataBlockWire
from repro.verbs.cq import CompletionChannel
from repro.verbs.wr import Opcode, RecvWR, SendWR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.blocks import SourceBlock
    from repro.core.credits import Credit
    from repro.core.messages import BlockHeader
    from repro.hardware.cpu import CpuThread
    from repro.verbs.qp import QueuePair

__all__ = ["ControlChannel", "DataChannels"]


class ControlChannel:
    """SEND/RECV messaging over the dedicated control QP."""

    def __init__(self, qp: "QueuePair", recv_depth: int = 128) -> None:
        self.qp = qp
        self.engine = qp.engine
        self.profile = qp.device.arch_profile
        self.recv_depth = recv_depth
        self._recv_channel = CompletionChannel(qp.recv_cq)
        self.sent = 0
        self.received = 0
        #: Optional fault hook ``(msg) -> None | "drop" | float``: None for
        #: clean delivery, "drop" to lose the message after the CPU cost is
        #: paid, a float to delay posting by that many seconds.
        self.fault_hook = None
        self.dropped = 0
        self.delayed = 0
        # Pre-post the receive ring (setup time, not charged).
        for i in range(recv_depth):
            qp.post_recv(RecvWR(length=CTRL_MSG_BYTES, wr_id=i))

    def send(self, thread: "CpuThread", msg: ControlMessage) -> Generator:
        """Post a control message (unsignalled SEND; fire-and-forget)."""
        yield thread.exec(self.profile.post_send_seconds)
        if self.fault_hook is not None:
            verdict = self.fault_hook(msg)
            if verdict == "drop":
                # CPU cost was paid, the message never reaches the wire —
                # models loss the reliable QP cannot see (e.g. a stale
                # route eating the datagram before the NIC retransmit
                # window, or an injected switch fault).
                self.dropped += 1
                self.engine.trace(
                    "ctrl", "drop", type=msg.type.value, session=msg.session_id
                )
                self.sent += 1
                return
            if verdict is not None and verdict > 0:
                # Delay inline (before posting) so FIFO ordering on the QP
                # is preserved — only this message's departure slips.
                self.delayed += 1
                yield self.engine.timeout(verdict)
        self.engine.trace(
            "ctrl", "send", type=msg.type.value, session=msg.session_id
        )
        self.qp.post_send(
            SendWR(
                opcode=Opcode.SEND,
                length=msg.wire_bytes,
                payload=msg,
                signaled=False,
            )
        )
        self.sent += 1

    def receive(self, thread: "CpuThread") -> Generator:
        """Block until control messages arrive; returns the batch.

        Charges the interrupt wakeup, per-CQE poll cost, and the
        re-posting of consumed receive buffers.
        """
        yield self._recv_channel.wait(thread)
        wcs = yield self.qp.recv_cq.poll(thread, max_entries=self.recv_depth)
        messages: List[ControlMessage] = []
        for wc in wcs:
            if not wc.ok:
                continue
            messages.append(wc.payload)
            # Recycle the receive buffer.
            yield thread.exec(self.profile.post_recv_seconds)
            self.qp.post_recv(RecvWR(length=CTRL_MSG_BYTES, wr_id=wc.wr_id))
        self.received += len(messages)
        return messages


class DataChannels:
    """The parallel data-plane QPs (§IV-A: multi-channel transfer)."""

    #: Poll interval while the chosen QP's send queue is full.
    _BACKOFF = 2e-6

    def __init__(self, qps: List["QueuePair"]) -> None:
        if not qps:
            raise ValueError("need at least one data QP")
        self.qps = qps
        self.engine = qps[0].engine
        self.profile = qps[0].device.arch_profile
        self._rr = 0
        self.blocks_posted = 0

    def __len__(self) -> int:
        return len(self.qps)

    def _pick(self) -> "QueuePair":
        """Least-loaded QP, round-robin tie-break."""
        best: Optional["QueuePair"] = None
        n = len(self.qps)
        for i in range(n):
            qp = self.qps[(self._rr + i) % n]
            if best is None or qp.send_outstanding < best.send_outstanding:
                best = qp
        self._rr = (self._rr + 1) % n
        assert best is not None
        return best

    def post_write(
        self,
        thread: "CpuThread",
        block: "SourceBlock",
        credit: "Credit",
        header: "BlockHeader",
        wr_id: Optional[int] = None,
    ) -> Generator:
        """Post one block as an RDMA WRITE against the credit's region.

        ``wr_id`` defaults to the header's sequence number; multi-session
        links pass a link-unique id so completions route unambiguously.
        """
        qp = self._pick()
        while qp.send_room == 0:
            yield self.engine.timeout(self._BACKOFF)
        yield thread.exec(self.profile.post_send_seconds)
        wire = DataBlockWire(header=header, payload=block.payload, block_id=credit.block_id)
        qp.post_send(
            SendWR(
                opcode=Opcode.RDMA_WRITE,
                length=header.wire_bytes,
                wr_id=header.seq if wr_id is None else wr_id,
                remote_addr=credit.addr,
                rkey=credit.rkey,
                payload=wire,
            )
        )
        self.blocks_posted += 1

    @property
    def outstanding(self) -> int:
        return sum(qp.send_outstanding for qp in self.qps)
