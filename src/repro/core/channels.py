"""Channel wrappers: the control QP and the parallel data QPs.

The control channel runs SEND/RECV with a pre-posted receive ring (sized
so a healthy run never draws an RNR NAK); bulk payload goes over one or
more data QPs as RDMA WRITE.  All verbs-call CPU costs are charged to the
calling thread here, in one place.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from repro.core.health import ChannelBreaker
from repro.core.messages import ControlMessage, CTRL_MSG_BYTES, DataBlockWire
from repro.verbs.cq import CompletionChannel
from repro.verbs.errors import QpStateError
from repro.verbs.qp import QpState
from repro.verbs.wr import Opcode, RecvWR, SendWR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.blocks import SourceBlock
    from repro.core.config import ProtocolConfig
    from repro.core.credits import Credit
    from repro.core.messages import BlockHeader
    from repro.core.pool import BlockPool, ResourcePool
    from repro.hardware.cpu import CpuThread
    from repro.hardware.host import Host
    from repro.verbs.cq import CompletionQueue
    from repro.verbs.qp import QueuePair

__all__ = [
    "ControlChannel",
    "DataChannels",
    "HostChannelPool",
    "NoLiveChannelError",
]


class NoLiveChannelError(RuntimeError):
    """Every data QP is in ERROR state; nothing can carry a WRITE.

    Callers translate this into the typed
    :class:`~repro.core.errors.DataChannelsLost` session abort."""


class ControlChannel:
    """SEND/RECV messaging over the dedicated control QP."""

    def __init__(self, qp: "QueuePair", recv_depth: int = 128) -> None:
        self.qp = qp
        self.engine = qp.engine
        self.profile = qp.device.arch_profile
        self.recv_depth = recv_depth
        self._recv_channel = CompletionChannel(qp.recv_cq)
        reg = self.engine.metrics
        labels = {"qp": qp.qp_num, "i": reg.sequence("ctrl_channel")}
        self._m_sent = reg.counter("ctrl.sent", **labels)
        self._m_received = reg.counter("ctrl.received", **labels)
        self._m_dropped = reg.counter("ctrl.dropped", **labels)
        self._m_delayed = reg.counter("ctrl.delayed", **labels)
        #: Optional fault hook ``(msg) -> None | "drop" | float``: None for
        #: clean delivery, "drop" to lose the message after the CPU cost is
        #: paid, a float to delay posting by that many seconds.
        self.fault_hook = None
        # Pre-post the receive ring (setup time, not charged).
        for i in range(recv_depth):
            qp.post_recv(RecvWR(length=CTRL_MSG_BYTES, wr_id=i))

    # -- backwards-compat stat views ------------------------------------------
    @property
    def sent(self) -> int:
        return int(self._m_sent.total)

    @property
    def received(self) -> int:
        return int(self._m_received.total)

    @property
    def dropped(self) -> int:
        return int(self._m_dropped.total)

    @property
    def delayed(self) -> int:
        return int(self._m_delayed.total)

    def send(self, thread: "CpuThread", msg: ControlMessage) -> Generator:
        """Post a control message (unsignalled SEND; fire-and-forget)."""
        yield thread.exec(self.profile.post_send_seconds)
        if self.fault_hook is not None:
            verdict = self.fault_hook(msg)
            if verdict == "drop":
                # CPU cost was paid, the message never reaches the wire —
                # models loss the reliable QP cannot see (e.g. a stale
                # route eating the datagram before the NIC retransmit
                # window, or an injected switch fault).
                self._m_dropped.add()
                self.engine.trace(
                    "ctrl", "drop", type=msg.type.value, session=msg.session_id
                )
                self._m_sent.add()
                return
            if verdict is not None and verdict > 0:
                # Delay inline (before posting) so FIFO ordering on the QP
                # is preserved — only this message's departure slips.
                self._m_delayed.add()
                yield self.engine.timeout(verdict)
        self.engine.trace(
            "ctrl", "send", type=msg.type.value, session=msg.session_id
        )
        self.qp.post_send(
            SendWR(
                opcode=Opcode.SEND,
                length=msg.wire_bytes,
                payload=msg,
                signaled=False,
            )
        )
        self._m_sent.add()

    def receive(self, thread: "CpuThread") -> Generator:
        """Block until control messages arrive; returns the batch.

        Charges the interrupt wakeup, per-CQE poll cost, and the
        re-posting of consumed receive buffers.
        """
        yield self._recv_channel.wait(thread)
        wcs = yield self.qp.recv_cq.poll(thread, max_entries=self.recv_depth)
        messages: List[ControlMessage] = []
        for wc in wcs:
            if not wc.ok:
                continue
            messages.append(wc.payload)
            # Recycle the receive buffer.
            yield thread.exec(self.profile.post_recv_seconds)
            self.qp.post_recv(RecvWR(length=CTRL_MSG_BYTES, wr_id=wc.wr_id))
        if messages:
            self._m_received.add(len(messages))
        return messages


class DataChannels:
    """The parallel data-plane QPs (§IV-A: multi-channel transfer)."""

    #: Poll interval while the chosen QP's send queue is full.
    _BACKOFF = 2e-6

    def __init__(self, qps: List["QueuePair"]) -> None:
        if not qps:
            raise ValueError("need at least one data QP")
        self.qps = qps
        self.engine = qps[0].engine
        self.profile = qps[0].device.arch_profile
        self._rr = 0
        reg = self.engine.metrics
        self._idx = reg.sequence("data_channels")
        self._m_posted = reg.counter("data.blocks_posted", i=self._idx)
        self._m_detached = reg.counter("data.qps_detached", i=self._idx)
        #: per-QP posted-block counters, bound up front (and in
        #: :meth:`adopt` for QPs re-established after failover) so the
        #: post path never touches the registry.
        self._m_posted_by_qp = {}
        for qp in qps:
            self._bind_qp_counter(qp.qp_num)
        reg.gauge_fn("data.alive_qps", lambda: self.alive_count, i=self._idx)
        #: QPs removed from the rotation after entering ERROR (failover).
        self.dead: List["QueuePair"] = []
        #: Optional circuit-breaker lookup ``qp_num -> ChannelBreaker``;
        #: when set, :meth:`_pick` skips quarantined (OPEN) channels.  A
        #: QP that is RTS but quarantined does NOT count as lost: if the
        #: breakers would reject every live QP, the least-recently
        #: tripped one is force-admitted instead, so NoLiveChannelError
        #: keeps its exact meaning (no RTS QP at all).
        self.breaker_lookup = None

    # -- backwards-compat stat views ------------------------------------------
    @property
    def blocks_posted(self) -> int:
        return int(self._m_posted.total)

    @property
    def detached(self) -> int:
        return int(self._m_detached.total)

    def __len__(self) -> int:
        return len(self.qps)

    @property
    def alive_count(self) -> int:
        """Channels still able to carry WRITEs."""
        return sum(1 for qp in self.qps if qp.state is QpState.RTS)

    def detach(self, qp_num: int) -> Optional["QueuePair"]:
        """Drop a dead QP from the send rotation (failover bookkeeping).

        Only a QP that has actually left RTS is detached — a WR_FLUSH_ERR
        completion always implies that, but the guard keeps a stale or
        duplicate flush from evicting a healthy channel.  Returns the
        detached QP, or ``None`` if nothing was removed.
        """
        for i, qp in enumerate(self.qps):
            if qp.qp_num != qp_num:
                continue
            if qp.state is QpState.RTS:
                return None
            del self.qps[i]
            self.dead.append(qp)
            self._m_detached.add()
            self.engine.trace("data", "detach", qp=qp_num, alive=self.alive_count)
            return qp
        return None

    def _bind_qp_counter(self, qp_num: int) -> None:
        """Bind the per-QP posted-block counter once, at membership time."""
        if qp_num not in self._m_posted_by_qp:
            self._m_posted_by_qp[qp_num] = self.engine.metrics.counter(
                "data.qp_blocks_posted", i=self._idx, qp=qp_num
            )

    def adopt(self, qp: "QueuePair") -> None:
        """Add a (re-established) QP to the send rotation."""
        self.qps.append(qp)
        self._bind_qp_counter(qp.qp_num)
        self.engine.trace("data", "adopt", qp=qp.qp_num, alive=self.alive_count)

    def _pick(self) -> "QueuePair":
        """Least-loaded live QP, round-robin tie-break.

        Honours the circuit breakers when wired (quarantined channels
        are skipped while an admissible one exists).  Raises
        :class:`NoLiveChannelError` when every QP is dead."""
        best: Optional["QueuePair"] = None
        fallback: Optional["QueuePair"] = None  # live but quarantined
        fallback_until = float("inf")
        now = self.engine.now
        n = len(self.qps)
        for i in range(n):
            qp = self.qps[(self._rr + i) % n]
            if qp.state is not QpState.RTS:
                continue
            breaker = (
                self.breaker_lookup(qp.qp_num)
                if self.breaker_lookup is not None
                else None
            )
            if breaker is not None and not breaker.peek_admit(now):
                if breaker.open_until < fallback_until:
                    fallback, fallback_until = qp, breaker.open_until
                continue
            if best is None or qp.send_outstanding < best.send_outstanding:
                best = qp
        self._rr = (self._rr + 1) % n
        if best is None:
            best = fallback  # all live QPs quarantined: force-admit one
        if best is None:
            raise NoLiveChannelError("all data QPs are in ERROR state")
        if self.breaker_lookup is not None:
            breaker = self.breaker_lookup(best.qp_num)
            if breaker is not None:
                breaker.note_post(now)
        return best

    def post_write(
        self,
        thread: "CpuThread",
        block: "SourceBlock",
        credit: "Credit",
        header: "BlockHeader",
        wr_id: Optional[int] = None,
    ) -> Generator:
        """Post one block as an RDMA WRITE against the credit's region.

        ``wr_id`` defaults to the header's sequence number; multi-session
        links pass a link-unique id so completions route unambiguously.
        """
        while True:
            qp = self._pick()
            while qp.send_room == 0 and qp.state is QpState.RTS:
                yield self.engine.timeout(self._BACKOFF)
            yield thread.exec(self.profile.post_send_seconds)
            wire = DataBlockWire(
                header=header, payload=block.payload, block_id=credit.block_id
            )
            try:
                qp.post_send(
                    SendWR(
                        opcode=Opcode.RDMA_WRITE,
                        length=header.wire_bytes,
                        wr_id=header.seq if wr_id is None else wr_id,
                        remote_addr=credit.addr,
                        rkey=credit.rkey,
                        payload=wire,
                    )
                )
            except QpStateError:
                # The chosen QP died between pick and post; fail over to a
                # surviving channel (or let _pick raise when none remain).
                continue
            break
        self._m_posted.add()
        self._m_posted_by_qp[qp.qp_num].add()

    def post_send_block(
        self,
        thread: "CpuThread",
        block: "SourceBlock",
        header: "BlockHeader",
        wr_id: int,
    ) -> Generator:
        """Post one block as a two-sided SEND — the *eager* transport.

        No credit precedes this: the receiver's shared receive queue
        supplies the landing buffer, so a small block costs one shared
        WQE instead of an MR exchange plus a dedicated region.  An empty
        SRQ shows up as RNR NAK + retry inside the QP, exactly the
        backpressure the rendezvous path expresses through credits.
        """
        while True:
            qp = self._pick()
            while qp.send_room == 0 and qp.state is QpState.RTS:
                yield self.engine.timeout(self._BACKOFF)
            yield thread.exec(self.profile.post_send_seconds)
            wire = DataBlockWire(header=header, payload=block.payload)
            try:
                qp.post_send(
                    SendWR(
                        opcode=Opcode.SEND,
                        length=header.wire_bytes,
                        wr_id=wr_id,
                        payload=wire,
                    )
                )
            except QpStateError:
                # The chosen QP died between pick and post; fail over to a
                # surviving channel (or let _pick raise when none remain).
                continue
            break
        self._m_posted.add()
        self._m_posted_by_qp[qp.qp_num].add()

    @property
    def outstanding(self) -> int:
        # Detached QPs still drain flush completions; count them so the
        # chaos audit's "no stranded WRs" check covers failover too.
        return sum(qp.send_outstanding for qp in self.qps) + sum(
            qp.send_outstanding for qp in self.dead
        )


class HostChannelPool:
    """Shared data-plane for every link to one ``(host, port)`` peer.

    In srq mode (``config.use_srq``) the middleware opens the data-plane
    *once per peer host*: ``qp_pool_size`` QPs sharing one send CQ, one
    registered source block pool, and a :class:`~repro.core.pool.ResourcePool`
    of session leases.  Links lease a slot instead of creating
    ``num_channels`` dedicated QPs and a dedicated pool each — per-host
    pinned memory and QP count stay constant as session concurrency
    grows, which is the whole point of the SRQ design.

    The pool owns the one :class:`CompletionChannel` on the shared send
    CQ and runs the completion dispatcher: every posted WR is registered
    in :attr:`routes` (wr_id → owning link) and its completion is routed
    to that link's inbox.  Circuit breakers are pool-level too — a
    flapping shared QP is quarantined for every rider at once.
    """

    def __init__(
        self,
        host: "Host",
        data: DataChannels,
        send_cq: "CompletionQueue",
        block_pool: "BlockPool",
        sessions: "ResourcePool",
        config: "ProtocolConfig",
    ) -> None:
        self.host = host
        self.engine = host.engine
        self.data = data
        self.send_cq = send_cq
        self.cc = CompletionChannel(send_cq)
        self.block_pool = block_pool
        self.sessions = sessions
        self.config = config
        #: One wr_id space for every link riding the shared send CQ.
        self.wr_ids = itertools.count()
        #: wr_id -> owning SourceLink; popped as completions are routed.
        #: A link that abandons a post before the WR reaches the wire
        #: (no-live-channel cleanup) pops its own entry.
        self.routes: Dict[int, object] = {}
        self._breakers: Dict[int, ChannelBreaker] = {}
        self._started = False

    def breaker_for(self, qp_num: int) -> ChannelBreaker:
        """Pool-level circuit breakers: quarantine history is shared by
        every link (cooldown uses the static floor — the pool has no
        single RTT estimator to adapt with)."""
        breaker = self._breakers.get(qp_num)
        if breaker is None:
            breaker = ChannelBreaker(
                qp_num,
                self.config.breaker_failures,
                lambda: self.config.breaker_cooldown_min,
            )
            self._breakers[qp_num] = breaker
        return breaker

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.data.breaker_lookup = self.breaker_for
        self.engine.process(self._dispatch_thread())

    def _dispatch_thread(self) -> Generator:
        thread = self.host.thread("qp-pool", "app")
        while True:
            yield self.cc.wait(thread)
            wcs = yield self.send_cq.poll(thread, max_entries=64)
            for wc in wcs:
                link = self.routes.pop(wc.wr_id, None)
                if link is None:
                    continue  # owner withdrew the post before it flew
                yield link._wc_inbox.put(wc)
