"""The data-sink protocol engine (receiver side of §IV).

The sink is *not* on the data path: payload lands in its registered
blocks via one-sided RDMA WRITE with zero sink CPU.  Its threads only:

- handle control messages — negotiate parameters, turn BLOCK_DONE
  notifications into READY blocks (via the reassembly buffer), and grant
  credits per the proactive-feedback policy;
- consume READY blocks in order (``get_ready_blk``), hand payload to the
  application's data sink (file system, /dev/null), and recycle blocks
  (``put_free_blk``), triggering fresh grants.

Recovery: duplicate negotiation requests are answered idempotently (a
retransmitting source must converge on one session, one grant), completed
sessions have their bookkeeping retired so the dicts stay bounded, and a
lazily-running garbage collector reclaims sessions idle past
``session_idle_timeout`` — freeing parked reassembly blocks and, once no
live session shares the pool, revoking credits a dead source can never
honour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from repro.core.blocks import SinkBlock, SinkBlockState
from repro.core.channels import ControlChannel
from repro.core.config import ProtocolConfig
from repro.core.credits import Credit, CreditGranter
from repro.core.errors import EndpointCrashed, PeerDead, StaleSessionReclaimed
from repro.core.health import HealthMonitor
from repro.core.messages import ControlMessage, CtrlType, block_checksum
from repro.core.pool import BlockPool
from repro.core.reassembly import ReassemblyBuffer
from repro.sim.events import Event
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.host import Host
    from repro.sim.engine import Engine

__all__ = ["SinkEngine"]


class SinkEngine:
    """Drives the receiving side of transfer sessions on one control
    channel."""

    def __init__(
        self,
        host: "Host",
        ctrl: ControlChannel,
        config: ProtocolConfig,
        data_sink: Any,
        pool_factory,
    ) -> None:
        self.host = host
        self.engine: "Engine" = host.engine
        self.ctrl = ctrl
        self.config = config
        self.data_sink = data_sink
        #: Callable ``(block_size) -> BlockPool[SinkBlock]`` — the pool is
        #: built only once the block size is negotiated.
        self.pool_factory = pool_factory

        self.pool: Optional[BlockPool[SinkBlock]] = None
        self.granter: Optional[CreditGranter] = None
        reg = self.engine.metrics
        self._m_idx = reg.sequence("sink_engine")
        labels = {"sink": self._m_idx}
        self.reassembly = ReassemblyBuffer(registry=reg, sink=self._m_idx)
        self._ready: Store = Store(self.engine)
        self._expected_bytes: Dict[int, int] = {}
        self._consumed_bytes: Dict[int, int] = {}
        self._m_delivered = reg.counter("sink.blocks_delivered", **labels)
        self._m_reclaimed = reg.counter("sink.sessions_reclaimed", **labels)
        self._m_stray = reg.counter("sink.stray_messages", **labels)
        self._m_mismatches = reg.counter("sink.checksum_mismatches", **labels)
        self._m_nacks = reg.counter("sink.nacks_sent", **labels)
        self._m_markers = reg.counter("sink.markers_sent", **labels)
        self._m_resumes = reg.counter("sink.resumes", **labels)
        self._m_crashes = reg.counter("sink.crashes", **labels)
        reg.gauge_fn("sink.ready_blocks", lambda: len(self._ready.items), **labels)
        reg.gauge_fn(
            "sink.active_sessions", lambda: len(self._expected_bytes), **labels
        )
        self._dataset_done_total: Dict[int, int] = {}
        #: Sessions on the eager (SEND/RECV) transport: payload arrives
        #: through the shared receive queue, so no credits are granted
        #: for them — freeing their blocks must not advertise regions
        #: nothing will ever write into.
        self._eager_sessions: set = set()
        #: Succeeds per session once everything is consumed and acked;
        #: fails (defused) with :class:`StaleSessionReclaimed` when the GC
        #: reaps the session.
        self.session_done: Dict[int, Event] = {}
        #: session id -> total bytes, for sessions already acked and
        #: retired — lets a retransmitted DATASET_DONE be re-acked
        #: idempotently after cleanup.
        self._acked: Dict[int, int] = {}
        #: Ordered set (insertion-ordered dict, values unused) of retired
        #: session ids — finished or reclaimed, no longer in
        #: ``_expected_bytes``.  Bounds the per-session history the sink
        #: keeps after retirement: beyond ``config.sink_session_history``
        #: the oldest retired session's leftovers (_acked,
        #: _consumed_bytes, session_done, marker anchors, accounting
        #: epoch) are evicted.  A broker multiplexing thousands of short
        #: sessions over one link would otherwise grow these dicts
        #: without bound.
        self._retired: Dict[int, None] = {}
        #: session id -> last control/consumption activity timestamp.
        self._last_activity: Dict[int, float] = {}
        self._consumers_started = False
        self._gc_running = False
        # -- integrity / restart-marker / resume state --------------------------------
        #: session id -> contiguous *written* prefix, in blocks: everything
        #: below it has hit the application sink, so a resumed session
        #: re-attaches here.  Recoverable from the data file itself, it
        #: survives both GC reclaim and a sink crash.
        self._marker_upto: Dict[int, int] = {}
        #: session id -> seqs written above the contiguous prefix (the
        #: small out-of-order window of the parallel writer threads).
        self._marker_pending: Dict[int, set] = {}
        #: session id -> last BLOCK_MARKER value sent to the source.  The
        #: marker wire messages track the *delivered* prefix
        #: (``ReassemblyBuffer.next_seq``): delivery implies the checksum
        #: verified, which is all the source needs to release its repair
        #: copies — waiting for the writer threads too would hold its pool
        #: blocks hostage to sink disk latency.
        self._marker_sent: Dict[int, int] = {}
        #: session id -> marker cadence the source negotiated (bounded by
        #: the *source* pool so repair copies can't starve its readers).
        self._marker_interval: Dict[int, int] = {}
        #: session id -> (marker, credits) of the last SESSION_RESUME_REP,
        #: so a retransmitted resume request is answered idempotently.
        self._resume_grants: Dict[int, tuple] = {}
        # -- adaptive health / degraded-mode state -------------------------------------
        #: Peer liveness + RTT estimation (samples come from the PONGs to
        #: our own idle-time PINGs; the sink is otherwise a pure responder).
        self.health = HealthMonitor(self.engine, config)
        #: Optional zero-arg hook consulted on TRANSPORT_FALLBACK_REQ;
        #: returning True denies the fallback (fault injection).
        self.fallback_deny_hook = None
        #: session id -> live TcpBlockStream carrying the degraded session.
        self._fallback_streams: Dict[int, Any] = {}
        #: session id -> next expected seq recorded when the TCP consumer
        #: hit the EOF sentinel (the TRANSPORT_RESTORE anchor).
        self._fallback_done: Dict[int, int] = {}
        #: session id -> resume_seq of the accepted fallback, for
        #: idempotent replies to retransmitted TRANSPORT_FALLBACK_REQs.
        self._fallback_resume_seq: Dict[int, int] = {}
        #: session id -> (seq, credits) of the last ready
        #: TRANSPORT_RESTORE_REP, answered idempotently like resumes.
        self._restore_grants: Dict[int, tuple] = {}
        #: session id -> generation of the consumed-bytes accounting.
        #: Bumped whenever ``_consumed_bytes`` is re-anchored to the
        #: marker (fallback accept, resume, reclaim): a writer thread
        #: whose ``data_sink.write`` straddled the re-anchor must NOT
        #: apply its accounting — its block sits below the new marker
        #: and will be re-delivered, so counting it twice would retire
        #: the session one block early.
        self._accounting_epoch: Dict[int, int] = {}
        self._last_ping_at = float("-inf")
        self._m_pings = reg.counter("sink.pings", **labels)
        self._m_peer_dead = reg.counter("sink.peer_dead", **labels)
        self._m_fallback_sessions = reg.counter("sink.fallback_sessions", **labels)
        self._m_fallback_blocks = reg.counter("sink.fallback_blocks", **labels)

    # -- backwards-compat stat views ------------------------------------------
    @property
    def blocks_delivered(self) -> int:
        return int(self._m_delivered.total)

    @property
    def sessions_reclaimed(self) -> int:
        return int(self._m_reclaimed.total)

    @property
    def stray_messages(self) -> int:
        return int(self._m_stray.total)

    @property
    def checksum_mismatches(self) -> int:
        return int(self._m_mismatches.total)

    @property
    def nacks_sent(self) -> int:
        return int(self._m_nacks.total)

    @property
    def markers_sent(self) -> int:
        return int(self._m_markers.total)

    @property
    def resumes(self) -> int:
        return int(self._m_resumes.total)

    @property
    def crashes(self) -> int:
        return int(self._m_crashes.total)

    @property
    def fallback_sessions(self) -> int:
        return int(self._m_fallback_sessions.total)

    @property
    def fallback_blocks(self) -> int:
        return int(self._m_fallback_blocks.total)

    # -- public -----------------------------------------------------------------
    def start(self) -> None:
        """Launch the control-handling thread."""
        self.engine.process(self._control_thread())

    def consumed_bytes(self, session_id: int) -> int:
        return self._consumed_bytes.get(session_id, 0)

    def active_sessions(self) -> int:
        return len(self._expected_bytes)

    # -- control plane -------------------------------------------------------------
    def _control_thread(self) -> Generator:
        thread = self.host.thread("snk-ctrl", "app")
        while True:
            msgs = yield from self.ctrl.receive(thread)
            for msg in msgs:
                self.health.heard()
                if msg.session_id in self._expected_bytes:
                    self._last_activity[msg.session_id] = self.engine.now
                yield from self._dispatch(thread, msg)

    def _dispatch(self, thread, msg: ControlMessage) -> Generator:
        if msg.type is CtrlType.BLOCK_SIZE_REQ:
            accept = msg.data >= 4096
            if self.pool is not None and msg.data != self.pool.block_size:
                # The registered pool is sized for one block size; a later
                # session must negotiate the same one (or a new link).
                accept = False
            if accept and self.pool is None:
                self.pool = self.pool_factory(msg.data)
                self.granter = CreditGranter(
                    self.pool,
                    grant_ratio=self.config.credit_grant_ratio,
                    proactive=self.config.proactive_credits,
                )
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.BLOCK_SIZE_REP, msg.session_id, accept),
            )
        elif msg.type is CtrlType.CHANNELS_REQ:
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.CHANNELS_REP, msg.session_id, True),
            )
        elif msg.type is CtrlType.SESSION_REQ:
            assert self.granter is not None, "block size not negotiated"
            # Srq-mode sources append the eager-transport flag; the
            # two-element shape is the unchanged rendezvous request.
            if len(msg.data) == 3:
                total_bytes, marker_interval, eager = msg.data
            else:
                (total_bytes, marker_interval), eager = msg.data, False
            if msg.session_id in self._expected_bytes:
                # Duplicate from a retransmitting source: the session (and
                # its initial grant) already exist — accept again but grant
                # nothing, or the pool would leak one credit per retry.
                yield from self.ctrl.send(
                    thread,
                    ControlMessage(CtrlType.SESSION_REP, msg.session_id, (True, ())),
                )
                return
            # A finished session's id may be legitimately reused.
            self._acked.pop(msg.session_id, None)
            # Marker-epoch guard: a *fresh* incarnation must not inherit
            # the restart marker a reclaimed predecessor left behind
            # (kept only to anchor SESSION_RESUME).  A stale
            # ``_marker_upto`` would overstate this incarnation's durable
            # prefix — a later resume would skip blocks it never wrote —
            # and a stale ``_marker_sent`` would stall marker emission.
            if (
                msg.session_id in self._marker_upto
                or msg.session_id in self._marker_sent
            ):
                self._marker_upto.pop(msg.session_id, None)
                self._marker_sent.pop(msg.session_id, None)
                self._marker_pending.pop(msg.session_id, None)
                self._accounting_epoch[msg.session_id] = (
                    self._accounting_epoch.get(msg.session_id, 0) + 1
                )
            self._retired.pop(msg.session_id, None)
            self._expected_bytes[msg.session_id] = total_bytes
            self._marker_interval[msg.session_id] = marker_interval
            self._consumed_bytes[msg.session_id] = 0
            self._last_activity[msg.session_id] = self.engine.now
            self.session_done[msg.session_id] = Event(self.engine)
            if not self._consumers_started:
                self._consumers_started = True
                for i in range(self.config.writer_threads):
                    self.engine.process(self._consumer_thread(i))
            if not self._gc_running:
                self._gc_running = True
                self.engine.process(self._gc_thread())
            if eager:
                # Eager sessions land via the shared receive queue; there
                # is no region to advertise, so the grant is empty.
                self._eager_sessions.add(msg.session_id)
                yield from self.ctrl.send(
                    thread,
                    ControlMessage(CtrlType.SESSION_REP, msg.session_id, (True, ())),
                )
                return
            self._eager_sessions.discard(msg.session_id)  # id reuse
            initial = tuple(self.granter.initial_grant(self.config.initial_credits))
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.SESSION_REP, msg.session_id, (True, initial)),
            )
        elif msg.type is CtrlType.BLOCK_DONE:
            if msg.session_id not in self._expected_bytes:
                # In flight when its session was reclaimed (or a replay).
                # The block's region may since have been refunded to a live
                # session or revoked — not ours to touch.
                self._m_stray.add()
                return
            yield from self._on_block_done(thread, msg)
        elif msg.type is CtrlType.MR_INFO_REQ:
            # Credits are link-level: answer as long as *any* session is
            # live, whichever session id the starved sender stamped on it.
            if self.granter is not None and self._expected_bytes:
                granted = self.granter.on_request()
                if granted:
                    yield from self._send_credits(thread, msg.session_id, granted)
            else:
                self._m_stray.add()
        elif msg.type is CtrlType.PING:
            # Link-level liveness (session id 0): echo the nonce so the
            # peer's estimator gets an unambiguous sample.
            yield from self.ctrl.send(
                thread, ControlMessage(CtrlType.PONG, msg.session_id, msg.data)
            )
        elif msg.type is CtrlType.PONG:
            self.health.on_pong(msg.data)
        elif msg.type is CtrlType.TRANSPORT_FALLBACK_REQ:
            yield from self._on_transport_fallback(thread, msg)
        elif msg.type is CtrlType.TRANSPORT_RESTORE_REQ:
            yield from self._on_transport_restore(thread, msg)
        elif msg.type is CtrlType.SESSION_RESUME_REQ:
            yield from self._on_session_resume(thread, msg)
        elif msg.type is CtrlType.DATASET_DONE:
            if msg.session_id in self._acked:
                # The original ACK was sent (and possibly lost) after the
                # session was retired: re-ack idempotently.
                yield from self.ctrl.send(
                    thread,
                    ControlMessage(
                        CtrlType.DATASET_DONE_ACK,
                        msg.session_id,
                        self._acked[msg.session_id],
                    ),
                )
            elif msg.session_id in self._expected_bytes:
                self._dataset_done_total[msg.session_id] = msg.data
                yield from self._maybe_finish(thread, msg.session_id)
            else:
                self._m_stray.add()
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"sink got unexpected control message {msg.type}")

    def _on_block_done(self, thread, msg: ControlMessage) -> Generator:
        assert self.pool is not None and self.granter is not None
        block_id, header = msg.data
        block = self.pool.by_id(block_id)
        # Extract what the one-sided WRITE deposited in the region.
        wire = block.mr.take(block.mr.buffer.addr)
        payload = wire.payload if wire is not None else None
        if self.config.checksum_blocks and header.checksum != block_checksum(payload):
            # The transport's CRC passed but the end-to-end checksum did
            # not: the region holds garbage.  Withhold the block — it
            # stays WAITING on the same region — and, when repair is on,
            # ask the source to re-send its still-WAITING copy into the
            # same credit.  With repair off the session starves and dies
            # with a typed abort instead of delivering corrupt data.
            self._m_mismatches.add()
            self.engine.trace(
                "sink", "checksum_mismatch",
                session=header.session_id, seq=header.seq,
            )
            if self.config.block_repair:
                self._m_nacks.add()
                yield from self.ctrl.send(
                    thread,
                    ControlMessage(
                        CtrlType.BLOCK_NACK,
                        header.session_id,
                        (header.seq, Credit.for_block(block)),
                    ),
                )
            return
        eager = header.session_id in self._eager_sessions
        if self.reassembly.reject_duplicate(header, payload):
            # A replay (or a resumed session re-sending data consumed
            # beyond the restart marker): the bytes are already accounted
            # for, so recycle the region straight away.
            block.revoke()
            self.pool.put_free_blk(block)
            if not eager or self.granter.pending_request:
                granted = self.granter.on_block_freed()
                if granted:
                    yield from self._send_credits(thread, msg.session_id, granted)
            return
        block.finish(header, payload)
        self._m_delivered.add()
        for hdr, blk in self.reassembly.push(header, block):
            yield self._ready.put((hdr, blk))
        # An eager session reaches here only through the rendezvous
        # repair path (a NACKed block re-written into a one-off credit);
        # granting replacements would advertise regions nothing writes
        # into, slowly pinning the whole pool — unless a starved
        # rendezvous sibling is owed a grant.
        if not eager or self.granter.pending_request:
            granted = self.granter.on_block_done()
            if granted:
                yield from self._send_credits(thread, msg.session_id, granted)
        yield from self._maybe_send_marker(thread, header.session_id)

    def on_eager_block(self, thread, wire) -> Generator:
        """One eager (SEND/RECV) arrival off the shared receive queue.

        The middleware's SRQ dispatcher hands over the
        :class:`~repro.core.messages.DataBlockWire` a SEND delivered;
        header and payload arrive together, so there is no BLOCK_DONE and
        no credit bookkeeping.  The payload is copied into a pool block
        (which may wait for the writer threads — that wait, not credits,
        is the eager path's flow control: the dispatcher does not repost
        the consumed WQE until this returns, so a starved pool surfaces
        as RNR backpressure on the wire).  A checksum mismatch repairs
        over the *rendezvous* path: the NACK carries a one-off credit for
        the block just claimed, and the source re-WRITEs into it.
        """
        header = wire.header
        payload = wire.payload
        sid = header.session_id
        if self.pool is None or sid not in self._expected_bytes:
            # Reclaimed or unknown session: the WQE was consumed but the
            # payload has no home.  Counted, not fatal — like strays.
            self._m_stray.add()
            return
        self._last_activity[sid] = self.engine.now
        if self.reassembly.reject_duplicate(header, payload):
            return  # no region was claimed; nothing to recycle
        block = yield self.pool.get_free_blk()
        block.advertise()  # FREE → WAITING: the region now owns this seq
        if self.config.checksum_blocks and header.checksum != block_checksum(payload):
            self._m_mismatches.add()
            self.engine.trace(
                "sink", "checksum_mismatch", session=sid, seq=header.seq
            )
            if self.config.block_repair:
                self._m_nacks.add()
                yield from self.ctrl.send(
                    thread,
                    ControlMessage(
                        CtrlType.BLOCK_NACK,
                        sid,
                        (header.seq, Credit.for_block(block)),
                    ),
                )
            else:
                # No repair: withhold delivery (the session starves and
                # dies typed, as on the rendezvous path) but return the
                # region — it holds nothing.
                block.revoke()
                self.pool.put_free_blk(block)
            return
        block.finish(header, payload)
        self._m_delivered.add()
        for hdr, blk in self.reassembly.push(header, block):
            yield self._ready.put((hdr, blk))
        yield from self._maybe_send_marker(thread, sid)

    def _on_session_resume(self, thread, msg: ControlMessage) -> Generator:
        """SESSION_RESUME_REQ: re-attach a session at its restart marker.

        The reply is ``(accepted, resume_seq, initial_credits)``.  The
        source re-sends every block from ``resume_seq`` on; everything
        below it is already in the application sink (possibly written by
        a dead incarnation) and is never re-transferred.
        """
        sid = msg.session_id
        total, marker_interval = msg.data
        if not self.config.session_resume or self.pool is None or self.granter is None:
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.SESSION_RESUME_REP, sid, (False, 0, ())),
            )
            return
        bs = self.pool.block_size
        if sid in self._acked:
            # The dataset already completed; point the source past the
            # last block so it goes straight to DATASET_DONE (re-acked
            # idempotently from the _acked ledger).
            nblocks = (self._acked[sid] + bs - 1) // bs
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.SESSION_RESUME_REP, sid, (True, nblocks, ())),
            )
            return
        marker = self._marker_upto.get(sid, 0)
        stored = self._resume_grants.get(sid)
        if (
            stored is not None
            and sid in self._expected_bytes
            and stored[0] == marker
            and self.reassembly.next_seq(sid) == marker
            and self.reassembly.pending(sid) == 0
            and self._consumed_bytes.get(sid, 0) == min(marker * bs, total)
        ):
            # Retransmitted request (the previous REP was lost or slow)
            # and nothing has landed since: answer identically — the same
            # regions are still WAITING for the same writes.
            yield from self.ctrl.send(
                thread,
                ControlMessage(
                    CtrlType.SESSION_RESUME_REP, sid, (True, marker, stored[1])
                ),
            )
            return
        self._m_resumes.add()
        self.engine.trace("sink", "session_resume", session=sid, marker=marker)
        if sid in self._expected_bytes:
            # The old incarnation is still live here (source-side crash):
            # free its un-consumed arrivals; they will be re-sent.
            self._drop_unconsumed(sid)
        old = self.session_done.get(sid)
        if old is not None and not old.triggered:
            old.fail(EndpointCrashed(sid, "superseded by session resume")).defuse()
        self._expected_bytes[sid] = total
        self._retired.pop(sid, None)  # revived: back out of eviction order
        self._marker_interval[sid] = marker_interval
        # Accounting restarts at the marker: bytes consumed beyond it may
        # be re-delivered (overlap) and must count exactly once.
        self._consumed_bytes[sid] = min(marker * bs, total)
        self._accounting_epoch[sid] = self._accounting_epoch.get(sid, 0) + 1
        self._dataset_done_total.pop(sid, None)
        self._last_activity[sid] = self.engine.now
        self.session_done[sid] = Event(self.engine)
        self._marker_upto[sid] = marker
        self._marker_pending.pop(sid, None)
        self._marker_sent[sid] = marker
        self.reassembly.set_next_seq(sid, marker)
        # A resume supersedes any degraded-mode stream of a dead
        # incarnation; dropping the registration stops its consumer.
        self._fallback_streams.pop(sid, None)
        self._fallback_done.pop(sid, None)
        self._fallback_resume_seq.pop(sid, None)
        self._restore_grants.pop(sid, None)
        # A resumed session always rides rendezvous (the resume protocol
        # is anchored on credits + restart markers).
        self._eager_sessions.discard(sid)
        if not self._consumers_started:
            self._consumers_started = True
            for i in range(self.config.writer_threads):
                self.engine.process(self._consumer_thread(i))
        if not self._gc_running:
            self._gc_running = True
            self.engine.process(self._gc_thread())
        # Accepting the resume flushes the *entire* link ledger on the
        # source (stale grants target regions revoked here), so every
        # WAITING block — whichever session id its credit was stamped
        # with — is now unreachable: no live ledger holds a credit for
        # it.  Revoke them all before granting afresh.  Previously this
        # ran only when no sibling session was registered, which leaked
        # WAITING blocks for good whenever a dead-but-not-yet-reclaimed
        # sibling was still in ``_expected_bytes`` (resume's documented
        # contract already forbids a *healthy* concurrent sibling).
        for blk in self.pool.blocks.values():
            if blk.state is SinkBlockState.WAITING:
                blk.mr.take(blk.mr.buffer.addr)
                blk.revoke()
                self.pool.put_free_blk(blk)
        self.granter.pending_request = False
        initial = tuple(self.granter.initial_grant(self.config.initial_credits))
        self._resume_grants[sid] = (marker, initial)
        yield from self.ctrl.send(
            thread,
            ControlMessage(CtrlType.SESSION_RESUME_REP, sid, (True, marker, initial)),
        )

    # -- degraded mode: TCP fallback ---------------------------------------------------
    def _on_transport_fallback(self, thread, msg: ControlMessage) -> Generator:
        """TRANSPORT_FALLBACK_REQ: carry the session on over TCP.

        ``msg.data`` is ``(total_bytes, stream)``.  The reply is
        ``(accepted, resume_seq)``: the source re-sends every block from
        ``resume_seq`` on over the stream — same restart-marker anchor as
        a SESSION_RESUME, so nothing below the contiguous-written prefix
        crosses the wire twice.  All RDMA credits of the session die here
        (the data QPs are gone); WAITING regions are revoked like on a
        resume.
        """
        sid = msg.session_id
        total, stream = msg.data
        deny = (
            not self.config.tcp_fallback
            or self.pool is None
            or (self.fallback_deny_hook is not None and self.fallback_deny_hook())
        )
        if deny:
            self.engine.trace("sink", "fallback_denied", session=sid)
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.TRANSPORT_FALLBACK_REP, sid, (False, 0)),
            )
            return
        bs = self.pool.block_size
        if sid in self._acked:
            nblocks = (self._acked[sid] + bs - 1) // bs
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.TRANSPORT_FALLBACK_REP, sid, (True, nblocks)),
            )
            return
        if self._fallback_streams.get(sid) is stream:
            # Retransmitted request for the stream we already consume:
            # answer identically, the consumer thread is already running.
            yield from self.ctrl.send(
                thread,
                ControlMessage(
                    CtrlType.TRANSPORT_FALLBACK_REP,
                    sid,
                    (True, self._fallback_resume_seq[sid]),
                ),
            )
            return
        marker = self._marker_upto.get(sid, 0)
        self._m_fallback_sessions.add()
        self.engine.trace("sink", "transport_fallback", session=sid, marker=marker)
        if sid in self._expected_bytes:
            # Un-consumed RDMA arrivals above the marker will be re-sent
            # over the stream; free them now.
            self._drop_unconsumed(sid)
        done = self.session_done.get(sid)
        if done is None or done.triggered:
            # Unlike a resume this is the *same* session incarnation
            # degrading transports — keep a live done-event if one exists
            # (the GC may have failed it if the session was reclaimed).
            self.session_done[sid] = Event(self.engine)
        self._expected_bytes[sid] = total
        self._retired.pop(sid, None)  # revived: back out of eviction order
        self._consumed_bytes[sid] = min(marker * bs, total)
        self._accounting_epoch[sid] = self._accounting_epoch.get(sid, 0) + 1
        self._dataset_done_total.pop(sid, None)
        self._last_activity[sid] = self.engine.now
        self._marker_upto[sid] = marker
        self._marker_pending.pop(sid, None)
        self._marker_sent[sid] = marker
        self.reassembly.set_next_seq(sid, marker)
        self._resume_grants.pop(sid, None)
        self._restore_grants.pop(sid, None)
        # Degraded transport is a byte stream: no eager SEND path.
        self._eager_sessions.discard(sid)
        if not self._consumers_started:
            self._consumers_started = True
            for i in range(self.config.writer_threads):
                self.engine.process(self._consumer_thread(i))
        if not self._gc_running:
            self._gc_running = True
            self.engine.process(self._gc_thread())
        # Same reasoning as the resume path: the degrading source flushed
        # its whole link ledger, so every WAITING region is a stale
        # credit no live ledger can honour — revoke unconditionally (the
        # old sole-pool-user guard leaked blocks while a dead sibling
        # lingered in ``_expected_bytes``).
        for blk in self.pool.blocks.values():
            if blk.state is SinkBlockState.WAITING:
                blk.mr.take(blk.mr.buffer.addr)
                blk.revoke()
                self.pool.put_free_blk(blk)
        if self.granter is not None:
            self.granter.pending_request = False
        self._fallback_streams[sid] = stream
        self._fallback_resume_seq[sid] = marker
        self._fallback_done.pop(sid, None)
        self.engine.process(self._tcp_consumer_thread(sid, stream, marker))
        yield from self.ctrl.send(
            thread,
            ControlMessage(CtrlType.TRANSPORT_FALLBACK_REP, sid, (True, marker)),
        )

    def _tcp_consumer_thread(self, sid: int, stream, start_seq: int) -> Generator:
        """Drain one degraded session's TCP stream into the data sink.

        Blocks arrive strictly in order (TCP), so delivery bypasses the
        reassembly buffer and the credit machinery entirely; checksums
        are still verified end to end.  The thread stands down the moment
        the session's registered stream is no longer *this* one — a
        reclaim, crash, restore, or superseding fallback all pop/replace
        the registration.
        """
        thread = self.host.thread(f"snk-tcp{sid}", "app")
        cursor = start_seq
        while True:
            if self._fallback_streams.get(sid) is not stream:
                return
            frame = yield from stream.recv_block(thread)
            if self._fallback_streams.get(sid) is not stream:
                return
            if frame is None:
                # EOF sentinel: the source's pump stopped (dataset done or
                # a repromotion pending).  Record the restore anchor.
                self._fallback_done[sid] = cursor
                self.engine.trace("sink", "fallback_eof", session=sid, seq=cursor)
                return
            header, payload = frame
            if self.config.checksum_blocks and header.checksum != block_checksum(
                payload
            ):
                self._m_mismatches.add()
                self.engine.trace(
                    "sink", "checksum_mismatch",
                    session=header.session_id, seq=header.seq,
                )
                continue
            yield from self.data_sink.write(thread, header.length, header, payload)
            if self._fallback_streams.get(sid) is not stream:
                return
            self._m_fallback_blocks.add()
            self._m_delivered.add()
            cursor = header.seq + 1
            self._consumed_bytes[sid] = (
                self._consumed_bytes.get(sid, 0) + header.length
            )
            self._last_activity[sid] = self.engine.now
            self._advance_written(sid, header.seq)
            yield from self._maybe_finish(thread, sid)

    def _on_transport_restore(self, thread, msg: ControlMessage) -> Generator:
        """TRANSPORT_RESTORE_REQ: promote a degraded session back to RDMA.

        ``msg.data`` is ``(total_bytes, marker_interval)``.  The reply is
        ``(ready, resume_seq, initial_credits)`` — not ready until the
        TCP consumer has drained the stream to its EOF sentinel, so the
        RDMA restart point is exact and nothing races the stream.
        """
        sid = msg.session_id
        total, marker_interval = msg.data
        if self.pool is None or self.granter is None:
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.TRANSPORT_RESTORE_REP, sid, (False, 0, ())),
            )
            return
        bs = self.pool.block_size
        if sid in self._acked:
            nblocks = (self._acked[sid] + bs - 1) // bs
            yield from self.ctrl.send(
                thread,
                ControlMessage(
                    CtrlType.TRANSPORT_RESTORE_REP, sid, (True, nblocks, ())
                ),
            )
            return
        if sid not in self._expected_bytes:
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.TRANSPORT_RESTORE_REP, sid, (False, 0, ())),
            )
            return
        stored = self._restore_grants.get(sid)
        if (
            stored is not None
            and self.reassembly.next_seq(sid) == stored[0]
            and self.reassembly.pending(sid) == 0
        ):
            # Duplicate request before any restored block landed: same
            # grant again (the regions are still WAITING for it).
            yield from self.ctrl.send(
                thread,
                ControlMessage(
                    CtrlType.TRANSPORT_RESTORE_REP, sid, (True, stored[0], stored[1])
                ),
            )
            return
        done_seq = self._fallback_done.get(sid)
        if done_seq is None:
            # The consumer has not reached the EOF sentinel yet; the
            # source retries after a patience interval.
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.TRANSPORT_RESTORE_REP, sid, (False, 0, ())),
            )
            return
        self.engine.trace("sink", "transport_restore", session=sid, seq=done_seq)
        self._fallback_streams.pop(sid, None)
        self._fallback_done.pop(sid, None)
        self._fallback_resume_seq.pop(sid, None)
        self._marker_interval[sid] = marker_interval
        self._consumed_bytes[sid] = min(done_seq * bs, total)
        self._last_activity[sid] = self.engine.now
        self._marker_upto[sid] = done_seq
        self._marker_pending.pop(sid, None)
        self._marker_sent[sid] = done_seq
        self.reassembly.set_next_seq(sid, done_seq)
        initial = tuple(self.granter.initial_grant(self.config.initial_credits))
        self._restore_grants[sid] = (done_seq, initial)
        yield from self.ctrl.send(
            thread,
            ControlMessage(
                CtrlType.TRANSPORT_RESTORE_REP, sid, (True, done_seq, initial)
            ),
        )

    def _drop_unconsumed(self, session_id: int) -> None:
        """Free a session's parked and READY-but-unconsumed blocks."""
        assert self.pool is not None
        for _hdr, blk in self.reassembly.reclaim_session(session_id):
            blk.consume()
            self.pool.put_free_blk(blk)
        survivors = [
            item for item in self._ready.items if item[0].session_id != session_id
        ]
        for hdr, blk in self._ready.items:
            if hdr.session_id == session_id:
                blk.consume()
                self.pool.put_free_blk(blk)
        self._ready.items.clear()
        self._ready.items.extend(survivors)

    def crash(self) -> None:
        """Kill the sink process and restart it with only persistent state.

        Volatile state dies: live sessions, the reassembly buffer, parked
        and READY blocks, outstanding credits, consumed-byte accounting.
        What a real implementation keeps on stable storage survives: data
        already written to the application sink, the DATASET_DONE_ACK
        ledger, and the contiguous-written restart marker (recoverable
        from the data file itself).  Blocks written *out of order* beyond
        that prefix are forgotten — without a block-granular journal a
        restarted sink cannot tell them from garbage, so a resume
        re-writes them identically.
        """
        self._m_crashes.add()
        self.engine.trace("sink", "crash")
        for sid in list(self._expected_bytes):
            done = self.session_done.get(sid)
            if done is not None and not done.triggered:
                done.fail(EndpointCrashed(sid, "sink process crashed")).defuse()
            # Writer threads survive the "process restart" (they are sim
            # processes); invalidate any write in flight across the crash.
            self._accounting_epoch[sid] = self._accounting_epoch.get(sid, 0) + 1
        self._expected_bytes.clear()
        for sid in list(self._accounting_epoch):
            if sid not in self._retired:
                self._retire(sid)
        self._consumed_bytes.clear()
        self._dataset_done_total.clear()
        self._last_activity.clear()
        self._resume_grants.clear()
        self._restore_grants.clear()
        # The TCP consumers key their liveness on these registrations: a
        # crash orphans any degraded-mode stream.
        self._fallback_streams.clear()
        self._fallback_done.clear()
        self._fallback_resume_seq.clear()
        if self.pool is not None:
            for sid in self.reassembly.sessions():
                for _hdr, blk in self.reassembly.reclaim_session(sid):
                    blk.consume()
                    self.pool.put_free_blk(blk)
            for _hdr, blk in self._ready.items:
                blk.consume()
                self.pool.put_free_blk(blk)
            self._ready.items.clear()
            for blk in self.pool.blocks.values():
                if blk.state is SinkBlockState.WAITING:
                    blk.mr.take(blk.mr.buffer.addr)
                    blk.revoke()
                    self.pool.put_free_blk(blk)
            if self.granter is not None:
                self.granter.pending_request = False
        for sid in list(self._marker_sent):
            # The sent cursor was in memory only; re-derive it from what
            # is actually on disk so post-resume markers stay truthful.
            self._marker_sent[sid] = self._marker_upto.get(sid, 0)
        self._marker_pending.clear()

    def _send_credits(self, thread, session_id: int, credits: List[Credit]) -> Generator:
        yield from self.ctrl.send(
            thread,
            ControlMessage(CtrlType.MR_INFO_REP, session_id, tuple(credits)),
        )

    # -- data consumption -------------------------------------------------------------
    def get_ready_blk(self):
        """Event resolving to the next in-order ``(header, block)`` pair."""
        return self._ready.get()

    def _consumer_thread(self, index: int) -> Generator:
        thread = self.host.thread(f"snk-writer{index}", "app")
        assert self.pool is not None and self.granter is not None
        while True:
            header, block = yield self.get_ready_blk()
            payload = block.payload
            epoch = self._accounting_epoch.get(header.session_id, 0)
            yield from self.data_sink.write(thread, header.length, header, payload)
            block.consume()
            self.pool.put_free_blk(block)
            if self._accounting_epoch.get(header.session_id, 0) != epoch:
                # The accounting was re-anchored mid-write; this block is
                # below the new marker and will arrive again.
                continue
            self._consumed_bytes[header.session_id] = (
                self._consumed_bytes.get(header.session_id, 0) + header.length
            )
            if header.session_id in self._expected_bytes:
                self._last_activity[header.session_id] = self.engine.now
            # Freed eager blocks go back to the pool, not out as credits
            # (nothing would ever write into them) — except when a
            # starved rendezvous sibling has a request outstanding.
            if (
                header.session_id not in self._eager_sessions
                or self.granter.pending_request
            ):
                granted = self.granter.on_block_freed()
                if granted:
                    yield from self._send_credits(thread, header.session_id, granted)
            self._advance_written(header.session_id, header.seq)
            yield from self._maybe_finish(thread, header.session_id)

    def _advance_written(self, session_id: int, seq: int) -> None:
        """Advance the contiguous-written prefix (the restart marker a
        resume re-attaches to — only bytes on stable storage count)."""
        if not (self.config.block_repair or self.config.session_resume):
            return
        if session_id in self._acked:
            # A sibling writer thread finished (and retired) the session
            # while this one was still inside data_sink.write; don't
            # resurrect marker state for an acked dataset.
            return
        upto = self._marker_upto.get(session_id, 0)
        if seq < upto:
            return
        pending = self._marker_pending.setdefault(session_id, set())
        pending.add(seq)
        while upto in pending:
            pending.remove(upto)
            upto += 1
        self._marker_upto[session_id] = upto
        if not pending:
            self._marker_pending.pop(session_id, None)

    def _maybe_send_marker(self, thread, session_id: int) -> Generator:
        """Emit a BLOCK_MARKER every ``marker_interval`` blocks of
        *delivered* progress (``ReassemblyBuffer.next_seq``).

        Markers are cumulative acks: everything below one passed its
        checksum, so the source releases the repair copies it holds for
        possible BLOCK_NACK re-send.  Cadence follows delivery, not the
        writer threads — a repair copy pinned until fsync would starve
        the source pool for nothing.
        """
        if not (self.config.block_repair or self.config.session_resume):
            return
        if session_id not in self._expected_bytes:
            return
        delivered = self.reassembly.next_seq(session_id)
        interval = self._marker_interval.get(
            session_id, self.config.marker_interval_blocks
        )
        if delivered - self._marker_sent.get(session_id, 0) < interval:
            return
        self._marker_sent[session_id] = delivered
        self._m_markers.add()
        yield from self.ctrl.send(
            thread, ControlMessage(CtrlType.BLOCK_MARKER, session_id, delivered)
        )

    def _retire(self, session_id: int) -> None:
        """Register a no-longer-active session in the bounded history.

        Evicts the oldest retired sessions past the configured cap —
        dropping their idempotent-ack entries, restart-marker anchors
        and accounting epochs.  Sessions that came back to life (in
        ``_expected_bytes`` again) are skipped, never evicted.
        """
        # Re-insert at the back: retirement refreshes recency.
        self._retired.pop(session_id, None)
        self._retired[session_id] = None
        while len(self._retired) > self.config.sink_session_history:
            oldest = next(iter(self._retired))
            del self._retired[oldest]
            if oldest in self._expected_bytes:  # pragma: no cover - revived
                continue
            self._acked.pop(oldest, None)
            self._consumed_bytes.pop(oldest, None)
            self.session_done.pop(oldest, None)
            self._accounting_epoch.pop(oldest, None)
            self._marker_upto.pop(oldest, None)
            self._marker_sent.pop(oldest, None)
            self._marker_pending.pop(oldest, None)

    def _maybe_finish(self, thread, session_id: int) -> Generator:
        total = self._dataset_done_total.get(session_id)
        if total is None:
            return
        if self._consumed_bytes.get(session_id, 0) < total:
            return
        done = self.session_done.get(session_id)
        if done is not None and not done.triggered:
            # Mark before yielding: two consumer threads can both reach
            # this point in the same instant otherwise.
            done.succeed(total)
            # Retire the GC-relevant bookkeeping so the dicts stay bounded
            # on long-lived links; _consumed_bytes and session_done remain
            # for post-run observability.
            self._acked[session_id] = total
            self._expected_bytes.pop(session_id, None)
            self._dataset_done_total.pop(session_id, None)
            self._last_activity.pop(session_id, None)
            self._marker_upto.pop(session_id, None)
            self._marker_pending.pop(session_id, None)
            self._marker_sent.pop(session_id, None)
            self._marker_interval.pop(session_id, None)
            self._resume_grants.pop(session_id, None)
            self._restore_grants.pop(session_id, None)
            self._fallback_streams.pop(session_id, None)
            self._fallback_done.pop(session_id, None)
            self._fallback_resume_seq.pop(session_id, None)
            self._accounting_epoch.pop(session_id, None)
            self._eager_sessions.discard(session_id)
            self.reassembly.reclaim_session(session_id)  # drops the seq cursor
            self._retire(session_id)
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.DATASET_DONE_ACK, session_id, total),
            )

    # -- stale-session garbage collection --------------------------------------------
    def _gc_thread(self) -> Generator:
        """Sweep idle sessions and watch the peer.  Runs only while
        sessions are live, so a drained engine is not kept awake by a
        housekeeping timer; the next SESSION_REQ restarts it.

        With heartbeats on, a sweep that finds the whole *link* silent
        past the adaptive PING cadence sends its own PING; after
        ``heartbeat_misses`` unanswered intervals every session is
        reclaimed with a typed :class:`PeerDead` — bounded-time detection
        of a dead source even when ``session_idle_timeout`` is long.  The
        per-session idle threshold itself is ``health.idle_timeout()``:
        never below the configured floor, scaled up by the RTT estimate
        on long paths."""
        thread = self.host.thread("snk-gc", "app")
        while self._expected_bytes:
            yield self.engine.timeout(self.config.gc_interval)
            now = self.engine.now
            if self.config.heartbeats and self._expected_bytes:
                interval = self.health.heartbeat_interval()
                silent = now - self.health.last_heard
                if silent >= interval and now - self._last_ping_at >= interval:
                    self.health.misses += 1
                    if self.health.misses > self.config.heartbeat_misses:
                        self._m_peer_dead.add()
                        self.engine.trace(
                            "sink", "peer_dead", misses=self.health.misses
                        )
                        for sid in list(self._expected_bytes):
                            self._reclaim_session(
                                sid,
                                error=PeerDead(
                                    sid,
                                    f"source silent for {self.health.misses} "
                                    "heartbeat intervals",
                                ),
                            )
                        continue
                    self._last_ping_at = now
                    self._m_pings.add()
                    yield from self.ctrl.send(
                        thread,
                        ControlMessage(CtrlType.PING, 0, self.health.next_ping()),
                    )
            for sid in list(self._expected_bytes):
                last = self._last_activity.get(sid, now)
                if now - last >= self.health.idle_timeout():
                    self._reclaim_session(sid)
        self._gc_running = False

    def _reclaim_session(self, session_id: int, error: Exception = None) -> None:
        """Free everything a dead session still pins at the sink."""
        assert self.pool is not None
        self._m_reclaimed.add()
        self.engine.trace("sink", "gc_reclaim", session=session_id)
        # Parked out-of-order arrivals and undelivered in-order blocks
        # both hold pool blocks with payload.
        self._drop_unconsumed(session_id)
        self._expected_bytes.pop(session_id, None)
        self._dataset_done_total.pop(session_id, None)
        self._last_activity.pop(session_id, None)
        # A writer mid-``write`` must not resurrect consumed-bytes
        # accounting for the reclaimed incarnation.
        self._accounting_epoch[session_id] = (
            self._accounting_epoch.get(session_id, 0) + 1
        )
        # Keep _marker_upto/_marker_sent: they anchor a later
        # SESSION_RESUME (or TRANSPORT_FALLBACK).  The out-of-order
        # window, stored grants, and any degraded-mode stream die with
        # the incarnation (its credits are revoked below).
        self._marker_pending.pop(session_id, None)
        self._resume_grants.pop(session_id, None)
        self._restore_grants.pop(session_id, None)
        self._fallback_streams.pop(session_id, None)
        self._fallback_done.pop(session_id, None)
        self._fallback_resume_seq.pop(session_id, None)
        self._eager_sessions.discard(session_id)
        self._retire(session_id)
        done = self.session_done.get(session_id)
        if done is not None and not done.triggered:
            # Defused: reclamation is the handling — whoever polls the
            # event later still sees the typed error.
            if error is None:
                error = StaleSessionReclaimed(
                    session_id,
                    f"idle past {self.config.session_idle_timeout}s, reclaimed",
                )
            done.fail(error).defuse()
        if not self._expected_bytes:
            # No live session shares the pool: advertised credits held by
            # dead sources can never be honoured — revoke them so the next
            # session starts from a full pool.
            for blk in self.pool.blocks.values():
                if blk.state is SinkBlockState.WAITING:
                    blk.mr.take(blk.mr.buffer.addr)  # discard unnotified data
                    blk.revoke()
                    self.pool.put_free_blk(blk)
            if self.granter is not None:
                self.granter.pending_request = False
