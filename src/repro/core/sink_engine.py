"""The data-sink protocol engine (receiver side of §IV).

The sink is *not* on the data path: payload lands in its registered
blocks via one-sided RDMA WRITE with zero sink CPU.  Its threads only:

- handle control messages — negotiate parameters, turn BLOCK_DONE
  notifications into READY blocks (via the reassembly buffer), and grant
  credits per the proactive-feedback policy;
- consume READY blocks in order (``get_ready_blk``), hand payload to the
  application's data sink (file system, /dev/null), and recycle blocks
  (``put_free_blk``), triggering fresh grants.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from repro.core.blocks import SinkBlock
from repro.core.channels import ControlChannel
from repro.core.config import ProtocolConfig
from repro.core.credits import Credit, CreditGranter
from repro.core.messages import BlockHeader, ControlMessage, CtrlType
from repro.core.pool import BlockPool
from repro.core.reassembly import ReassemblyBuffer
from repro.sim.events import Event
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.host import Host
    from repro.sim.engine import Engine

__all__ = ["SinkEngine"]


class SinkEngine:
    """Drives the receiving side of transfer sessions on one control
    channel."""

    def __init__(
        self,
        host: "Host",
        ctrl: ControlChannel,
        config: ProtocolConfig,
        data_sink: Any,
        pool_factory,
    ) -> None:
        self.host = host
        self.engine: "Engine" = host.engine
        self.ctrl = ctrl
        self.config = config
        self.data_sink = data_sink
        #: Callable ``(block_size) -> BlockPool[SinkBlock]`` — the pool is
        #: built only once the block size is negotiated.
        self.pool_factory = pool_factory

        self.pool: Optional[BlockPool[SinkBlock]] = None
        self.granter: Optional[CreditGranter] = None
        self.reassembly = ReassemblyBuffer()
        self._ready: Store = Store(self.engine)
        self._expected_bytes: Dict[int, int] = {}
        self._consumed_bytes: Dict[int, int] = {}
        self._finished_blocks = 0
        self._dataset_done_total: Dict[int, int] = {}
        #: Succeeds per session once everything is consumed and acked.
        self.session_done: Dict[int, Event] = {}
        self._consumers_started = False

    # -- public -----------------------------------------------------------------
    def start(self) -> None:
        """Launch the control-handling thread."""
        self.engine.process(self._control_thread())

    @property
    def blocks_delivered(self) -> int:
        return self._finished_blocks

    def consumed_bytes(self, session_id: int) -> int:
        return self._consumed_bytes.get(session_id, 0)

    # -- control plane -------------------------------------------------------------
    def _control_thread(self) -> Generator:
        thread = self.host.thread("snk-ctrl", "app")
        while True:
            msgs = yield from self.ctrl.receive(thread)
            for msg in msgs:
                yield from self._dispatch(thread, msg)

    def _dispatch(self, thread, msg: ControlMessage) -> Generator:
        if msg.type is CtrlType.BLOCK_SIZE_REQ:
            accept = msg.data >= 4096
            if self.pool is not None and msg.data != self.pool.block_size:
                # The registered pool is sized for one block size; a later
                # session must negotiate the same one (or a new link).
                accept = False
            if accept and self.pool is None:
                self.pool = self.pool_factory(msg.data)
                self.granter = CreditGranter(
                    self.pool,
                    grant_ratio=self.config.credit_grant_ratio,
                    proactive=self.config.proactive_credits,
                )
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.BLOCK_SIZE_REP, msg.session_id, accept),
            )
        elif msg.type is CtrlType.CHANNELS_REQ:
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.CHANNELS_REP, msg.session_id, True),
            )
        elif msg.type is CtrlType.SESSION_REQ:
            assert self.granter is not None, "block size not negotiated"
            self._expected_bytes[msg.session_id] = msg.data
            self._consumed_bytes.setdefault(msg.session_id, 0)
            self.session_done.setdefault(msg.session_id, Event(self.engine))
            if not self._consumers_started:
                self._consumers_started = True
                for i in range(self.config.writer_threads):
                    self.engine.process(self._consumer_thread(i))
            initial = tuple(self.granter.initial_grant(self.config.initial_credits))
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.SESSION_REP, msg.session_id, (True, initial)),
            )
        elif msg.type is CtrlType.BLOCK_DONE:
            yield from self._on_block_done(thread, msg)
        elif msg.type is CtrlType.MR_INFO_REQ:
            assert self.granter is not None
            granted = self.granter.on_request()
            if granted:
                yield from self._send_credits(thread, msg.session_id, granted)
        elif msg.type is CtrlType.DATASET_DONE:
            self._dataset_done_total[msg.session_id] = msg.data
            yield from self._maybe_finish(thread, msg.session_id)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"sink got unexpected control message {msg.type}")

    def _on_block_done(self, thread, msg: ControlMessage) -> Generator:
        assert self.pool is not None and self.granter is not None
        block_id, header = msg.data
        block = self.pool.by_id(block_id)
        # Extract what the one-sided WRITE deposited in the region.
        wire = block.mr.take(block.mr.buffer.addr)
        payload = wire.payload if wire is not None else None
        block.finish(header, payload)
        self._finished_blocks += 1
        for hdr, blk in self.reassembly.push(header, block):
            yield self._ready.put((hdr, blk))
        granted = self.granter.on_block_done()
        if granted:
            yield from self._send_credits(thread, msg.session_id, granted)

    def _send_credits(self, thread, session_id: int, credits: List[Credit]) -> Generator:
        yield from self.ctrl.send(
            thread,
            ControlMessage(CtrlType.MR_INFO_REP, session_id, tuple(credits)),
        )

    # -- data consumption -------------------------------------------------------------
    def get_ready_blk(self):
        """Event resolving to the next in-order ``(header, block)`` pair."""
        return self._ready.get()

    def _consumer_thread(self, index: int) -> Generator:
        thread = self.host.thread(f"snk-writer{index}", "app")
        assert self.pool is not None and self.granter is not None
        while True:
            header, block = yield self.get_ready_blk()
            payload = block.payload
            yield from self.data_sink.write(thread, header.length, header, payload)
            block.consume()
            self.pool.put_free_blk(block)
            self._consumed_bytes[header.session_id] = (
                self._consumed_bytes.get(header.session_id, 0) + header.length
            )
            granted = self.granter.on_block_freed()
            if granted:
                yield from self._send_credits(thread, header.session_id, granted)
            yield from self._maybe_finish(thread, header.session_id)

    def _maybe_finish(self, thread, session_id: int) -> Generator:
        total = self._dataset_done_total.get(session_id)
        if total is None:
            return
        if self._consumed_bytes.get(session_id, 0) < total:
            return
        done = self.session_done.get(session_id)
        if done is not None and not done.triggered:
            # Mark before yielding: two consumer threads can both reach
            # this point in the same instant otherwise.
            done.succeed(total)
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.DATASET_DONE_ACK, session_id, total),
            )
