"""The data-sink protocol engine (receiver side of §IV).

The sink is *not* on the data path: payload lands in its registered
blocks via one-sided RDMA WRITE with zero sink CPU.  Its threads only:

- handle control messages — negotiate parameters, turn BLOCK_DONE
  notifications into READY blocks (via the reassembly buffer), and grant
  credits per the proactive-feedback policy;
- consume READY blocks in order (``get_ready_blk``), hand payload to the
  application's data sink (file system, /dev/null), and recycle blocks
  (``put_free_blk``), triggering fresh grants.

Recovery: duplicate negotiation requests are answered idempotently (a
retransmitting source must converge on one session, one grant), completed
sessions have their bookkeeping retired so the dicts stay bounded, and a
lazily-running garbage collector reclaims sessions idle past
``session_idle_timeout`` — freeing parked reassembly blocks and, once no
live session shares the pool, revoking credits a dead source can never
honour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from repro.core.blocks import SinkBlock, SinkBlockState
from repro.core.channels import ControlChannel
from repro.core.config import ProtocolConfig
from repro.core.credits import Credit, CreditGranter
from repro.core.errors import StaleSessionReclaimed
from repro.core.messages import BlockHeader, ControlMessage, CtrlType
from repro.core.pool import BlockPool
from repro.core.reassembly import ReassemblyBuffer
from repro.sim.events import Event
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.host import Host
    from repro.sim.engine import Engine

__all__ = ["SinkEngine"]


class SinkEngine:
    """Drives the receiving side of transfer sessions on one control
    channel."""

    def __init__(
        self,
        host: "Host",
        ctrl: ControlChannel,
        config: ProtocolConfig,
        data_sink: Any,
        pool_factory,
    ) -> None:
        self.host = host
        self.engine: "Engine" = host.engine
        self.ctrl = ctrl
        self.config = config
        self.data_sink = data_sink
        #: Callable ``(block_size) -> BlockPool[SinkBlock]`` — the pool is
        #: built only once the block size is negotiated.
        self.pool_factory = pool_factory

        self.pool: Optional[BlockPool[SinkBlock]] = None
        self.granter: Optional[CreditGranter] = None
        self.reassembly = ReassemblyBuffer()
        self._ready: Store = Store(self.engine)
        self._expected_bytes: Dict[int, int] = {}
        self._consumed_bytes: Dict[int, int] = {}
        self._finished_blocks = 0
        self._dataset_done_total: Dict[int, int] = {}
        #: Succeeds per session once everything is consumed and acked;
        #: fails (defused) with :class:`StaleSessionReclaimed` when the GC
        #: reaps the session.
        self.session_done: Dict[int, Event] = {}
        #: session id -> total bytes, for sessions already acked and
        #: retired — lets a retransmitted DATASET_DONE be re-acked
        #: idempotently after cleanup.
        self._acked: Dict[int, int] = {}
        #: session id -> last control/consumption activity timestamp.
        self._last_activity: Dict[int, float] = {}
        self.sessions_reclaimed = 0
        self.stray_messages = 0
        self._consumers_started = False
        self._gc_running = False

    # -- public -----------------------------------------------------------------
    def start(self) -> None:
        """Launch the control-handling thread."""
        self.engine.process(self._control_thread())

    @property
    def blocks_delivered(self) -> int:
        return self._finished_blocks

    def consumed_bytes(self, session_id: int) -> int:
        return self._consumed_bytes.get(session_id, 0)

    def active_sessions(self) -> int:
        return len(self._expected_bytes)

    # -- control plane -------------------------------------------------------------
    def _control_thread(self) -> Generator:
        thread = self.host.thread("snk-ctrl", "app")
        while True:
            msgs = yield from self.ctrl.receive(thread)
            for msg in msgs:
                if msg.session_id in self._expected_bytes:
                    self._last_activity[msg.session_id] = self.engine.now
                yield from self._dispatch(thread, msg)

    def _dispatch(self, thread, msg: ControlMessage) -> Generator:
        if msg.type is CtrlType.BLOCK_SIZE_REQ:
            accept = msg.data >= 4096
            if self.pool is not None and msg.data != self.pool.block_size:
                # The registered pool is sized for one block size; a later
                # session must negotiate the same one (or a new link).
                accept = False
            if accept and self.pool is None:
                self.pool = self.pool_factory(msg.data)
                self.granter = CreditGranter(
                    self.pool,
                    grant_ratio=self.config.credit_grant_ratio,
                    proactive=self.config.proactive_credits,
                )
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.BLOCK_SIZE_REP, msg.session_id, accept),
            )
        elif msg.type is CtrlType.CHANNELS_REQ:
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.CHANNELS_REP, msg.session_id, True),
            )
        elif msg.type is CtrlType.SESSION_REQ:
            assert self.granter is not None, "block size not negotiated"
            if msg.session_id in self._expected_bytes:
                # Duplicate from a retransmitting source: the session (and
                # its initial grant) already exist — accept again but grant
                # nothing, or the pool would leak one credit per retry.
                yield from self.ctrl.send(
                    thread,
                    ControlMessage(CtrlType.SESSION_REP, msg.session_id, (True, ())),
                )
                return
            # A finished session's id may be legitimately reused.
            self._acked.pop(msg.session_id, None)
            self._expected_bytes[msg.session_id] = msg.data
            self._consumed_bytes[msg.session_id] = 0
            self._last_activity[msg.session_id] = self.engine.now
            self.session_done[msg.session_id] = Event(self.engine)
            if not self._consumers_started:
                self._consumers_started = True
                for i in range(self.config.writer_threads):
                    self.engine.process(self._consumer_thread(i))
            if not self._gc_running:
                self._gc_running = True
                self.engine.process(self._gc_thread())
            initial = tuple(self.granter.initial_grant(self.config.initial_credits))
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.SESSION_REP, msg.session_id, (True, initial)),
            )
        elif msg.type is CtrlType.BLOCK_DONE:
            if msg.session_id not in self._expected_bytes:
                # In flight when its session was reclaimed (or a replay).
                # The block's region may since have been refunded to a live
                # session or revoked — not ours to touch.
                self.stray_messages += 1
                return
            yield from self._on_block_done(thread, msg)
        elif msg.type is CtrlType.MR_INFO_REQ:
            # Credits are link-level: answer as long as *any* session is
            # live, whichever session id the starved sender stamped on it.
            if self.granter is not None and self._expected_bytes:
                granted = self.granter.on_request()
                if granted:
                    yield from self._send_credits(thread, msg.session_id, granted)
            else:
                self.stray_messages += 1
        elif msg.type is CtrlType.DATASET_DONE:
            if msg.session_id in self._acked:
                # The original ACK was sent (and possibly lost) after the
                # session was retired: re-ack idempotently.
                yield from self.ctrl.send(
                    thread,
                    ControlMessage(
                        CtrlType.DATASET_DONE_ACK,
                        msg.session_id,
                        self._acked[msg.session_id],
                    ),
                )
            elif msg.session_id in self._expected_bytes:
                self._dataset_done_total[msg.session_id] = msg.data
                yield from self._maybe_finish(thread, msg.session_id)
            else:
                self.stray_messages += 1
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"sink got unexpected control message {msg.type}")

    def _on_block_done(self, thread, msg: ControlMessage) -> Generator:
        assert self.pool is not None and self.granter is not None
        block_id, header = msg.data
        block = self.pool.by_id(block_id)
        # Extract what the one-sided WRITE deposited in the region.
        wire = block.mr.take(block.mr.buffer.addr)
        payload = wire.payload if wire is not None else None
        block.finish(header, payload)
        self._finished_blocks += 1
        for hdr, blk in self.reassembly.push(header, block):
            yield self._ready.put((hdr, blk))
        granted = self.granter.on_block_done()
        if granted:
            yield from self._send_credits(thread, msg.session_id, granted)

    def _send_credits(self, thread, session_id: int, credits: List[Credit]) -> Generator:
        yield from self.ctrl.send(
            thread,
            ControlMessage(CtrlType.MR_INFO_REP, session_id, tuple(credits)),
        )

    # -- data consumption -------------------------------------------------------------
    def get_ready_blk(self):
        """Event resolving to the next in-order ``(header, block)`` pair."""
        return self._ready.get()

    def _consumer_thread(self, index: int) -> Generator:
        thread = self.host.thread(f"snk-writer{index}", "app")
        assert self.pool is not None and self.granter is not None
        while True:
            header, block = yield self.get_ready_blk()
            payload = block.payload
            yield from self.data_sink.write(thread, header.length, header, payload)
            block.consume()
            self.pool.put_free_blk(block)
            self._consumed_bytes[header.session_id] = (
                self._consumed_bytes.get(header.session_id, 0) + header.length
            )
            if header.session_id in self._expected_bytes:
                self._last_activity[header.session_id] = self.engine.now
            granted = self.granter.on_block_freed()
            if granted:
                yield from self._send_credits(thread, header.session_id, granted)
            yield from self._maybe_finish(thread, header.session_id)

    def _maybe_finish(self, thread, session_id: int) -> Generator:
        total = self._dataset_done_total.get(session_id)
        if total is None:
            return
        if self._consumed_bytes.get(session_id, 0) < total:
            return
        done = self.session_done.get(session_id)
        if done is not None and not done.triggered:
            # Mark before yielding: two consumer threads can both reach
            # this point in the same instant otherwise.
            done.succeed(total)
            # Retire the GC-relevant bookkeeping so the dicts stay bounded
            # on long-lived links; _consumed_bytes and session_done remain
            # for post-run observability.
            self._acked[session_id] = total
            self._expected_bytes.pop(session_id, None)
            self._dataset_done_total.pop(session_id, None)
            self._last_activity.pop(session_id, None)
            self.reassembly.reclaim_session(session_id)  # drops the seq cursor
            yield from self.ctrl.send(
                thread,
                ControlMessage(CtrlType.DATASET_DONE_ACK, session_id, total),
            )

    # -- stale-session garbage collection --------------------------------------------
    def _gc_thread(self) -> Generator:
        """Sweep idle sessions.  Runs only while sessions are live, so a
        drained engine is not kept awake by a housekeeping timer; the next
        SESSION_REQ restarts it."""
        while self._expected_bytes:
            yield self.engine.timeout(self.config.gc_interval)
            now = self.engine.now
            for sid in list(self._expected_bytes):
                last = self._last_activity.get(sid, now)
                if now - last >= self.config.session_idle_timeout:
                    self._reclaim_session(sid)
        self._gc_running = False

    def _reclaim_session(self, session_id: int) -> None:
        """Free everything a dead session still pins at the sink."""
        assert self.pool is not None
        self.sessions_reclaimed += 1
        self.engine.trace("sink", "gc_reclaim", session=session_id)
        # Parked out-of-order arrivals hold READY blocks with payload.
        for _hdr, blk in self.reassembly.reclaim_session(session_id):
            blk.consume()
            self.pool.put_free_blk(blk)
        # In-order deliveries the consumers have not picked up yet.
        survivors = [
            item for item in self._ready.items if item[0].session_id != session_id
        ]
        for hdr, blk in self._ready.items:
            if hdr.session_id == session_id:
                blk.consume()
                self.pool.put_free_blk(blk)
        self._ready.items.clear()
        self._ready.items.extend(survivors)
        self._expected_bytes.pop(session_id, None)
        self._dataset_done_total.pop(session_id, None)
        self._last_activity.pop(session_id, None)
        done = self.session_done.get(session_id)
        if done is not None and not done.triggered:
            # Defused: reclamation is the handling — whoever polls the
            # event later still sees the typed error.
            done.fail(
                StaleSessionReclaimed(
                    session_id,
                    f"idle past {self.config.session_idle_timeout}s, reclaimed",
                )
            ).defuse()
        if not self._expected_bytes:
            # No live session shares the pool: advertised credits held by
            # dead sources can never be honoured — revoke them so the next
            # session starts from a full pool.
            for blk in self.pool.blocks.values():
                if blk.state is SinkBlockState.WAITING:
                    blk.mr.take(blk.mr.buffer.addr)  # discard unnotified data
                    blk.revoke()
                    self.pool.put_free_blk(blk)
            if self.granter is not None:
                self.granter.pending_request = False
