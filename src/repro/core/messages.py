"""Wire formats: control messages and the user-payload block header.

Figure 7 of the paper defines two formats.  Control messages ride the
dedicated control QP via SEND/RECV; the 64-byte size below covers the
type, session, and type-associated data fields.  Every payload block is
prefixed by a fixed header — session id (32 bits), sequence number
(32 bits), offset (64 bits), payload length (32 bits), reserved — that
the sink uses to reassemble out-of-order arrivals.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from typing import Any, Optional, Tuple

__all__ = [
    "CtrlType",
    "ControlMessage",
    "BlockHeader",
    "CTRL_MSG_BYTES",
    "HEADER_BYTES",
    "block_checksum",
]

#: Simulated wire size of one control message (Figure 7a).
CTRL_MSG_BYTES = 64
#: Payload block header: 32+32+64+32 bits + reserved padding (Figure 7b).
HEADER_BYTES = 24


class CtrlType(enum.Enum):
    """Control-message types of the protocol's three phases (§IV-C)."""

    # Phase 1: initialisation and parameter negotiation.
    BLOCK_SIZE_REQ = "block_size_req"
    BLOCK_SIZE_REP = "block_size_rep"
    CHANNELS_REQ = "channels_req"
    CHANNELS_REP = "channels_rep"
    SESSION_REQ = "session_req"
    SESSION_REP = "session_rep"
    # Phase 2: data transfer.
    MR_INFO_REQ = "mr_info_req"  # source is idle, begging for credits
    MR_INFO_REP = "mr_info_rep"  # sink grants one or more memory regions
    BLOCK_DONE = "block_done"  # block transfer completion notification
    # Phase 2b: integrity and repair (receiver-side validation of the
    # one-sided WRITEs; cf. GridFTP restart markers).
    BLOCK_NACK = "block_nack"  # checksum mismatch: re-send into this credit
    BLOCK_MARKER = "block_marker"  # restart marker: contiguous consumed prefix
    # Phase 3: teardown.
    DATASET_DONE = "dataset_done"
    DATASET_DONE_ACK = "dataset_done_ack"
    # Session resume: re-attach a dead session to the sink's restart marker
    # and transfer only the missing suffix.
    SESSION_RESUME_REQ = "session_resume_req"
    SESSION_RESUME_REP = "session_resume_rep"
    # Liveness: link-level (session_id 0) heartbeat probes on an adaptive
    # cadence, so an idle peer's death is detected in bounded time.
    PING = "ping"
    PONG = "pong"
    # Graceful degradation: negotiate a TCP fallback stream through the
    # same fabric when every data channel is dead, and the reverse
    # promotion back to RDMA once a channel is re-established.
    TRANSPORT_FALLBACK_REQ = "transport_fallback_req"
    TRANSPORT_FALLBACK_REP = "transport_fallback_rep"
    TRANSPORT_RESTORE_REQ = "transport_restore_req"
    TRANSPORT_RESTORE_REP = "transport_restore_rep"


@dataclass(frozen=True)
class ControlMessage:
    """A control-plane message (SEND/RECV on the control QP)."""

    type: CtrlType
    session_id: int
    #: "Type Associated Data": negotiated value, credit list, block id...
    data: Any = None

    @property
    def wire_bytes(self) -> int:
        return CTRL_MSG_BYTES


def block_checksum(payload: Any) -> int:
    """Deterministic 32-bit checksum of a simulated block payload.

    Payloads are small Python objects standing in for the real block
    bytes, so the CRC runs over their canonical ``repr`` — stable across
    runs and processes for the tuples/None the sources produce.
    """
    return zlib.crc32(repr(payload).encode()) & 0xFFFFFFFF


@dataclass(frozen=True)
class BlockHeader:
    """Per-block header prefixed to every user payload block.

    The checksum occupies the header's formerly-reserved word (the wire
    size is unchanged): the source stamps it at load time, the sink
    verifies it on BLOCK_DONE before delivering the block.
    """

    session_id: int
    seq: int
    offset: int
    length: int
    checksum: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.session_id < 2**32:
            raise ValueError("session_id must fit in 32 bits")
        if not 0 <= self.seq < 2**32:
            raise ValueError("seq must fit in 32 bits")
        if not 0 <= self.offset < 2**64:
            raise ValueError("offset must fit in 64 bits")
        if not 0 <= self.length < 2**32:
            raise ValueError("length must fit in 32 bits")
        if not 0 <= self.checksum < 2**32:
            raise ValueError("checksum must fit in 32 bits")

    @property
    def wire_bytes(self) -> int:
        """Bytes this block occupies on the wire (header + payload)."""
        return HEADER_BYTES + self.length

    def key(self) -> Tuple[int, int]:
        return (self.session_id, self.seq)


@dataclass(frozen=True)
class DataBlockWire:
    """What actually lands in a sink memory region: header + payload."""

    header: BlockHeader
    payload: Any = None
    #: Sink block id the source targeted (from the credit it consumed).
    block_id: Optional[int] = None
