"""Adaptive failure detection: RTT estimation, heartbeats, breakers.

The paper's middleware must behave on radically different paths — a
13 µs-RTT InfiniBand LAN and the 49 ms ANI WAN (Table I) — yet a fixed
``ctrl_timeout`` is wrong on both: orders of magnitude too patient on
the LAN, potentially too eager on a congested WAN.  This module gives
both engines the three classic self-tuning mechanisms:

- :class:`RttEstimator` — Jacobson/Karels SRTT/RTTVAR smoothing with
  Karn's rule (callers only feed unambiguous, first-attempt samples)
  and floor/ceiling clamps, exactly TCP's RTO recipe (RFC 6298);
- :class:`HealthMonitor` — per-endpoint liveness bookkeeping: last time
  the peer was heard, adaptive heartbeat cadence, consecutive-miss
  accounting behind the typed ``PeerDead`` abort, and the timeout
  derivations every watchdog uses instead of raw config constants;
- :class:`ChannelBreaker` — a per-data-QP circuit breaker
  (CLOSED → OPEN on consecutive losses → HALF_OPEN single probe) so a
  flapping channel is quarantined from the send rotation instead of
  eating a retry budget per round trip.

Timeout policy: synchronous request/reply exchanges use the pure RTO
(the sink answers immediately, so µs convergence on the LAN is safe);
*patience* paths — credit waits, the DATASET_DONE ack, the marker
watchdog, the sink's idle GC — use ``max(config base, k·rto)`` so they
can only adapt *upwards* on a long path, never below the configured
behaviour that slow disks and queued grants legitimately need.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.core.config import ProtocolConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["RttEstimator", "HealthMonitor", "ChannelBreaker", "BreakerState"]


class RttEstimator:
    """SRTT/RTTVAR smoothing with clamps (RFC 6298 constants).

    ``observe`` must only be fed unambiguous samples — Karn's rule:
    never time a reply that may answer a retransmitted request.  Before
    the first sample :attr:`rto` returns the configured base timeout, so
    an estimator-driven path degrades to exactly the static behaviour.
    """

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4.0

    def __init__(self, initial: float, floor: float, ceiling: float) -> None:
        if not 0 < floor <= initial <= ceiling:
            raise ValueError("need 0 < floor <= initial <= ceiling")
        self.initial = initial
        self.floor = floor
        self.ceiling = ceiling
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.samples = 0

    def observe(self, sample: float) -> None:
        """Fold one round-trip sample into the smoothed estimate."""
        if sample < 0:
            return
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = (
                (1.0 - self.BETA) * self.rttvar + self.BETA * abs(self.srtt - sample)
            )
            self.srtt = (1.0 - self.ALPHA) * self.srtt + self.ALPHA * sample
        self.samples += 1

    @property
    def rto(self) -> float:
        """Current retransmission timeout, clamped to [floor, ceiling]."""
        if self.srtt is None:
            return min(max(self.initial, self.floor), self.ceiling)
        assert self.rttvar is not None
        return min(max(self.srtt + self.K * self.rttvar, self.floor), self.ceiling)


class HealthMonitor:
    """One endpoint's view of its peer: RTT estimate plus liveness.

    Owned by :class:`~repro.core.source_link.SourceLink` and
    :class:`~repro.core.sink_engine.SinkEngine`; every inbound control
    message calls :meth:`heard`, every unambiguous request/reply or
    PING/PONG round trip feeds :meth:`rtt`.
    """

    def __init__(self, engine: "Engine", config: ProtocolConfig) -> None:
        self.engine = engine
        self.config = config
        self.rtt = RttEstimator(
            initial=config.ctrl_timeout,
            floor=config.ctrl_timeout_min,
            ceiling=config.ctrl_timeout_max,
        )
        self.last_heard: float = engine.now
        #: Consecutive heartbeat intervals that elapsed with nothing
        #: inbound (a PING was sent for each).  Reset by :meth:`heard`.
        self.misses = 0
        #: Nonce and send time of the single outstanding PING; replies
        #: to a stale nonce are ignored (Karn's rule for heartbeats).
        self._ping_nonce = 0
        self._ping_sent_at: Optional[float] = None
        self._ping_pending: Optional[int] = None

    # -- liveness ---------------------------------------------------------------
    def heard(self) -> None:
        """Any inbound control traffic proves the peer alive."""
        self.last_heard = self.engine.now
        self.misses = 0

    @property
    def peer_alive(self) -> bool:
        return self.misses <= self.config.heartbeat_misses

    def next_ping(self) -> int:
        """Mint the nonce for a new PING and start its RTT clock."""
        self._ping_nonce += 1
        self._ping_pending = self._ping_nonce
        self._ping_sent_at = self.engine.now
        return self._ping_nonce

    def on_pong(self, nonce: int) -> None:
        """Fold a PONG for the outstanding PING into the RTT estimate."""
        if nonce == self._ping_pending and self._ping_sent_at is not None:
            self.rtt.observe(self.engine.now - self._ping_sent_at)
        self._ping_pending = None
        self._ping_sent_at = None

    # -- derived timeouts -------------------------------------------------------
    def _capped(self, base: float, attempt: int) -> float:
        return min(
            base * self.config.ctrl_backoff ** attempt, self.config.ctrl_timeout_max
        )

    def request_timeout(self, attempt: int = 0) -> float:
        """Timeout for attempt N of a synchronous request/reply exchange.

        Attempt 0 is the pure adaptive RTO — a fast first retransmit
        (microseconds on a converged LAN).  Retries back off but are
        floored by the static ``ctrl_timeout`` ladder shifted one slot:
        a sharp estimate must not shrink the *total* patience budget, or
        a single delayed-but-delivered reply (queueing spike, injected
        delay fault) would exhaust all retries before it lands.  Every
        attempt is capped at ``ctrl_timeout_max`` — the satellite fix
        for the previously unbounded doubling."""
        if attempt == 0:
            return min(self.rtt.rto, self.config.ctrl_timeout_max)
        floor = self.config.ctrl_timeout * self.config.ctrl_backoff ** (attempt - 1)
        return min(
            max(self.rtt.rto * self.config.ctrl_backoff ** attempt, floor),
            self.config.ctrl_timeout_max,
        )

    def patience_timeout(self, attempt: int = 0) -> float:
        """Timeout for waits whose reply is legitimately slow (credit
        grants behind a full pool, the final ack behind disk writes, the
        marker watchdog).  Never shrinks below the configured base — the
        estimator can only make these *more* patient on a long path."""
        base = max(self.config.ctrl_timeout, self.rtt.rto)
        return self._capped(base, attempt)

    def heartbeat_interval(self) -> float:
        """Adaptive PING cadence: a few RTOs, clamped to a sane band."""
        return min(
            max(
                self.config.heartbeat_rto_multiplier * self.rtt.rto,
                self.config.heartbeat_interval_min,
            ),
            self.config.heartbeat_interval_max,
        )

    def idle_timeout(self) -> float:
        """Sink-side session-idle threshold: the configured floor or a
        large RTO multiple, whichever is more patient."""
        return max(
            self.config.session_idle_timeout,
            self.config.idle_rto_multiplier * self.rtt.rto,
        )

    def breaker_cooldown(self) -> float:
        """How long an OPEN channel breaker stays quarantined."""
        return max(
            self.config.breaker_cooldown_min,
            self.config.breaker_rto_multiplier * self.rtt.rto,
        )


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class ChannelBreaker:
    """Per-data-QP circuit breaker.

    CLOSED: WRITEs flow.  ``breaker_failures`` *consecutive* completion
    errors trip it OPEN: the QP leaves the send rotation for a cooldown
    (adaptive, from :meth:`HealthMonitor.breaker_cooldown`).  After the
    cooldown the first admission request transitions to HALF_OPEN and
    admits exactly one probe WRITE; its completion closes the breaker
    (success) or re-opens it for another cooldown (failure).
    """

    def __init__(self, qp_num: int, failures: int, cooldown_fn) -> None:
        self.qp_num = qp_num
        self.failure_threshold = failures
        self._cooldown_fn = cooldown_fn
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.open_until = 0.0
        self.trips = 0
        self.probes = 0
        self._probe_inflight = False

    def peek_admit(self, now: float) -> bool:
        """Would a WRITE be admitted right now?  No side effects."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.HALF_OPEN:
            return not self._probe_inflight
        return now >= self.open_until  # OPEN: cooldown elapsed -> probe-able

    def note_post(self, now: float) -> None:
        """Record that a WRITE was posted on this channel; transitions
        OPEN → HALF_OPEN and marks the single probe in flight."""
        if self.state is BreakerState.OPEN and now >= self.open_until:
            self.state = BreakerState.HALF_OPEN
            self._probe_inflight = False
        if self.state is BreakerState.HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            self.probes += 1

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._probe_inflight = False
        self.state = BreakerState.CLOSED

    def record_failure(self, now: float) -> bool:
        """Record a completion error; returns True when this trips (or
        re-trips) the breaker OPEN."""
        self.consecutive_failures += 1
        tripping = (
            self.state is BreakerState.HALF_OPEN
            or (
                self.state is BreakerState.CLOSED
                and self.consecutive_failures >= self.failure_threshold
            )
        )
        if tripping:
            self.state = BreakerState.OPEN
            self.open_until = now + self._cooldown_fn()
            self._probe_inflight = False
            self.trips += 1
        return tripping
