"""Registered buffer-block pools.

Memory registration is expensive (page pinning), so the middleware
registers each block once at pool construction and reuses the regions for
the whole transfer — one of the optimisations the paper calls out.  The
pool exposes the paper's API verbs: ``get_free_blk`` / ``put_free_blk``
on the source side and the ready-queue (``get_ready_blk``) on the sink
side, built on FIFO stores so waiting is fair and deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Generic, List, TypeVar, Union

from repro.core.blocks import SinkBlock, SourceBlock
from repro.core.messages import HEADER_BYTES
from repro.sim.resources import Store
from repro.verbs.mr import AccessFlags

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.cpu import CpuThread
    from repro.hardware.host import Host
    from repro.sim.engine import Engine
    from repro.verbs.pd import ProtectionDomain

__all__ = ["BlockPool", "ResourcePool"]

BlockT = TypeVar("BlockT", SourceBlock, SinkBlock)


class ResourcePool:
    """Bounded lease accounting for a shared resource.

    The host channel pool hands each session a *lease* on its shared
    QPs/WQE budget instead of letting every session allocate dedicated
    state.  Capacity is what the scheduler's door caps derive from
    (real resources, not a config constant), and
    :attr:`pinned_fraction` is the brownout watermark seam — the
    srq-mode analogue of :attr:`BlockPool.occupancy`.

    Leases are tracked per owner so a double release (an abort path
    racing normal teardown) is idempotent rather than corrupting the
    balance sheet.
    """

    def __init__(self, engine: "Engine", capacity: int, name: str = "qp_pool") -> None:
        if capacity < 1:
            raise ValueError("ResourcePool capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self._owners: set = set()
        reg = engine.metrics
        labels = {"pool": reg.sequence(f"lease.{name}")}
        self._m_leases = reg.counter("qp_pool.leases", **labels)
        self._m_releases = reg.counter("qp_pool.releases", **labels)
        self._m_rejected = reg.counter("qp_pool.lease_rejected", **labels)
        reg.gauge_fn("qp_pool.leased", lambda: len(self._owners), **labels)
        reg.gauge_fn("qp_pool.capacity", lambda: self.capacity, **labels)

    @property
    def leased(self) -> int:
        """Leases currently outstanding."""
        return len(self._owners)

    @property
    def available(self) -> int:
        return self.capacity - len(self._owners)

    @property
    def pinned_fraction(self) -> float:
        """Fraction of lease capacity in use, in [0, 1].

        Brownout watches this in srq mode: each lease pins a share of
        the pool's registered blocks and shared WQEs, so lease pressure
        is the real pinned-memory pressure signal.
        """
        return len(self._owners) / self.capacity

    def lease(self, owner) -> bool:
        """Take one lease for ``owner``; False when the pool is full or
        the owner already holds one (leases are per-owner, not counted)."""
        if owner in self._owners:
            return False
        if len(self._owners) >= self.capacity:
            self._m_rejected.add()
            return False
        self._owners.add(owner)
        self._m_leases.add()
        return True

    def release(self, owner) -> bool:
        """Return ``owner``'s lease; idempotent (False when not held)."""
        if owner not in self._owners:
            return False
        self._owners.discard(owner)
        self._m_releases.add()
        return True

    def holds(self, owner) -> bool:
        return owner in self._owners

    @property
    def balanced(self) -> bool:
        """No leases outstanding — the quiescence-leak invariant."""
        return not self._owners


class BlockPool(Generic[BlockT]):
    """A pool of pre-registered, fixed-size buffer blocks."""

    def __init__(
        self,
        engine: "Engine",
        blocks: List[BlockT],
        block_size: int,
        role: str = "pool",
    ) -> None:
        self.engine = engine
        self.block_size = block_size
        self.role = role
        self.blocks: Dict[int, BlockT] = {b.block_id: b for b in blocks}
        self.free = Store(engine)
        self.free.put_many(blocks)
        # Occupancy gauges are callback-backed: zero cost on the block
        # get/put hot path, sampled only when a snapshot is taken.
        reg = engine.metrics
        labels = {"role": role, "i": reg.sequence(f"pool.{role}")}
        self._m_returns = reg.counter("pool.block_returns", **labels)
        reg.gauge_fn("pool.free_blocks", lambda: len(self.free), **labels)
        reg.gauge_fn("pool.blocks", lambda: len(self.blocks), **labels)
        reg.gauge_fn("pool.waiters", lambda: self.free.waiters, **labels)

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def free_count(self) -> int:
        return len(self.free)

    @property
    def occupancy(self) -> float:
        """Fraction of pinned blocks currently in use, in [0, 1].

        The scheduler's brownout watermark seam: pinned-memory pressure
        is the RDMAvisor-style per-session cost that grows with
        concurrent sessions, so the broker watches this instead of a
        proxy like queue depth.
        """
        total = len(self.blocks)
        if total == 0:
            return 0.0
        return 1.0 - len(self.free) / total

    def get_free_blk(self):
        """Event resolving to a free block (FIFO wait if none)."""
        return self.free.get()

    def try_get_free_blk(self):
        """Non-blocking variant; returns a block or ``None``."""
        return self.free.try_get()

    def put_free_blk(self, block: BlockT) -> None:
        """Return a block to the free list (must already be FREE state)."""
        if block.block_id not in self.blocks:
            raise KeyError(f"foreign block {block.block_id}")
        self.free.put_many([block])
        self._m_returns.add()

    def cancel_get_free_blk(self, event) -> bool:
        """Withdraw a pending :meth:`get_free_blk` (aborted waiter)."""
        return self.free.cancel_get(event)

    def by_id(self, block_id: int) -> BlockT:
        return self.blocks[block_id]

    # -- constructors -------------------------------------------------------------
    @classmethod
    def build_source(
        cls,
        host: "Host",
        pd: "ProtectionDomain",
        count: int,
        block_size: int,
    ) -> "BlockPool[SourceBlock]":
        """Allocate and register a source pool (local access only)."""
        blocks: List[SourceBlock] = []
        for i in range(count):
            buf = host.memory.alloc(block_size + HEADER_BYTES)
            mr = pd.reg_mr_sync(buf, AccessFlags.LOCAL_WRITE)
            blocks.append(SourceBlock(i, mr))
        return cls(host.engine, blocks, block_size, role="source")

    @classmethod
    def build_sink(
        cls,
        host: "Host",
        pd: "ProtectionDomain",
        count: int,
        block_size: int,
    ) -> "BlockPool[SinkBlock]":
        """Allocate and register a sink pool (remote-writable: the regions
        whose (addr, rkey) pairs become credits)."""
        blocks: List[SinkBlock] = []
        for i in range(count):
            # Room for the payload plus the per-block wire header.
            buf = host.memory.alloc(block_size + HEADER_BYTES)
            mr = pd.reg_mr_sync(
                buf, AccessFlags.LOCAL_WRITE | AccessFlags.REMOTE_WRITE
            )
            blocks.append(SinkBlock(i, mr))
        return cls(host.engine, blocks, block_size, role="sink")

    @classmethod
    def build_source_timed(
        cls,
        host: "Host",
        pd: "ProtectionDomain",
        thread: "CpuThread",
        count: int,
        block_size: int,
    ) -> Generator:
        """Process generator: like :meth:`build_source` but charges the
        registration (pinning) CPU cost — used where setup time matters."""
        blocks: List[SourceBlock] = []
        for i in range(count):
            buf = host.memory.alloc(block_size + HEADER_BYTES)
            mr = yield pd.reg_mr(thread, buf, AccessFlags.LOCAL_WRITE)
            blocks.append(SourceBlock(i, mr))
        return cls(host.engine, blocks, block_size, role="source")
