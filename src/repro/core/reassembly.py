"""Out-of-order block reassembly (§IV-A, third optimisation).

With multiple data-channel queue pairs, blocks of one session may land at
the sink in any order.  The reassembly buffer holds early arrivals and
releases the longest possible in-order run, keyed by (session id,
sequence number), so upper layers always see an in-order byte stream.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.messages import BlockHeader

__all__ = ["ReassemblyBuffer"]


class ReassemblyBuffer:
    """Per-session in-order delivery of out-of-order arrivals."""

    def __init__(self) -> None:
        #: session id -> next sequence number owed to the application.
        self._next_seq: Dict[int, int] = {}
        #: session id -> {seq: (header, payload)} parked out-of-order.
        #: Nested per-session so pending()/reclaim are O(session), not
        #: O(everything parked on the link).
        self._parked: Dict[int, Dict[int, Tuple[BlockHeader, Any]]] = {}
        self.max_parked = 0
        self.duplicates = 0
        #: session id -> duplicates dropped for that session (chaos tests
        #: attribute replay storms to the session that caused them).
        self.duplicates_by_session: Dict[int, int] = {}
        #: A "duplicate" whose payload differed from the parked/delivered
        #: copy.  Still dropped (first-writer-wins, as RDMA WRITE would
        #: behave), but counted separately — silent divergence is a bug
        #: signal, not a benign replay.
        self.payload_conflicts = 0

    def _total_parked(self) -> int:
        return sum(len(per) for per in self._parked.values())

    def pending(self, session_id: int) -> int:
        """Blocks parked for a session (not yet deliverable)."""
        return len(self._parked.get(session_id, ()))

    def next_seq(self, session_id: int) -> int:
        return self._next_seq.get(session_id, 0)

    def sessions_with_parked(self) -> List[int]:
        """Session ids that currently have parked entries."""
        return [sid for sid, per in self._parked.items() if per]

    def _count_duplicate(self, sid: int, payload: Any, parked_payload: Any,
                         comparable: bool) -> None:
        self.duplicates += 1
        self.duplicates_by_session[sid] = self.duplicates_by_session.get(sid, 0) + 1
        if comparable and parked_payload != payload:
            self.payload_conflicts += 1

    def push(self, header: BlockHeader, payload: Any) -> List[Tuple[BlockHeader, Any]]:
        """Insert an arrival; return the blocks now deliverable in order.

        Duplicate or stale sequence numbers are counted and dropped
        (RDMA WRITE is reliable, so these indicate an application replay —
        tests use them to assert idempotence).  A duplicate still parked
        here is additionally checked for payload divergence.
        """
        sid = header.session_id
        nxt = self._next_seq.get(sid, 0)
        per = self._parked.setdefault(sid, {})
        if header.seq < nxt:
            # Already delivered; the original payload is gone so divergence
            # is undetectable here.
            self._count_duplicate(sid, payload, None, comparable=False)
            return []
        if header.seq in per:
            self._count_duplicate(sid, payload, per[header.seq][1], comparable=True)
            return []
        per[header.seq] = (header, payload)
        self.max_parked = max(self.max_parked, self._total_parked())
        released: List[Tuple[BlockHeader, Any]] = []
        while nxt in per:
            released.append(per.pop(nxt))
            nxt += 1
        self._next_seq[sid] = nxt
        if not per:
            del self._parked[sid]
        return released

    def reclaim_session(self, session_id: int) -> List[Tuple[BlockHeader, Any]]:
        """Close a session and hand back its stranded entries.

        The sink GC needs the actual (header, payload) tuples so it can
        free the pool blocks still holding the payloads.
        """
        per = self._parked.pop(session_id, {})
        self._next_seq.pop(session_id, None)
        return [per[seq] for seq in sorted(per)]

    def finish_session(self, session_id: int) -> int:
        """Close a session; returns the number of discarded stranded blocks."""
        return len(self.reclaim_session(session_id))
