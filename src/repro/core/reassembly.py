"""Out-of-order block reassembly (§IV-A, third optimisation).

With multiple data-channel queue pairs, blocks of one session may land at
the sink in any order.  The reassembly buffer holds early arrivals and
releases the longest possible in-order run, keyed by (session id,
sequence number), so upper layers always see an in-order byte stream.

Bookkeeping lives in a :class:`~repro.obs.registry.MetricsRegistry`
(one may be passed in — the sink engine shares its engine's registry —
or a private one is created).  The historical stat attributes
(``duplicates``, ``duplicates_by_session``, ``payload_conflicts``,
``max_parked``) remain available as read-only views over the registry.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.messages import BlockHeader
from repro.obs.registry import MetricsRegistry

__all__ = ["ReassemblyBuffer"]


class ReassemblyBuffer:
    """Per-session in-order delivery of out-of-order arrivals."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        **labels: Any,
    ) -> None:
        #: session id -> next sequence number owed to the application.
        self._next_seq: Dict[int, int] = {}
        #: session id -> {seq: (header, payload)} parked out-of-order.
        #: Nested per-session so pending()/reclaim are O(session), not
        #: O(everything parked on the link).
        self._parked: Dict[int, Dict[int, Tuple[BlockHeader, Any]]] = {}
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._labels = dict(labels)
        self._m_duplicates = self.metrics.counter("reassembly.duplicates", **labels)
        #: A "duplicate" whose payload differed from the parked/delivered
        #: copy.  Still dropped (first-writer-wins, as RDMA WRITE would
        #: behave), but counted separately — silent divergence is a bug
        #: signal, not a benign replay.
        self._m_conflicts = self.metrics.counter(
            "reassembly.payload_conflicts", **labels
        )
        self._m_max_parked = self.metrics.gauge("reassembly.max_parked", **labels)
        #: session id -> bound duplicate counter; resolved once per
        #: session (see :meth:`_bind_session_counter`) and dropped with
        #: the session's other bookkeeping in :meth:`reclaim_session`.
        self._m_dup_by_session: Dict[int, Any] = {}
        self.metrics.gauge_fn("reassembly.parked", self._total_parked, **labels)
        self.metrics.gauge_fn(
            "reassembly.sessions", lambda: len(self.sessions()), **labels
        )

    # -- backwards-compat stat views ------------------------------------------
    @property
    def duplicates(self) -> int:
        return int(self._m_duplicates.total)

    @property
    def payload_conflicts(self) -> int:
        return int(self._m_conflicts.total)

    @property
    def max_parked(self) -> int:
        return int(self._m_max_parked.value)

    @property
    def duplicates_by_session(self) -> Dict[int, int]:
        """session id -> duplicates dropped for that session (chaos tests
        attribute replay storms to the session that caused them)."""
        out: Dict[int, int] = {}
        for metric in self.metrics.family("reassembly.session_duplicates"):
            if all(metric.labels.get(k) == v for k, v in self._labels.items()):
                out[metric.labels["session"]] = int(metric.total)
        return out

    def _total_parked(self) -> int:
        return sum(len(per) for per in self._parked.values())

    def pending(self, session_id: int) -> int:
        """Blocks parked for a session (not yet deliverable)."""
        return len(self._parked.get(session_id, ()))

    def next_seq(self, session_id: int) -> int:
        return self._next_seq.get(session_id, 0)

    def set_next_seq(self, session_id: int, seq: int) -> None:
        """Reset a session's delivery cursor (SESSION_RESUME re-attach).

        Any entries parked below the new cursor belong to the dead
        incarnation and are discarded — the resuming source re-sends the
        whole missing suffix from the restart marker.
        """
        per = self._parked.get(session_id)
        if per:
            for stale in [s for s in per if s < seq]:
                del per[stale]
            if not per:
                del self._parked[session_id]
        self._next_seq[session_id] = seq

    def sessions_with_parked(self) -> List[int]:
        """Session ids that currently have parked entries."""
        return [sid for sid, per in self._parked.items() if per]

    def sessions(self) -> List[int]:
        """Session ids with any state (delivery cursor or parked entries)."""
        return list(set(self._next_seq) | set(self._parked))

    def reject_duplicate(self, header: BlockHeader, payload: Any) -> bool:
        """If ``header`` replays a delivered or parked seq, count it and
        return True (the caller recycles the arrival's block instead of
        pushing it).

        Engines park ``(header, block)`` tuples, so divergence checking
        against a still-parked copy unwraps the parked object's
        ``payload`` attribute when it has one.
        """
        sid = header.session_id
        per = self._parked.get(sid, {})
        if header.seq >= self._next_seq.get(sid, 0) and header.seq not in per:
            return False
        parked_payload = None
        comparable = False
        if header.seq in per:
            obj = per[header.seq][1]
            parked_payload = getattr(obj, "payload", obj)
            comparable = True
        self._count_duplicate(sid, payload, parked_payload, comparable)
        return True

    def _bind_session_counter(self, sid: int):
        """Resolve and cache a session's duplicate counter (setup path —
        runs once per session, on its first counted duplicate)."""
        counter = self.metrics.counter(
            "reassembly.session_duplicates", session=sid, **self._labels
        )
        self._m_dup_by_session[sid] = counter
        return counter

    def _count_duplicate(self, sid: int, payload: Any, parked_payload: Any,
                         comparable: bool) -> None:
        self._m_duplicates.add()
        counter = self._m_dup_by_session.get(sid)
        if counter is None:
            counter = self._bind_session_counter(sid)
        counter.add()
        if comparable and parked_payload != payload:
            self._m_conflicts.add()

    def push(self, header: BlockHeader, payload: Any) -> List[Tuple[BlockHeader, Any]]:
        """Insert an arrival; return the blocks now deliverable in order.

        Duplicate or stale sequence numbers are counted and dropped
        (RDMA WRITE is reliable, so these indicate an application replay —
        tests use them to assert idempotence).  A duplicate still parked
        here is additionally checked for payload divergence.
        """
        sid = header.session_id
        nxt = self._next_seq.get(sid, 0)
        per = self._parked.get(sid)
        if header.seq < nxt:
            # Already delivered; the original payload is gone so divergence
            # is undetectable here.  Counted before touching the parked
            # index so a replay against a pruned session leaves no state
            # behind.
            self._count_duplicate(sid, payload, None, comparable=False)
            return []
        if per is not None and header.seq in per:
            self._count_duplicate(sid, payload, per[header.seq][1], comparable=True)
            return []
        if per is None:
            per = self._parked.setdefault(sid, {})
        per[header.seq] = (header, payload)
        self._m_max_parked.set_max(self._total_parked())
        released: List[Tuple[BlockHeader, Any]] = []
        while nxt in per:
            released.append(per.pop(nxt))
            nxt += 1
        self._next_seq[sid] = nxt
        if not per:
            del self._parked[sid]
        return released

    def reclaim_session(self, session_id: int) -> List[Tuple[BlockHeader, Any]]:
        """Close a session and hand back its stranded entries.

        The sink GC needs the actual (header, payload) tuples so it can
        free the pool blocks still holding the payloads.  Per-session
        bookkeeping (the parked index, the sequence cursor, and the
        duplicate attribution metric) is pruned here so a long-lived sink
        stays bounded; the aggregate chaos-audit counters
        (:attr:`duplicates`, :attr:`payload_conflicts`) are preserved.
        """
        per = self._parked.pop(session_id, {})
        self._next_seq.pop(session_id, None)
        self._m_dup_by_session.pop(session_id, None)
        self.metrics.remove(
            "reassembly.session_duplicates", session=session_id, **self._labels
        )
        return [per[seq] for seq in sorted(per)]

    def finish_session(self, session_id: int) -> int:
        """Close a session; returns the number of discarded stranded blocks."""
        return len(self.reclaim_session(session_id))
