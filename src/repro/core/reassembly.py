"""Out-of-order block reassembly (§IV-A, third optimisation).

With multiple data-channel queue pairs, blocks of one session may land at
the sink in any order.  The reassembly buffer holds early arrivals and
releases the longest possible in-order run, keyed by (session id,
sequence number), so upper layers always see an in-order byte stream.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.messages import BlockHeader

__all__ = ["ReassemblyBuffer"]


class ReassemblyBuffer:
    """Per-session in-order delivery of out-of-order arrivals."""

    def __init__(self) -> None:
        #: session id -> next sequence number owed to the application.
        self._next_seq: Dict[int, int] = {}
        #: (session id, seq) -> (header, payload) parked out-of-order.
        self._parked: Dict[Tuple[int, int], Tuple[BlockHeader, Any]] = {}
        self.max_parked = 0
        self.duplicates = 0

    def pending(self, session_id: int) -> int:
        """Blocks parked for a session (not yet deliverable)."""
        return sum(1 for (sid, _) in self._parked if sid == session_id)

    def next_seq(self, session_id: int) -> int:
        return self._next_seq.get(session_id, 0)

    def push(self, header: BlockHeader, payload: Any) -> List[Tuple[BlockHeader, Any]]:
        """Insert an arrival; return the blocks now deliverable in order.

        Duplicate or stale sequence numbers are counted and dropped
        (RDMA WRITE is reliable, so these indicate an application replay —
        tests use them to assert idempotence).
        """
        sid = header.session_id
        nxt = self._next_seq.get(sid, 0)
        if header.seq < nxt or header.key() in self._parked:
            self.duplicates += 1
            return []
        self._parked[header.key()] = (header, payload)
        self.max_parked = max(self.max_parked, len(self._parked))
        released: List[Tuple[BlockHeader, Any]] = []
        while (sid, nxt) in self._parked:
            released.append(self._parked.pop((sid, nxt)))
            nxt += 1
        self._next_seq[sid] = nxt
        return released

    def finish_session(self, session_id: int) -> int:
        """Close a session; returns (and discards) any stranded blocks."""
        stranded = [key for key in self._parked if key[0] == session_id]
        for key in stranded:
            del self._parked[key]
        self._next_seq.pop(session_id, None)
        return len(stranded)
