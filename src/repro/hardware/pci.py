"""PCIe bus model.

Every DMA between a NIC and host memory crosses the host's PCIe bus, a
FIFO resource with finite effective bandwidth.  On the paper's InfiniBand
testbed the eight-lane PCIe 2.0 slot — not the 40 Gbps link — is the
bare-metal ceiling (~25 Gbps), and this model is what reproduces that
ceiling in Figure 9.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.sim.monitor import Counter
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["PcieBus"]


class PcieBus:
    """A shared, FIFO-serialised DMA path between NICs and memory."""

    def __init__(self, engine: "Engine", gbps: float) -> None:
        if gbps <= 0:
            raise ValueError("PCIe bandwidth must be positive")
        self.engine = engine
        self.gbps = gbps
        self.bytes_per_second = gbps * 1e9 / 8.0
        self._bus = Resource(engine, capacity=1)
        #: Fluid busy-until horizon: absolute time the bus frees up.
        #: ``start = max(now, free); end = start + service`` reproduces
        #: the exact floats of the discrete request/timeout/release
        #: chain, so DMA completions are bit-identical in both modes.
        self._fluid_free = 0.0
        self.bytes_moved = Counter("pcie_bytes")

    def dma(self, nbytes: int) -> Generator:
        """Process generator: move ``nbytes`` across the bus (FIFO)."""
        if nbytes < 0:
            raise ValueError("DMA size must be non-negative")
        if nbytes == 0:
            return
        engine = self.engine
        if engine.use_fluid:
            free = self._fluid_free
            now = engine.now
            start = now if now > free else free
            end = start + nbytes / self.bytes_per_second
            self._fluid_free = end
            yield engine.timeout_at(end)
            self.bytes_moved.add(nbytes)
            return
        yield self._bus.request()
        try:
            yield engine.timeout(nbytes / self.bytes_per_second)
        finally:
            self._bus.release()
        self.bytes_moved.add(nbytes)

    @property
    def queued(self) -> int:
        """Number of DMA requests waiting for the bus."""
        return self._bus.queued
