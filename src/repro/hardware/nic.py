"""Network interface card (RDMA HCA) hardware model.

The NIC is the protocol-offload engine: once the host posts a work-queue
element (WQE), the NIC fetches payload over PCIe, segments and transmits
it, and raises a completion — with **zero host CPU per byte**.  What the
host *does* pay for is captured elsewhere (verbs call costs, interrupt
handling); what the NIC itself costs is captured here:

- ``wqe_seconds``: NIC-side processing time per WQE.  This caps the
  message rate and is why tiny blocks cannot saturate a 40 Gbps link
  (Figures 3/4: the rising left edge of every bandwidth curve).
- ``read_gap_seconds``: extra per-request gap in the responder's RDMA READ
  engine, which is less pipelined than the send path.  Combined with the
  ``max_ord`` outstanding-read limit this reproduces READ's deficit versus
  WRITE in the LAN and its collapse over long-RTT WANs (the observation
  from the paper's refs [17][18] that motivates the WRITE-based design).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.sim.monitor import Counter
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.hardware.host import Host

__all__ = ["Nic", "NicProfile"]


@dataclass(frozen=True)
class NicProfile:
    """Static NIC hardware parameters."""

    #: Line rate in Gbps (e.g. 40 for the LAN HCAs, 10 for the ANI WAN).
    gbps: float
    #: NIC processing time per work-queue element, seconds.
    wqe_seconds: float = 1.2e-6
    #: Responder read-engine pipeline gap per RDMA READ request, seconds.
    read_gap_seconds: float = 8.0e-6
    #: Maximum outstanding RDMA READs a QP may have in flight (ORD/IRD).
    max_ord: int = 16
    #: Number of parallel WQE-processing pipelines.
    engines: int = 2
    #: Interface MTU in bytes (bounds UD datagrams).
    mtu: int = 9000

    def __post_init__(self) -> None:
        if self.gbps <= 0:
            raise ValueError("NIC rate must be positive")
        if self.max_ord < 1:
            raise ValueError("max_ord must be >= 1")
        if self.engines < 1:
            raise ValueError("engines must be >= 1")

    @property
    def bytes_per_second(self) -> float:
        return self.gbps * 1e9 / 8.0


class Nic:
    """A NIC instance bound to one host.

    Provides the hardware-timing primitives the simulated verbs layer
    sequences into SEND / WRITE / READ operations.
    """

    def __init__(self, engine: "Engine", host: "Host", profile: NicProfile, name: str) -> None:
        self.engine = engine
        self.host = host
        self.profile = profile
        self.name = name
        self._wqe_pipe = Resource(engine, capacity=profile.engines)
        #: Fluid busy-until horizon per WQE pipeline.  Service times are
        #: uniform (``wqe_seconds``), so booking each WQE on the
        #: earliest-free pipeline reproduces the discrete FIFO grant
        #: order — and the ``max(now, free) + service`` floats — exactly.
        self._wqe_free = [0.0] * profile.engines
        self._read_engine = Resource(engine, capacity=1)
        self.wqes_processed = Counter(f"{name}.wqes")
        self.read_requests_served = Counter(f"{name}.reads")

    # -- hardware-timing primitives (process generators) ----------------------
    def process_wqe(self) -> Generator:
        """Occupy a NIC pipeline for one WQE's processing time."""
        engine = self.engine
        if engine.use_fluid:
            free = self._wqe_free
            i = free.index(min(free))
            now = engine.now
            start = now if now > free[i] else free[i]
            end = start + self.profile.wqe_seconds
            free[i] = end
            yield engine.timeout_at(end)
            self.wqes_processed.add()
            return
        yield self._wqe_pipe.request()
        try:
            yield engine.timeout(self.profile.wqe_seconds)
        finally:
            self._wqe_pipe.release()
        self.wqes_processed.add()

    def dma_fetch(self, nbytes: int) -> Generator:
        """DMA-read payload from host memory over the host's PCIe bus."""
        yield from self.host.pcie.dma(nbytes)

    def dma_place(self, nbytes: int) -> Generator:
        """DMA-write arriving payload into host memory."""
        yield from self.host.pcie.dma(nbytes)

    def serve_read(self, nbytes: int) -> Generator:
        """Serve one RDMA READ request through the responder read engine.

        Unlike the send path (where WQE processing and DMA pipeline
        freely), the read responder processes requests one at a time:
        the per-request gap *and* the payload DMA occupy the engine
        serially, which is what keeps READ below WRITE at small and
        medium block sizes.
        """
        yield self._read_engine.request()
        try:
            yield self.engine.timeout(self.profile.read_gap_seconds)
            yield from self.dma_fetch(nbytes)
        finally:
            self._read_engine.release()
        self.read_requests_served.add()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Nic {self.name} {self.profile.gbps}Gbps on {self.host.name}>"
