"""Host memory: buffer allocation and address space.

The middleware registers large pools of fixed-size blocks and reuses them
for the lifetime of a transfer (one of the paper's optimisations), so the
allocator here is a simple monotonic address assigner with byte
accounting; fragmentation is out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MemoryBuffer", "MemoryManager"]

#: Page size used for registration-cost accounting (x86-64 default).
PAGE_SIZE = 4096


@dataclass(frozen=True)
class MemoryBuffer:
    """A contiguous region of host memory (simulated; holds no bytes)."""

    addr: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("buffer size must be positive")
        if self.addr < 0:
            raise ValueError("buffer address must be non-negative")

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.addr + self.size

    @property
    def pages(self) -> int:
        """Number of pages the region spans (for pinning cost models)."""
        return -(-self.size // PAGE_SIZE)

    def contains(self, addr: int, length: int) -> bool:
        """True if ``[addr, addr+length)`` lies wholly inside this buffer."""
        return self.addr <= addr and addr + length <= self.end


@dataclass
class MemoryManager:
    """Tracks allocations against a host's physical memory size."""

    capacity: int
    used: int = 0
    _next_addr: int = field(default=0x10_0000, repr=False)

    def alloc(self, size: int) -> MemoryBuffer:
        """Allocate ``size`` bytes; raises :class:`MemoryError` if exhausted."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if self.used + size > self.capacity:
            raise MemoryError(
                f"host memory exhausted: {self.used + size} > {self.capacity}"
            )
        buf = MemoryBuffer(self._next_addr, size)
        self._next_addr += size
        # Keep regions page-aligned like a real pinned allocation would be.
        rem = self._next_addr % PAGE_SIZE
        if rem:
            self._next_addr += PAGE_SIZE - rem
        self.used += size
        return buf

    def free(self, buf: MemoryBuffer) -> None:
        """Return a buffer's bytes to the pool."""
        if buf.size > self.used:
            raise RuntimeError("double free or foreign buffer")
        self.used -= buf.size

    @property
    def available(self) -> int:
        return self.capacity - self.used
