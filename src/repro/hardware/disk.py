"""Storage model: a RAID array with POSIX vs direct I/O cost structure.

The paper's memory-to-disk experiments (Figure 11) hinge on two storage
facts: (1) a striped RAID of fast disks can absorb a 10 Gbps WAN stream,
and (2) *how* you write matters — standard POSIX buffered writes burn a
per-byte page-cache copy on the writing thread, while direct I/O costs
almost nothing per byte.  RFTP uses direct I/O; GridFTP (at the time) did
not.  Both facts are parameters here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.sim.monitor import Counter
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.hardware.cpu import CpuThread

__all__ = ["DiskArray", "DiskProfile"]


@dataclass(frozen=True)
class DiskProfile:
    """Static parameters of a disk array."""

    #: Aggregate streaming write bandwidth, bytes/second.
    write_bytes_per_second: float = 2.0e9
    #: Aggregate streaming read bandwidth, bytes/second.
    read_bytes_per_second: float = 2.5e9
    #: Number of stripes that can be written concurrently (RAID lanes).
    lanes: int = 4
    #: Page-cache copy cost for POSIX buffered I/O, ns per byte (on the
    #: calling thread).
    posix_copy_ns_per_byte: float = 0.25
    #: Per-call syscall cost, seconds.
    syscall_seconds: float = 2.0e-6
    #: Per-call setup for direct I/O (alignment checks, DMA mapping), seconds.
    direct_setup_seconds: float = 4.0e-6

    def __post_init__(self) -> None:
        if self.write_bytes_per_second <= 0 or self.read_bytes_per_second <= 0:
            raise ValueError("disk bandwidth must be positive")
        if self.lanes < 1:
            raise ValueError("lanes must be >= 1")


class DiskArray:
    """A striped disk array attached to a host."""

    def __init__(self, engine: "Engine", profile: DiskProfile, name: str = "raid") -> None:
        self.engine = engine
        self.profile = profile
        self.name = name
        self._lanes = Resource(engine, capacity=profile.lanes)
        self.bytes_written = Counter(f"{name}.written")
        self.bytes_read = Counter(f"{name}.read")

    def _lane_time(self, nbytes: int, rate: float) -> float:
        # Each lane delivers its share of the aggregate bandwidth.
        return nbytes / (rate / self.profile.lanes)

    def write(self, thread: "CpuThread", nbytes: int, direct: bool = False) -> Generator:
        """Process generator: synchronously write ``nbytes``.

        CPU cost lands on ``thread`` (copy for POSIX, setup only for
        direct I/O); the device transfer itself occupies a RAID lane but
        not the CPU.
        """
        if nbytes < 0:
            raise ValueError("write size must be non-negative")
        prof = self.profile
        if direct:
            cpu = prof.direct_setup_seconds + prof.syscall_seconds
        else:
            cpu = prof.syscall_seconds + nbytes * prof.posix_copy_ns_per_byte * 1e-9
        yield thread.exec(cpu)
        yield self._lanes.request()
        try:
            yield self.engine.timeout(self._lane_time(nbytes, prof.write_bytes_per_second))
        finally:
            self._lanes.release()
        self.bytes_written.add(nbytes)

    def read(self, thread: "CpuThread", nbytes: int, direct: bool = False) -> Generator:
        """Process generator: synchronously read ``nbytes``."""
        if nbytes < 0:
            raise ValueError("read size must be non-negative")
        prof = self.profile
        if direct:
            cpu = prof.direct_setup_seconds + prof.syscall_seconds
        else:
            cpu = prof.syscall_seconds + nbytes * prof.posix_copy_ns_per_byte * 1e-9
        yield thread.exec(cpu)
        yield self._lanes.request()
        try:
            yield self.engine.timeout(self._lane_time(nbytes, prof.read_bytes_per_second))
        finally:
            self._lanes.release()
        self.bytes_read.add(nbytes)
