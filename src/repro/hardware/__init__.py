"""Hardware models: CPUs, memory, PCIe, NICs, disks, and host assembly.

These models provide the *cost structure* that shapes every experiment in
the paper: finite CPU cores (a single-threaded application caps at one
core), per-operation NIC work-queue processing time (small blocks cannot
saturate the wire), a shared PCIe bus (the InfiniBand testbed's ~25 Gbps
ceiling), and RAID disks whose effective rate depends on POSIX-vs-direct
I/O CPU cost.
"""

from repro.hardware.cpu import CpuScheduler, CpuThread
from repro.hardware.memory import MemoryBuffer, MemoryManager
from repro.hardware.pci import PcieBus
from repro.hardware.nic import Nic, NicProfile
from repro.hardware.disk import DiskArray, DiskProfile
from repro.hardware.host import Host, HostSpec

__all__ = [
    "CpuScheduler",
    "CpuThread",
    "DiskArray",
    "DiskProfile",
    "Host",
    "HostSpec",
    "MemoryBuffer",
    "MemoryManager",
    "Nic",
    "NicProfile",
    "PcieBus",
]
