"""Multi-core CPU model with per-group utilisation accounting.

The model is intentionally simple and deterministic:

- A host owns ``cores`` identical cores, managed as a FIFO
  :class:`~repro.sim.resources.Resource`.
- Application code runs on :class:`CpuThread` objects.  A thread executes
  *compute chunks* (``yield thread.exec(seconds)``): it acquires a core,
  holds it for the chunk duration, and releases it.  Because one thread
  executes chunks serially, a single-threaded application can never exceed
  100 % of one core — the GridFTP bottleneck the paper diagnoses.
- Kernel work that does not block the application thread (softirq
  processing, interrupt handlers running on other cores) is charged with
  :meth:`CpuScheduler.charge_background`: it contributes to utilisation
  accounting without contending for the caller's core.  This matches the
  paper's nmon numbers where GridFTP "consumes more than 100 % of the CPU
  resource" while its lone application thread saturates one core.

Utilisation is reported in the nmon convention used by the paper: percent
of a single core, so a 12-core host tops out at 1200 %.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Optional

from repro.sim.monitor import TimeWeightedStat
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["CpuScheduler", "CpuThread"]


class CpuScheduler:
    """Schedules compute chunks onto a finite pool of cores."""

    def __init__(self, engine: "Engine", cores: int) -> None:
        if cores < 1:
            raise ValueError("a host needs at least one core")
        self.engine = engine
        self.cores = cores
        self._pool = Resource(engine, capacity=cores)
        #: Busy-core-seconds per accounting group ("app", "kernel", ...).
        self._group_busy: Dict[str, float] = {}
        self._busy = TimeWeightedStat(engine)
        self._epoch = engine.now

    # -- execution -----------------------------------------------------------
    def run_chunk(self, seconds: float, group: str) -> Generator:
        """Process generator: occupy one core for ``seconds``."""
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        if seconds == 0:
            return
        yield self._pool.request()
        self._busy.add(1)
        try:
            yield self.engine.timeout(seconds)
        finally:
            self._busy.add(-1)
            self._pool.release()
            self._charge(group, seconds)

    def charge_background(self, seconds: float, group: str = "kernel") -> None:
        """Account CPU time that runs concurrently on spare cores.

        This does not occupy a core slot (we assume interrupt/softirq work
        spreads over otherwise-idle cores); it only affects the utilisation
        report.  Use sparingly — only for work that genuinely does not gate
        the charging thread.
        """
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        self._charge(group, seconds)

    def _charge(self, group: str, seconds: float) -> None:
        self._group_busy[group] = self._group_busy.get(group, 0.0) + seconds

    # -- measurement -----------------------------------------------------------
    def reset_accounting(self) -> None:
        """Restart utilisation measurement from the current instant."""
        self._group_busy.clear()
        self._busy.reset()
        self._epoch = self.engine.now

    def busy_seconds(self, group: Optional[str] = None) -> float:
        """Busy core-seconds since the accounting epoch."""
        if group is None:
            return sum(self._group_busy.values())
        return self._group_busy.get(group, 0.0)

    def utilization_pct(self, group: Optional[str] = None) -> float:
        """Utilisation as percent-of-one-core (nmon convention)."""
        span = self.engine.now - self._epoch
        if span <= 0:
            return 0.0
        return 100.0 * self.busy_seconds(group) / span

    @property
    def cores_busy(self) -> float:
        """Instantaneous number of busy cores (scheduled work only)."""
        return self._busy.level


class CpuThread:
    """A named thread of execution bound to one scheduler and group.

    The thread itself is not a process — it is a cost-charging handle that
    simulation processes use::

        def sender(env, thread):
            yield thread.exec(cost.post_send)   # blocks for CPU time
            ...

    One :class:`CpuThread` must only be used by one simulation process at a
    time (enforced opportunistically), mirroring a real OS thread.
    """

    def __init__(self, scheduler: CpuScheduler, name: str, group: str) -> None:
        self.scheduler = scheduler
        self.name = name
        self.group = group
        self._active = False

    def exec(self, seconds: float):
        """Return an event that completes after the CPU chunk runs."""
        if self._active:
            raise RuntimeError(
                f"thread {self.name!r} is already executing a chunk; "
                "one CpuThread maps to one OS thread"
            )
        scheduler = self.scheduler
        engine = scheduler.engine
        if engine.use_fluid and seconds > 0 and scheduler._pool.try_acquire():
            # Fluid fast path: with a core free, grant/hold/release
            # collapse into one timer at the analytically-known end.
            # Contended chunks (no free core) fall through to the
            # discrete FIFO queue, whose wakeup order must be exact.
            self._active = True
            scheduler._busy.add(1)
            timer = engine.timeout(seconds)
            timer.add_callback(self._fluid_done)
            return timer
        self._active = True

        def _run():
            try:
                yield from self.scheduler.run_chunk(seconds, self.group)
            finally:
                self._active = False

        return self.scheduler.engine.process(_run())

    def _fluid_done(self, event) -> None:
        scheduler = self.scheduler
        scheduler._busy.add(-1)
        scheduler._pool.release()
        scheduler._charge(self.group, event.delay)
        self._active = False

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CpuThread {self.name} group={self.group}>"
