"""Host assembly: CPUs + memory + PCIe + NICs + optional disk array."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.hardware.cpu import CpuScheduler, CpuThread
from repro.hardware.disk import DiskArray, DiskProfile
from repro.hardware.memory import MemoryManager
from repro.hardware.nic import Nic, NicProfile
from repro.hardware.pci import PcieBus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["Host", "HostSpec"]


@dataclass(frozen=True)
class HostSpec:
    """Static host parameters (the per-testbed rows of Table I).

    Per-byte CPU costs are expressed in nanoseconds per byte on one core;
    they encode memcpy/memset throughput of the testbed's CPUs.
    """

    name: str
    cores: int
    mem_bytes: int
    #: Effective PCIe bandwidth between NIC and memory, Gbps.  This is the
    #: bare-metal ceiling on the InfiniBand testbed (8-lane PCIe 2.0).
    pcie_gbps: float
    cpu_model: str = ""
    #: user<->kernel copy cost (TCP send/recv path), ns/byte.
    memcpy_ns_per_byte: float = 0.62
    #: Cost of sourcing data from /dev/zero (page-zeroing memset), ns/byte.
    memset_ns_per_byte: float = 0.16
    #: Per-syscall overhead, seconds.
    syscall_seconds: float = 1.5e-6
    #: Interrupt / completion-event wakeup cost, seconds.
    interrupt_seconds: float = 2.0e-6
    #: Kernel TCP per-byte cost that runs on other cores (softirq, skb
    #: handling); charged as background CPU, ns/byte.
    tcp_kernel_ns_per_byte: float = 0.30

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.mem_bytes <= 0:
            raise ValueError("memory must be positive")
        if self.pcie_gbps <= 0:
            raise ValueError("PCIe bandwidth must be positive")


class Host:
    """A simulated end host."""

    def __init__(self, engine: "Engine", spec: HostSpec) -> None:
        self.engine = engine
        self.spec = spec
        self.name = spec.name
        self.cpu = CpuScheduler(engine, spec.cores)
        self.memory = MemoryManager(capacity=spec.mem_bytes)
        self.pcie = PcieBus(engine, spec.pcie_gbps)
        self.nics: List[Nic] = []
        self.disk: Optional[DiskArray] = None
        self._thread_seq = 0

    def add_nic(self, profile: NicProfile) -> Nic:
        """Install a NIC and return it."""
        nic = Nic(self.engine, self, profile, f"{self.name}.nic{len(self.nics)}")
        self.nics.append(nic)
        return nic

    def add_disk(self, profile: Optional[DiskProfile] = None) -> DiskArray:
        """Install a disk array (replacing any existing one)."""
        self.disk = DiskArray(self.engine, profile or DiskProfile(), f"{self.name}.raid")
        return self.disk

    @property
    def nic(self) -> Nic:
        """The host's primary NIC."""
        if not self.nics:
            raise RuntimeError(f"host {self.name} has no NIC installed")
        return self.nics[0]

    def thread(self, name: str, group: str = "app") -> CpuThread:
        """Create a new OS-thread handle charged to accounting ``group``."""
        self._thread_seq += 1
        return CpuThread(self.cpu, f"{self.name}.{name}#{self._thread_seq}", group)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name} cores={self.spec.cores}>"
