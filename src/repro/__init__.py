"""repro — reproduction of Ren et al., "Protocols for Wide-Area
Data-intensive Applications: Design and Performance Issues" (SC 2012).

The package implements the paper's RDMA data-transfer middleware and its
RFTP application, together with every substrate the evaluation needs —
a discrete-event simulation kernel (:mod:`repro.sim`), hardware models
(:mod:`repro.hardware`), network fabrics (:mod:`repro.network`), a
simulated OFED verbs API (:mod:`repro.verbs`), a TCP stack with
cubic/bic/htcp congestion control (:mod:`repro.tcp`), the middleware
itself (:mod:`repro.core`), applications (:mod:`repro.apps`), analysis
helpers (:mod:`repro.analysis`) and the Table I testbeds
(:mod:`repro.testbeds`).

Quickstart::

    from repro.testbeds import roce_lan
    from repro.apps.rftp import run_rftp

    result = run_rftp(roce_lan(), total_bytes=1 << 30)
    print(f"{result.gbps:.1f} Gbps at {result.client_cpu_pct:.0f}% CPU")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
