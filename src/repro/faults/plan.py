"""The declarative description of a chaos experiment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.core.messages import CtrlType

__all__ = ["FaultPlan", "DEFAULT_DROPPABLE"]

#: Control messages that are safe to lose: every one of these is either
#: a *request the source retransmits* under its timeout/backoff budget,
#: or (DATASET_DONE_ACK) a reply whose request is retransmitted and
#: re-answered idempotently from the sink's ack ledger.  BLOCK_DONE and
#: the remaining sink→source replies are deliberately excluded — they
#: are sent exactly once per event, so losing one strands sink state
#: the protocol has no retransmission for (the session-idle GC would
#: eventually reap it, but that turns a droppable-message test into a
#: GC test).
DEFAULT_DROPPABLE: Tuple[CtrlType, ...] = (
    CtrlType.BLOCK_SIZE_REQ,
    CtrlType.CHANNELS_REQ,
    CtrlType.SESSION_REQ,
    CtrlType.MR_INFO_REQ,
    CtrlType.DATASET_DONE,
    CtrlType.DATASET_DONE_ACK,
)


@dataclass(frozen=True)
class FaultPlan:
    """What to break, how often, reproducibly.

    All probabilities are per-event (per RDMA WRITE, per control message,
    per link serialisation).  ``seed`` drives independent per-seam RNG
    streams, so two runs with the same plan produce byte-identical fault
    sequences regardless of which seams are enabled.
    """

    #: Root seed for the per-seam fault streams.
    seed: int = 0
    #: Probability an RDMA WRITE completes with a transient WC error
    #: (exercises Fig. 6's WAITING → LOADED re-send path).
    write_fault_rate: float = 0.0
    #: Probability a droppable control message is lost after posting.
    ctrl_drop_rate: float = 0.0
    #: Message types :attr:`ctrl_drop_rate` applies to.
    ctrl_droppable: Tuple[CtrlType, ...] = field(default=DEFAULT_DROPPABLE)
    #: Probability any control message is delayed before posting.
    ctrl_delay_rate: float = 0.0
    #: The injected control delay, seconds.
    ctrl_delay_seconds: float = 0.05
    #: Scheduled link outages: ``((start_s, duration_s), ...)`` — both
    #: directions of the path go down (a real flap kills the fibre).
    link_flaps: Tuple[Tuple[float, float], ...] = ()
    #: Probability one link serialisation picks up an extra delay.
    latency_spike_rate: float = 0.0
    #: The injected serialisation delay, seconds.
    latency_spike_seconds: float = 0.01
    #: Probability an RDMA WRITE lands with its payload silently
    #: tampered: the transport CRC passes, the WR completes OK, and only
    #: the end-to-end block checksum can catch it (exercises the
    #: BLOCK_NACK repair path; with repair off, a typed abort).
    payload_corrupt_rate: float = 0.0
    #: Scheduled sink-process crashes, seconds: volatile sink state dies,
    #: the written prefix / ack ledger survive (exercises SESSION_RESUME
    #: against a restarted receiver).
    sink_crashes: Tuple[float, ...] = ()
    #: Scheduled source-process crashes, seconds: every live job aborts
    #: with :class:`~repro.core.errors.EndpointCrashed` and outstanding
    #: credits are flushed (a new incarnation may then resume).
    source_crashes: Tuple[float, ...] = ()
    #: Scheduled broker-process crashes, seconds: the scheduler dies
    #: mid-run (journal survives, live sessions abort) and is restarted
    #: from a journal replay — queued files re-admit, ACTIVE files
    #: re-attach via SESSION_RESUME (exercises
    #: :meth:`~repro.sched.broker.TransferBroker.recover`).
    broker_crashes: Tuple[float, ...] = ()
    #: Scheduled data-QP kills: ``((time_s, channel_index), ...)`` — the
    #: QP drops to ERROR mid-transfer, in-flight WRs flush, and the
    #: session fails over onto the surviving channels.
    qp_kills: Tuple[Tuple[float, int], ...] = ()
    #: Probability a PING or PONG is lost after posting (exercises the
    #: adaptive heartbeat's miss accounting and the PeerDead abort).
    heartbeat_drop_rate: float = 0.0
    #: Deny every TRANSPORT_FALLBACK_REQ at the sink: a session that
    #: loses all data channels aborts with TransportFallbackFailed
    #: instead of degrading to TCP.
    fallback_deny: bool = False
    #: Probability a broker transfer attempt fails at the attempt
    #: boundary (before any traffic moves) with
    #: :class:`~repro.core.errors.InjectedAttemptFault` — the retry-storm
    #: seam: every injected failure burns a retry-budget token, so a high
    #: rate drives tenants into budget exhaustion instead of letting
    #: retries amplify the overload.
    attempt_fault_rate: float = 0.0
    #: Optional ``(start_s, end_s)`` window outside which
    #: :attr:`attempt_fault_rate` is dormant; empty means always armed.
    attempt_fault_window: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "write_fault_rate",
            "ctrl_drop_rate",
            "ctrl_delay_rate",
            "latency_spike_rate",
            "payload_corrupt_rate",
            "heartbeat_drop_rate",
            "attempt_fault_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value!r}")
        if self.ctrl_delay_seconds < 0 or self.latency_spike_seconds < 0:
            raise ValueError("injected delays must be non-negative")
        for flap in self.link_flaps:
            if len(flap) != 2:
                raise ValueError("each link flap is a (start, duration) pair")
            start, duration = flap
            if start < 0 or duration <= 0:
                raise ValueError(f"bad link flap {flap!r}")
        for name in ("sink_crashes", "source_crashes", "broker_crashes"):
            for when in getattr(self, name):
                if when < 0:
                    raise ValueError(f"{name} entry {when!r} is before t=0")
        for kill in self.qp_kills:
            if len(kill) != 2:
                raise ValueError("each qp kill is a (time, channel_index) pair")
            when, index = kill
            if when < 0 or index < 0 or index != int(index):
                raise ValueError(f"bad qp kill {kill!r}")
        if self.attempt_fault_window:
            if len(self.attempt_fault_window) != 2:
                raise ValueError(
                    "attempt_fault_window is a (start, end) pair"
                )
            start, end = self.attempt_fault_window
            if start < 0 or end <= start:
                raise ValueError(
                    f"bad attempt_fault_window {self.attempt_fault_window!r}"
                )

    @property
    def any_faults(self) -> bool:
        return bool(
            self.write_fault_rate
            or self.ctrl_drop_rate
            or self.ctrl_delay_rate
            or self.link_flaps
            or self.latency_spike_rate
            or self.payload_corrupt_rate
            or self.sink_crashes
            or self.source_crashes
            or self.broker_crashes
            or self.qp_kills
            or self.heartbeat_drop_rate
            or self.fallback_deny
            or self.attempt_fault_rate
        )
