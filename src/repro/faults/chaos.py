"""One-call chaos harness: transfer under faults, audit the wreckage.

``run_chaos`` drives a memory-to-memory RFTP transfer over a testbed with
a :class:`FaultPlan` armed, then checks the only two acceptable endings:

- the transfer **completes** — delivery must be byte-exact (every block
  exactly once, payloads intact, in order per session);
- the transfer **aborts** — the error must be a typed
  :class:`~repro.core.errors.TransferError` raised within the configured
  retry budgets, not a hang.

Either way the middleware must come out clean: all source pool blocks
free, nothing in flight, no stuck credit waiters, no parked reassembly
entries, and every sink block either free or advertised.  Any violation
is reported in :attr:`ChaosResult.leaks`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.apps.io import CollectingSink, PatternSource
from repro.core import ProtocolConfig, RdmaMiddleware, TransferOutcome
from repro.core.blocks import SinkBlockState, SourceBlockState
from repro.core.errors import TransferError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.testbeds import TESTBEDS, Testbed

__all__ = ["ChaosResult", "run_chaos"]


@dataclass
class ChaosResult:
    """Outcome and post-mortem of one chaos run."""

    testbed: str
    plan: FaultPlan
    completed: bool
    #: Typed error class name when the transfer aborted, else None.
    error: Optional[str]
    outcome: Optional[TransferOutcome]
    #: Simulated instant at which the client run settled (completed or
    #: aborted), in seconds.
    sim_time: float
    byte_exact: Optional[bool]
    #: Human-readable invariant violations; empty means a clean run.
    leaks: Tuple[str, ...]
    #: Injected-fault counters.
    write_faults: int = 0
    ctrl_drops: int = 0
    ctrl_delays: int = 0
    latency_spikes: int = 0
    flaps_fired: int = 0
    payload_corruptions: int = 0
    source_crashes_fired: int = 0
    sink_crashes_fired: int = 0
    qp_kills_fired: int = 0
    #: Recovery-path counters.
    resends: int = 0
    ctrl_retries: int = 0
    stray_source: int = 0
    stray_sink: int = 0
    sessions_reclaimed: int = 0
    duplicates: int = 0
    #: Integrity / repair / resume counters.
    checksum_mismatches: int = 0
    repairs: int = 0
    markers_sent: int = 0
    #: SESSION_RESUME attempts the harness made after typed aborts.
    resume_attempts_used: int = 0
    #: First block the final (completed) incarnation re-sent; 0 when the
    #: transfer never needed a resume.
    resumed_from: int = 0
    #: Payload bytes the data QPs actually pushed, across every
    #: incarnation, repair and re-send — the bytes-on-wire a resume is
    #: supposed to keep strictly below a full restart's.
    data_bytes_sent: int = 0
    #: Degraded-mode counters.
    fallbacks: int = 0
    fallback_blocks: int = 0
    repromotions: int = 0
    breaker_trips: int = 0
    heartbeat_drops: int = 0
    fallback_denials: int = 0

    @property
    def clean(self) -> bool:
        """Did the run end in one of the two acceptable states, leak-free?"""
        if self.leaks:
            return False
        if self.completed:
            return bool(self.byte_exact)
        return self.error is not None


def _verify_delivery(
    sink: CollectingSink,
    source: PatternSource,
    total_bytes: int,
    block_size: int,
    allow_overlap: bool = False,
) -> Tuple[bool, List[str]]:
    """Byte-exactness audit.  ``allow_overlap`` (resumed sessions): a
    block consumed both before and after a crash may appear twice in the
    delivery log, which is fine as long as both copies are identical and
    coverage is still exact."""
    problems: List[str] = []
    total_blocks = -(-total_bytes // block_size)
    by_seq = {}
    for header, payload in sink.deliveries:
        if header.seq in by_seq:
            if not allow_overlap:
                problems.append(f"block seq {header.seq} delivered twice")
            elif by_seq[header.seq] != (header, payload):
                problems.append(
                    f"block seq {header.seq} re-delivered with divergent content"
                )
        by_seq[header.seq] = (header, payload)
    if len(by_seq) != total_blocks:
        problems.append(f"delivered {len(by_seq)}/{total_blocks} blocks")
    delivered = 0
    for seq, (header, payload) in sorted(by_seq.items()):
        expected_len = min(block_size, total_bytes - seq * block_size)
        if header.length != expected_len:
            problems.append(f"seq {seq}: length {header.length} != {expected_len}")
        if payload != (source.tag, seq, expected_len):
            problems.append(f"seq {seq}: payload corrupted ({payload!r})")
        delivered += header.length
    if delivered != total_bytes:
        problems.append(f"delivered {delivered} bytes, expected {total_bytes}")
    return not problems, problems


def run_chaos(
    testbed: Union[str, Testbed],
    total_bytes: int = 256 * 1024 * 1024,
    plan: Optional[FaultPlan] = None,
    config: Optional[ProtocolConfig] = None,
    port: int = 2811,
    horizon: float = 300.0,
    resume_attempts: int = 0,
    resume_backoff: float = 1.0,
) -> ChaosResult:
    """Run one m2m transfer under ``plan`` and audit the middleware.

    ``horizon`` bounds the simulation (seconds) so a recovery bug cannot
    spin forever; hitting it is reported as a leak.  With
    ``resume_attempts > 0`` the harness reacts to a typed abort the way a
    production mover would: wait ``resume_backoff`` seconds, re-establish
    a data channel if none survived, and SESSION_RESUME from the sink's
    restart marker — so a hard mid-transfer death can still end in a
    byte-exact (overlap-tolerant) delivery.
    """
    if isinstance(testbed, str):
        testbed = TESTBEDS[testbed]()
    plan = plan or FaultPlan()
    cfg = config or ProtocolConfig()
    injector = FaultInjector(plan)
    injector.arm_network(testbed)

    source = PatternSource(testbed.src, tag="chaos")
    sink = CollectingSink(testbed.dst)
    server = RdmaMiddleware(testbed.dst, testbed.dst_dev, testbed.cm, cfg)
    server.serve(port, sink)
    client = RdmaMiddleware(testbed.src, testbed.src_dev, testbed.cm, cfg)

    holder: dict = {}

    def _run():
        link = yield client.open_link(
            testbed.dst_dev, port, cfg, injector, testbed.tcp_connection
        )
        holder["link"] = link
        injector.arm_source(link)
        sink_eng = next(iter(server.sink_engines.values()), None)
        if sink_eng is not None:
            injector.arm_sink(sink_eng)
        try:
            holder["outcome"] = yield client.transfer(
                testbed.dst_dev, port, source, total_bytes, link=link
            )
        except TransferError as exc:
            holder["error"] = exc
        attempts = 0
        while holder.get("outcome") is None and attempts < resume_attempts:
            attempts += 1
            holder["resume_attempts_used"] = attempts
            yield testbed.engine.timeout(resume_backoff)
            if link.data.alive_count == 0:
                yield client.reopen_channel(link, testbed.dst_dev, port, cfg)
            sid = holder["error"].session_id
            try:
                holder["outcome"] = yield client.resume(
                    testbed.dst_dev, port, source, total_bytes, sid, link=link
                )
                holder["error"] = None
            except TransferError as exc:
                holder["error"] = exc

    engine = testbed.engine
    proc = engine.process(_run())
    # run(until=...) pins the clock to the horizon; stamp the instant the
    # run actually settled so sim_time reports something meaningful.
    proc.add_callback(lambda _ev: holder.setdefault("settled_at", engine.now))
    engine.run(until=horizon)

    leaks: List[str] = []
    if not proc.triggered:
        leaks.append(
            f"run did not settle within {horizon}s sim horizon (hang/deadlock)"
        )

    outcome: Optional[TransferOutcome] = holder.get("outcome")
    error: Optional[TransferError] = holder.get("error")
    completed = outcome is not None

    link = holder.get("link")
    if link is not None:
        if link.pool.free_count != len(link.pool):
            leaks.append(
                f"source pool leak: {link.pool.free_count}/{len(link.pool)} free"
            )
        for blk in link.pool.blocks.values():
            if blk.state is not SourceBlockState.FREE:
                leaks.append(f"source block {blk.block_id} stuck {blk.state.value}")
        if link._inflight:
            leaks.append(f"{len(link._inflight)} WRs still in flight")
        if link.jobs:
            leaks.append(f"{len(link.jobs)} jobs never retired: {list(link.jobs)}")
        if link.ledger.waiters:
            leaks.append(f"{link.ledger.waiters} credit waiters stuck")

    sink_engine = next(iter(server.sink_engines.values()), None)
    if sink_engine is not None:
        parked = sink_engine.reassembly.sessions_with_parked()
        if parked:
            leaks.append(f"reassembly entries parked for sessions {parked}")
        if len(sink_engine._ready.items):
            leaks.append(f"{len(sink_engine._ready.items)} ready blocks unconsumed")
        if sink_engine.active_sessions():
            leaks.append(
                f"{sink_engine.active_sessions()} sink sessions never retired"
            )
        if sink_engine.pool is not None:
            free_state = waiting = 0
            for blk in sink_engine.pool.blocks.values():
                if blk.state is SinkBlockState.FREE:
                    free_state += 1
                elif blk.state is SinkBlockState.WAITING:
                    waiting += 1
                else:
                    leaks.append(
                        f"sink block {blk.block_id} stuck {blk.state.value}"
                    )
            if sink_engine.pool.free_count != free_state:
                leaks.append(
                    f"sink pool accounting: store has {sink_engine.pool.free_count},"
                    f" {free_state} blocks are FREE"
                )
            if (
                completed
                and link is not None
                and not injector.sink_crashes_fired
                and not injector.source_crashes_fired
                and link.ledger.balance != waiting
            ):
                # An endpoint crash legitimately de-synchronises the two
                # ledgers (the dead side's view is gone); only a resume
                # reconciles them, and whether one ran after the *last*
                # crash is timing-dependent — so this strict audit only
                # applies to crash-free runs.
                leaks.append(
                    f"credit imbalance: source holds {link.ledger.balance},"
                    f" sink advertises {waiting}"
                )

    if sink_engine is not None:
        # Restart-marker state must not outlive its session: completed
        # (acked) sessions have no business keeping resume anchors.
        for attr in (
            "_marker_upto",
            "_marker_pending",
            "_marker_sent",
            "_marker_interval",
            "_resume_grants",
            "_restore_grants",
            "_fallback_streams",
            "_fallback_done",
            "_fallback_resume_seq",
        ):
            stranded = set(getattr(sink_engine, attr)) & set(sink_engine._acked)
            if stranded:
                leaks.append(
                    f"restart-marker state {attr} stranded for acked"
                    f" sessions {sorted(stranded)}"
                )
        # Every injected corruption must be *detected*.  When nothing
        # raced the accounting (no crash, no GC reclaim, no stray
        # BLOCK_DONE) the counters must agree exactly; otherwise
        # byte-exactness below is the backstop.
        if (
            cfg.checksum_blocks
            and not injector.sink_crashes_fired
            and not injector.source_crashes_fired
            and not sink_engine.sessions_reclaimed
            and not sink_engine.stray_messages
            and sink_engine.checksum_mismatches != injector.payload_corruptions
        ):
            leaks.append(
                f"{injector.payload_corruptions} corruptions injected but only"
                f" {sink_engine.checksum_mismatches} detected"
            )

    byte_exact: Optional[bool] = None
    if completed:
        byte_exact, problems = _verify_delivery(
            sink,
            source,
            total_bytes,
            cfg.block_size,
            allow_overlap=holder.get("resume_attempts_used", 0) > 0
            or outcome.fallbacks > 0
            or outcome.repromotions > 0,
        )
        leaks.extend(problems)

    data_bytes_sent = 0
    if link is not None:
        data_bytes_sent = sum(qp.bytes_sent.total for qp in link._all_data_qps)

    return ChaosResult(
        testbed=testbed.name,
        plan=plan,
        completed=completed,
        error=type(error).__name__ if error is not None else None,
        outcome=outcome,
        sim_time=holder.get("settled_at", engine.now),
        byte_exact=byte_exact,
        leaks=tuple(leaks),
        write_faults=injector.write_faults,
        ctrl_drops=injector.ctrl_drops,
        ctrl_delays=injector.ctrl_delays,
        latency_spikes=injector.latency_spikes,
        flaps_fired=injector.flaps_fired,
        payload_corruptions=injector.payload_corruptions,
        source_crashes_fired=injector.source_crashes_fired,
        sink_crashes_fired=injector.sink_crashes_fired,
        qp_kills_fired=injector.qp_kills_fired,
        resends=outcome.resends if outcome else 0,
        ctrl_retries=outcome.ctrl_retries if outcome else 0,
        stray_source=link.stray_messages if link is not None else 0,
        stray_sink=sink_engine.stray_messages if sink_engine is not None else 0,
        sessions_reclaimed=(
            sink_engine.sessions_reclaimed if sink_engine is not None else 0
        ),
        duplicates=sink_engine.reassembly.duplicates if sink_engine is not None else 0,
        checksum_mismatches=(
            sink_engine.checksum_mismatches if sink_engine is not None else 0
        ),
        repairs=outcome.repairs if outcome else 0,
        markers_sent=sink_engine.markers_sent if sink_engine is not None else 0,
        resume_attempts_used=holder.get("resume_attempts_used", 0),
        resumed_from=outcome.resumed_from if outcome else 0,
        data_bytes_sent=data_bytes_sent,
        fallbacks=link.fallbacks if link is not None else 0,
        fallback_blocks=(
            sink_engine.fallback_blocks if sink_engine is not None else 0
        ),
        repromotions=link.repromotions if link is not None else 0,
        breaker_trips=link.breaker_trips if link is not None else 0,
        heartbeat_drops=injector.heartbeat_drops,
        fallback_denials=injector.fallback_denials,
    )
