"""Deterministic fault injection for the RDMA middleware.

The paper's protocol is *designed around* failure — RNR NAKs motivate
credit flow control, Figure 6 specifies the WAITING → LOADED re-send on a
failed RDMA WRITE — but a simulator that never fails anything leaves
those paths dead.  This package makes failure a first-class, reproducible
input:

- :class:`FaultPlan` — a frozen description of what to break (WC error
  rates, control-message drop/delay, link flaps, latency spikes, payload
  bit-rot, scheduled endpoint crashes and QP kills), seeded;
- :class:`FaultInjector` — hooks the plan into the existing seams
  (``verbs.qp.fault_injector``, ``core.channels`` control hook,
  ``network.link`` flap/spike hooks) using per-seam
  :class:`~repro.sim.rng.RandomStreams`, so every chaos run replays
  exactly;
- :func:`run_chaos` — one-call harness: run an RFTP transfer under a
  plan, verify byte-exact delivery or a clean typed abort, and audit the
  middleware for leaked blocks, credits, and reassembly state.
"""

from repro.faults.chaos import ChaosResult, run_chaos
from repro.faults.injector import FaultInjector
from repro.faults.plan import DEFAULT_DROPPABLE, FaultPlan

__all__ = [
    "ChaosResult",
    "DEFAULT_DROPPABLE",
    "FaultInjector",
    "FaultPlan",
    "run_chaos",
]
