"""Hooks a :class:`FaultPlan` into the simulator's injection seams."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from repro.faults.plan import FaultPlan
from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.messages import ControlMessage
    from repro.testbeds import Testbed
    from repro.verbs.wr import SendWR

__all__ = ["FaultInjector"]


class FaultInjector:
    """Seeded, per-seam fault source.

    Each seam (data plane, control plane, each network link) draws from
    its own BLAKE2b-derived stream of the plan's seed, so enabling one
    fault class never perturbs the sequence another sees — runs stay
    reproducible as plans evolve.

    Wire-up: pass the injector as ``fault_injector`` to
    :meth:`RdmaMiddleware.open_link` / ``transfer`` (arms the data QPs and
    the client control channel) and call :meth:`arm_network` on the
    testbed (arms link flaps and latency spikes).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        streams = RandomStreams(plan.seed).spawn("faults")
        self._data_rng = streams.stream("data")
        self._ctrl_rng = streams.stream("ctrl")
        self._link_rng = streams.stream("link")
        self.write_faults = 0
        self.ctrl_drops = 0
        self.ctrl_delays = 0
        self.latency_spikes = 0
        self.flaps_fired = 0

    # -- verbs.qp seam ---------------------------------------------------------------
    def data_qp_hook(self, wr: "SendWR") -> bool:
        """``qp.fault_injector`` interface: True fails this WRITE with a
        transient WC error (payload discarded, QP survives)."""
        if self.plan.write_fault_rate <= 0.0:
            return False
        if self._data_rng.random() < self.plan.write_fault_rate:
            self.write_faults += 1
            return True
        return False

    # -- core.channels seam ------------------------------------------------------------
    def ctrl_hook(self, msg: "ControlMessage") -> Union[None, str, float]:
        """``ControlChannel.fault_hook`` interface: ``"drop"``, a delay in
        seconds, or ``None`` for clean delivery."""
        if (
            self.plan.ctrl_drop_rate > 0.0
            and msg.type in self.plan.ctrl_droppable
            and self._ctrl_rng.random() < self.plan.ctrl_drop_rate
        ):
            self.ctrl_drops += 1
            return "drop"
        if (
            self.plan.ctrl_delay_rate > 0.0
            and self._ctrl_rng.random() < self.plan.ctrl_delay_rate
        ):
            self.ctrl_delays += 1
            return self.plan.ctrl_delay_seconds
        return None

    # -- network.link seam -------------------------------------------------------------
    def _spike_hook(self, nbytes: int) -> float:
        if (
            self.plan.latency_spike_rate > 0.0
            and self._link_rng.random() < self.plan.latency_spike_rate
        ):
            self.latency_spikes += 1
            return self.plan.latency_spike_seconds
        return 0.0

    def arm_network(self, testbed: "Testbed") -> None:
        """Attach latency-spike hooks to every link of the testbed's path
        and schedule the plan's link flaps (both directions at once)."""
        links = list(testbed.duplex.forward.links) + list(
            testbed.duplex.backward.links
        )
        if self.plan.latency_spike_rate > 0.0:
            for link in links:
                link.fault_hook = self._spike_hook
        engine = testbed.engine
        for start, duration in self.plan.link_flaps:

            def _flap(start=start, duration=duration):
                yield engine.timeout(start)
                self.flaps_fired += 1
                for link in links:
                    link.fail_for(duration)

            engine.process(_flap())
