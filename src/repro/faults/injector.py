"""Hooks a :class:`FaultPlan` into the simulator's injection seams."""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Optional, Union

from repro.core.messages import CtrlType, DataBlockWire
from repro.faults.plan import FaultPlan
from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.messages import ControlMessage
    from repro.core.sink_engine import SinkEngine
    from repro.core.source_link import SourceLink
    from repro.testbeds import Testbed
    from repro.verbs.wr import SendWR

__all__ = ["FaultInjector"]


class FaultInjector:
    """Seeded, per-seam fault source.

    Each seam (data plane, control plane, each network link) draws from
    its own BLAKE2b-derived stream of the plan's seed, so enabling one
    fault class never perturbs the sequence another sees — runs stay
    reproducible as plans evolve.

    Wire-up: pass the injector as ``fault_injector`` to
    :meth:`RdmaMiddleware.open_link` / ``transfer`` (arms the data QPs and
    the client control channel), call :meth:`arm_network` on the testbed
    (arms link flaps and latency spikes), and :meth:`arm_source` /
    :meth:`arm_sink` on the endpoints (arms scheduled crashes and data-QP
    kills).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        streams = RandomStreams(plan.seed).spawn("faults")
        self._data_rng = streams.stream("data")
        self._ctrl_rng = streams.stream("ctrl")
        self._link_rng = streams.stream("link")
        self._corrupt_rng = streams.stream("corrupt")
        self._hb_rng = streams.stream("hb")
        self._sched_rng = streams.stream("sched")
        self.write_faults = 0
        self.ctrl_drops = 0
        self.ctrl_delays = 0
        self.latency_spikes = 0
        self.flaps_fired = 0
        self.payload_corruptions = 0
        self.source_crashes_fired = 0
        self.sink_crashes_fired = 0
        self.broker_crashes_fired = 0
        self.qp_kills_fired = 0
        self.heartbeat_drops = 0
        self.fallback_denials = 0
        self.attempt_faults = 0

    # -- verbs.qp seam ---------------------------------------------------------------
    def data_qp_hook(self, wr: "SendWR") -> bool:
        """``qp.fault_injector`` interface: True fails this WRITE with a
        transient WC error (payload discarded, QP survives)."""
        if self.plan.write_fault_rate <= 0.0:
            return False
        if self._data_rng.random() < self.plan.write_fault_rate:
            self.write_faults += 1
            return True
        return False

    def data_corrupt_hook(self, wr: "SendWR") -> Optional[Any]:
        """``qp.corrupt_injector`` interface: return a tampered payload to
        land at the target instead of the WR's own, or None for clean
        delivery.  The WR still completes OK — the transport CRC passed —
        so only the end-to-end block checksum can detect the damage."""
        if self.plan.payload_corrupt_rate <= 0.0:
            return None
        wire = wr.payload
        if not isinstance(wire, DataBlockWire):
            return None
        if self._corrupt_rng.random() < self.plan.payload_corrupt_rate:
            self.payload_corruptions += 1
            return replace(wire, payload=("bitrot", wire.payload))
        return None

    # -- core.channels seam ------------------------------------------------------------
    def ctrl_hook(self, msg: "ControlMessage") -> Union[None, str, float]:
        """``ControlChannel.fault_hook`` interface: ``"drop"``, a delay in
        seconds, or ``None`` for clean delivery."""
        if msg.type in (CtrlType.PING, CtrlType.PONG):
            # Heartbeats draw from their own seam so enabling (or
            # sweeping) their drop rate never perturbs the ctrl stream.
            if (
                self.plan.heartbeat_drop_rate > 0.0
                and self._hb_rng.random() < self.plan.heartbeat_drop_rate
            ):
                self.heartbeat_drops += 1
                return "drop"
            return None
        if (
            self.plan.ctrl_drop_rate > 0.0
            and msg.type in self.plan.ctrl_droppable
            and self._ctrl_rng.random() < self.plan.ctrl_drop_rate
        ):
            self.ctrl_drops += 1
            return "drop"
        if (
            self.plan.ctrl_delay_rate > 0.0
            and self._ctrl_rng.random() < self.plan.ctrl_delay_rate
        ):
            self.ctrl_delays += 1
            return self.plan.ctrl_delay_seconds
        return None

    # -- network.link seam -------------------------------------------------------------
    def _spike_hook(self, nbytes: int) -> float:
        if (
            self.plan.latency_spike_rate > 0.0
            and self._link_rng.random() < self.plan.latency_spike_rate
        ):
            self.latency_spikes += 1
            return self.plan.latency_spike_seconds
        return 0.0

    def arm_network(self, testbed: "Testbed") -> None:
        """Attach latency-spike hooks to every link of the testbed's path
        and schedule the plan's link flaps (both directions at once)."""
        links = list(testbed.duplex.forward.links) + list(
            testbed.duplex.backward.links
        )
        if self.plan.latency_spike_rate > 0.0 or self.plan.link_flaps:
            # Fault-armed links must run discrete: outage/spike timing
            # interacts with wire occupancy in ways the fluid booking
            # only approximates, and chaos runs assert exact semantics.
            for link in links:
                link.use_fluid = False
        if self.plan.latency_spike_rate > 0.0:
            for link in links:
                link.fault_hook = self._spike_hook
        engine = testbed.engine
        for start, duration in self.plan.link_flaps:

            def _flap(start=start, duration=duration):
                yield engine.timeout(start)
                self.flaps_fired += 1
                for link in links:
                    link.fail_for(duration)

            engine.process(_flap())

    # -- endpoint seams ----------------------------------------------------------------
    def arm_source(self, link: "SourceLink") -> None:
        """Schedule the plan's source crashes and data-QP kills on one
        client link."""
        engine = link.engine
        for when in self.plan.source_crashes:

            def _crash(when=when):
                yield engine.timeout(when)
                self.source_crashes_fired += 1
                link.crash()

            engine.process(_crash())
        for when, index in self.plan.qp_kills:

            def _kill(when=when, index=index):
                yield engine.timeout(when)
                self.qp_kills_fired += 1
                link.kill_channel(index)

            engine.process(_kill())

    def arm_broker(self, supervisor: Any) -> None:
        """Schedule the plan's broker crashes on a scheduler supervisor
        (anything with ``.crash()``; see
        :class:`repro.sched.runner.BrokerSupervisor` — crash kills the
        current incarnation, the supervisor restarts it from the
        journal)."""
        engine = supervisor.engine
        for when in self.plan.broker_crashes:

            def _crash(when=when):
                yield engine.timeout(when)
                self.broker_crashes_fired += 1
                supervisor.crash()

            engine.process(_crash())

    def attempt_hook(self, now: float) -> bool:
        """``TransferBroker.attempt_fault_hook`` interface: True fails the
        attempt at the boundary (before any traffic) — the retry-storm
        seam that exercises retry budgets without touching the wire."""
        if self.plan.attempt_fault_rate <= 0.0:
            return False
        window = self.plan.attempt_fault_window
        if window:
            start, end = window
            if not start <= now < end:
                return False
        if self._sched_rng.random() < self.plan.attempt_fault_rate:
            self.attempt_faults += 1
            return True
        return False

    def arm_scheduler(self, supervisor_or_broker: Any) -> None:
        """Install the attempt-fault hook on a broker — or on a
        :class:`~repro.sched.runner.BrokerSupervisor`, which re-installs
        it on every recovered incarnation (a retry storm should not stop
        just because its victim crashed)."""
        if self.plan.attempt_fault_rate <= 0.0:
            return
        target = supervisor_or_broker
        target.attempt_fault_hook = self.attempt_hook
        broker = getattr(target, "broker", None)
        if broker is not None:
            broker.attempt_fault_hook = self.attempt_hook

    def _fallback_deny_hook(self) -> bool:
        """``SinkEngine.fallback_deny_hook`` interface."""
        self.fallback_denials += 1
        return True

    def arm_sink(self, sink_engine: "SinkEngine") -> None:
        """Schedule the plan's sink-process crashes and, when the plan
        denies fallbacks, install the deny hook."""
        if self.plan.fallback_deny:
            sink_engine.fallback_deny_hook = self._fallback_deny_hook
        engine = sink_engine.engine
        for when in self.plan.sink_crashes:

            def _crash(when=when):
                yield engine.timeout(when)
                self.sink_crashes_fired += 1
                sink_engine.crash()

            engine.process(_crash())
