"""Command-line interface: run transfers, sweeps, and paper figures.

Examples
--------
::

    python -m repro testbeds
    python -m repro rftp --testbed ani-wan --bytes 8G --block-size 4M --channels 4 --pool 48
    python -m repro gridftp --testbed ani-wan --bytes 8G --streams 8
    python -m repro fio --testbed roce-lan --semantics read --block-size 64K --iodepth 16
    python -m repro sweep --quick --jobs 4 --out sweep.jsonl
    python -m repro figure 10
    python -m repro ablation credits
    python -m repro chaos --testbed ani-wan --write-fault-rate 0.05 --ctrl-drop-rate 0.1
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.apps.fio import FioJob, run_fio
from repro.apps.gridftp import run_gridftp
from repro.apps.io import DiskSink
from repro.apps.rftp import run_rftp
from repro.core import ProtocolConfig
from repro.testbeds import TESTBEDS

__all__ = ["main", "parse_size"]

_UNITS = {"": 1, "K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}


def parse_size(text: str) -> int:
    """Parse '4M', '512K', '8G', '1048576' into bytes."""
    text = text.strip().upper().removesuffix("B").removesuffix("I")
    if not text:
        raise ValueError("empty size")
    unit = text[-1] if text[-1] in _UNITS and not text[-1].isdigit() else ""
    number = text[: len(text) - len(unit)]
    try:
        value = float(number)
    except ValueError:
        raise ValueError(f"cannot parse size {text!r}") from None
    result = int(value * _UNITS[unit])
    if result <= 0:
        raise ValueError(f"size must be positive, got {text!r}")
    return result


def _add_testbed_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--testbed",
        choices=sorted(TESTBEDS),
        default="roce-lan",
        help="which Table I testbed to build (default: roce-lan)",
    )
    parser.add_argument("--seed", type=int, default=0)


def _add_export_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write a JSONL metrics snapshot of every engine built by "
             "this command (one 'engine' header + one line per metric)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="attach a Tracer to every engine and write its records as JSONL",
    )
    parser.add_argument(
        "--trace-categories", metavar="CAT[,CAT...]", default=None,
        help="restrict --trace-out to these categories (default: all)",
    )


def _cmd_testbeds(args: argparse.Namespace) -> int:
    from repro.experiments import table1_testbeds

    rows = table1_testbeds.run()
    table1_testbeds.render(rows).print()
    return 0


def _cmd_rftp(args: argparse.Namespace) -> int:
    tb = TESTBEDS[args.testbed](seed=args.seed, with_disk=args.disk)
    config = ProtocolConfig(
        block_size=parse_size(args.block_size),
        num_channels=args.channels,
        source_blocks=args.pool,
        sink_blocks=args.pool,
        proactive_credits=not args.on_demand_credits,
    )
    sink = DiskSink(tb.dst, direct=not args.posix) if args.disk else None
    result = run_rftp(tb, parse_size(args.bytes), config, sink=sink)
    o = result.outcome
    print(f"{result.gbps:.2f} Gbps over {tb.name} "
          f"({100 * result.gbps / tb.bare_metal_gbps:.0f}% of bare metal)")
    print(f"client CPU {result.client_cpu_pct:.0f}%  "
          f"server CPU {result.server_cpu_pct:.0f}%")
    print(f"blocks {o.blocks}  resends {o.resends}  "
          f"credit requests {o.mr_requests}  peak credits {o.peak_credits}  "
          f"RNR NAKs {o.rnr_naks}")
    if o.fallbacks > o.repromotions:
        # The transfer finished byte-exact but ended on the degraded TCP
        # path: report it and exit non-zero so scripted callers (and the
        # scheduler's retry logic) see the degradation.
        print("warning: transfer ended degraded on the TCP fallback path "
              f"({o.fallbacks} fallbacks, {o.repromotions} repromotions)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_gridftp(args: argparse.Namespace) -> int:
    tb = TESTBEDS[args.testbed](seed=args.seed)
    result = run_gridftp(
        tb,
        parse_size(args.bytes),
        streams=args.streams,
        block_size=parse_size(args.block_size),
        cc=args.cc,
    )
    print(f"{result.gbps:.2f} Gbps over {tb.name} with {args.streams} stream(s)")
    print(f"client CPU {result.client_cpu_pct:.0f}% "
          f"(app thread {result.client_app_cpu_pct:.0f}%)  "
          f"server CPU {result.server_cpu_pct:.0f}%  "
          f"TCP losses {result.losses}")
    return 0


def _cmd_fio(args: argparse.Namespace) -> int:
    tb = TESTBEDS[args.testbed](seed=args.seed)
    result = run_fio(
        tb,
        FioJob(
            semantics=args.semantics,
            block_size=parse_size(args.block_size),
            iodepth=args.iodepth,
            total_blocks=args.blocks,
        ),
    )
    print(f"{result.gbps:.2f} Gbps  "
          f"src CPU {result.src_cpu_pct:.1f}%  dst CPU {result.dst_cpu_pct:.1f}%")
    print(f"latency us: mean {result.lat_mean_us:.1f}  "
          f"p50 {result.lat_p50_us:.1f}  p99 {result.lat_p99_us:.1f}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import (
        fig3_fig4_semantics,
        fig8_fig9_lan_ftp,
        fig10_wan_ftp,
        fig11_disk,
    )
    from repro.testbeds import infiniband_lan, roce_lan

    fig = args.number
    if fig == 3:
        points = fig3_fig4_semantics.run(roce_lan)
        fig3_fig4_semantics.render(points, "Fig. 3 — RDMA semantics, RoCE LAN").print()
    elif fig == 4:
        points = fig3_fig4_semantics.run(infiniband_lan)
        fig3_fig4_semantics.render(points, "Fig. 4 — RDMA semantics, InfiniBand LAN").print()
    elif fig == 8:
        points = fig8_fig9_lan_ftp.run(roce_lan)
        fig8_fig9_lan_ftp.render(points, "Fig. 8 — GridFTP vs RFTP, RoCE LAN").print()
    elif fig == 9:
        points = fig8_fig9_lan_ftp.run(infiniband_lan)
        fig8_fig9_lan_ftp.render(points, "Fig. 9 — GridFTP vs RFTP, InfiniBand LAN").print()
    elif fig == 10:
        fig10_wan_ftp.render(fig10_wan_ftp.run()).print()
    elif fig == 11:
        fig11_disk.render(fig11_disk.run()).print()
    else:
        print(f"no such figure: {fig} (have 3, 4, 8, 9, 10, 11)", file=sys.stderr)
        return 2
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments import ablations

    which = args.which
    if which == "credits":
        rows = ablations.run_credit_ablation()
        ablations.render_rows(rows, "Ablation — credit flow control (ANI WAN)").print()
    elif which == "qp":
        rows = ablations.run_qp_ablation()
        ablations.render_rows(rows, "Ablation — parallel data QPs (RoCE LAN)").print()
    elif which == "iodepth":
        rows = ablations.run_iodepth_sweep()
        ablations.render_rows(rows, "Ablation — I/O depth (RoCE LAN)").print()
    elif which == "recovery":
        rows = ablations.run_recovery_ablation()
        ablations.render_rows(
            rows, "Ablation — recovery overhead vs fault rate (ANI WAN)"
        ).print()
    elif which == "resume":
        rows = ablations.run_resume_ablation()
        ablations.render_rows(
            rows, "Ablation — integrity, repair, and session resume (ANI WAN)"
        ).print()
    else:  # pragma: no cover - argparse restricts choices
        return 2
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlan, run_chaos

    plan = FaultPlan(
        seed=args.seed,
        write_fault_rate=args.write_fault_rate,
        ctrl_drop_rate=args.ctrl_drop_rate,
        ctrl_delay_rate=args.ctrl_delay_rate,
        latency_spike_rate=args.latency_spike_rate,
        link_flaps=tuple(
            tuple(float(x) for x in flap.split(":", 1)) for flap in args.link_flap
        ),
        payload_corrupt_rate=args.payload_corrupt_rate,
        sink_crashes=tuple(float(x) for x in args.sink_crash),
        source_crashes=tuple(float(x) for x in args.source_crash),
        qp_kills=tuple(
            (float(kill.split(":", 1)[0]), int(kill.split(":", 1)[1]))
            for kill in args.qp_kill
        ),
        heartbeat_drop_rate=args.heartbeat_drop_rate,
        fallback_deny=args.deny_fallback,
    )
    config = None
    overrides = {}
    if args.no_repair:
        overrides["block_repair"] = False
    if args.no_fallback:
        overrides["tcp_fallback"] = False
    if args.no_repromote:
        overrides["fallback_repromote"] = False
    if overrides:
        config = ProtocolConfig(**overrides)
    result = run_chaos(
        args.testbed,
        total_bytes=parse_size(args.bytes),
        plan=plan,
        config=config,
        horizon=args.horizon,
        resume_attempts=args.resume_attempts,
        resume_backoff=args.resume_backoff,
    )
    if result.completed:
        assert result.outcome is not None
        print(f"completed in {result.sim_time:.3f}s sim "
              f"({result.outcome.gbps:.2f} Gbps), "
              f"byte-exact: {'yes' if result.byte_exact else 'NO'}")
    else:
        print(f"aborted with {result.error or 'no typed error (HANG)'} "
              f"at {result.sim_time:.3f}s sim")
    print(f"injected: {result.write_faults} WRITE faults, "
          f"{result.ctrl_drops} ctrl drops, {result.ctrl_delays} ctrl delays, "
          f"{result.latency_spikes} latency spikes, {result.flaps_fired} link flaps, "
          f"{result.payload_corruptions} payload corruptions, "
          f"{result.source_crashes_fired}+{result.sink_crashes_fired} endpoint "
          f"crashes, {result.qp_kills_fired} QP kills")
    print(f"recovered: {result.resends} block re-sends, "
          f"{result.ctrl_retries} ctrl retries, "
          f"{result.duplicates} duplicate deliveries dropped, "
          f"{result.sessions_reclaimed} sessions GC-reclaimed, "
          f"{result.stray_source}+{result.stray_sink} stray messages")
    print(f"repaired: {result.checksum_mismatches} checksum mismatches detected, "
          f"{result.repairs} NACK re-sends, {result.markers_sent} restart markers, "
          f"{result.resume_attempts_used} resume attempts "
          f"(final incarnation from block {result.resumed_from}), "
          f"{int(result.data_bytes_sent)} data bytes on the wire")
    print(f"degraded: {result.fallbacks} TCP fallbacks carrying "
          f"{result.fallback_blocks} blocks, {result.repromotions} repromotions, "
          f"{result.breaker_trips} breaker trips, "
          f"{result.heartbeat_drops} heartbeats dropped, "
          f"{result.fallback_denials} fallbacks denied")
    if result.leaks:
        print("LEAKS:")
        for leak in result.leaks:
            print(f"  - {leak}")
    print(f"verdict: {'clean' if result.clean else 'NOT CLEAN'}")
    return 0 if result.clean else 1


def _parse_tenants(text: str) -> dict:
    """Parse 'gold:3,bronze:1' into {'gold': 3.0, 'bronze': 1.0}."""
    tenants = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition(":")
        if not name:
            raise ValueError(f"bad tenant spec {part!r}")
        tenants[name] = float(weight) if weight else 1.0
    if not tenants:
        raise ValueError("no tenants parsed")
    return tenants


def _cmd_sched(args: argparse.Namespace) -> int:
    from repro.analysis.report import Table
    from repro.sched import (
        load_spec,
        overload_spec,
        run_sched,
        summarize,
        synthetic_spec,
        write_report,
    )

    overload_overrides = None
    if args.overload is not None:
        overload_overrides = json.loads(args.overload)
        if not isinstance(overload_overrides, dict):
            print("error: --overload must be a JSON object", file=sys.stderr)
            return 2

    spec = None
    if args.spec:
        spec = load_spec(args.spec)
        if overload_overrides is not None:
            spec["overload"] = {
                **(spec.get("overload") or {}), **overload_overrides,
            }
    elif args.spike is not None:
        spec = overload_spec(
            seed=args.seed,
            total_files=args.files if args.files is not None else 600,
            tenants=_parse_tenants(args.tenants),
            testbed=args.testbed,
            doors=args.doors,
            max_active=args.max_active,
            spike=args.spike,
            overload=overload_overrides,
        )
    elif args.quick or args.files is not None:
        files = args.files if args.files is not None else 1000
        spec = synthetic_spec(
            seed=args.seed,
            total_files=files,
            tenants=_parse_tenants(args.tenants),
            testbed=args.testbed,
            doors=args.doors,
            max_active=args.max_active,
        )
        if overload_overrides is not None:
            spec["overload"] = overload_overrides
    if spec is None and args.recover is None:
        print("error: need --spec, --quick, --files, --spike, or --recover",
              file=sys.stderr)
        return 2
    if spec is not None:
        if args.watchdog:
            spec["watchdog"] = True
        if args.drain_at is not None:
            spec["drain_at"] = args.drain_at
        if args.resubmit is not None:
            spec["resubmit_limit"] = args.resubmit
        if args.crash_at:
            faults = dict(spec.get("faults") or {})
            faults["broker_crashes"] = sorted(
                list(faults.get("broker_crashes", ())) + args.crash_at
            )
            spec["faults"] = faults
        if args.attempt_fault_rate is not None:
            faults = dict(spec.get("faults") or {})
            faults["attempt_fault_rate"] = args.attempt_fault_rate
            if args.attempt_fault_window is not None:
                faults["attempt_fault_window"] = args.attempt_fault_window
            spec["faults"] = faults
        if args.use_srq:
            spec["use_srq"] = True
    result = run_sched(
        spec,
        horizon=args.horizon,
        journal_path=args.journal,
        recover=args.recover,
        audit=args.audit,
        restart_delay=args.restart_delay,
    )
    summary = summarize(result.jobs, result.testbed.engine)

    table = Table(
        f"Scheduler run — {result.header['testbed']}, seed {result.header['seed']}",
        ["tenant", "jobs", "files", "finished", "failed", "canceled",
         "shed", "retries", "goodput Gbps"],
    )
    for tenant, t in summary["tenants"].items():
        table.add_row(
            tenant, str(t["jobs"]), str(t["files"]), str(t["finished"]),
            str(t["failed"]), str(t["canceled"]), str(t["shed_jobs"]),
            str(t["retries"]), f"{t['goodput_gbps']:.3f}",
        )
    table.print()
    print(f"sim time {summary['sim_time']:.3f}s  events {summary['events']}")
    if result.shed_jobs:
        hints = [j.retry_after for j in result.jobs
                 if j.shed and j.retry_after is not None]
        print(
            f"shed: {result.shed_jobs} job(s) / {result.shed_files} file(s) "
            f"load-shed with RETRY_AFTER hints "
            f"{min(hints):.2f}-{max(hints):.2f}s" if hints else
            f"shed: {result.shed_jobs} job(s) / {result.shed_files} file(s)"
        )
    # Leaks are only meaningful when every job went terminal: a run cut
    # off by --horizon (or drained mid-flight) legitimately still holds
    # broker/sink state, and the "did not finish" error below owns it.
    leaks = result.leaks if result.all_resolved else []
    if leaks:
        for leak in leaks[:20]:
            print(f"leak: {leak}", file=sys.stderr)
        print(
            f"error: {len(leaks)} quiescence leak(s) after the run",
            file=sys.stderr,
        )
    if result.recoveries or result.header.get("recovered"):
        resumed = sum(
            1 for j in result.jobs for t in j.files if t.resumed_from > 0
        )
        print(
            f"recovered: {result.recoveries} broker restart(s), "
            f"{resumed} session(s) resumed, "
            f"{result.recovered_suffix_bytes} suffix byte(s) moved "
            f"post-recovery"
        )
    if result.audit_ok is not None:
        if result.audit_ok:
            print(
                f"audit: byte-exact ({result.overlap_bytes} identical "
                f"overlap byte(s) across resumes)"
            )
        else:
            for problem in result.audit_problems[:20]:
                print(f"audit: {problem}", file=sys.stderr)
            print(
                f"error: delivery audit failed "
                f"({len(result.audit_problems)} problem(s))",
                file=sys.stderr,
            )
    if args.report:
        write_report(args.report, result.jobs, result.testbed.engine,
                     result.header)
        print(f"wrote {args.report}")
    if result.audit_ok is False:
        return 1
    if leaks:
        return 1
    if not result.all_resolved:
        # Shed jobs are *resolved*: rejected cooperatively, reported
        # with a RETRY_AFTER hint.  Only unfinished non-shed jobs fail
        # the run.
        bad = len(result.unresolved)
        if result.drained:
            print(
                f"drained: {bad} job(s) left for a later --recover "
                f"(checkpoint written)"
            )
            return 0
        print(f"error: {bad} job(s) did not finish", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import copy

    from repro.sweep import QUICK_SPEC, load_spec, run_sweep, write_jsonl

    if args.spec:
        spec = load_spec(args.spec)
    elif args.quick:
        spec = copy.deepcopy(QUICK_SPEC)
    else:
        print("error: need --spec or --quick", file=sys.stderr)
        return 2
    records = run_sweep(spec, jobs=args.jobs)
    if args.out:
        with open(args.out, "w") as fh:
            write_jsonl(spec, records, fh)
        print(f"wrote {len(records)} point(s) -> {args.out}", file=sys.stderr)
    else:
        write_jsonl(spec, records, sys.stdout)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.report import Table, format_gbps
    from repro.obs.bench import bench_filename, run_bench, write_bench
    from repro.obs.compare import compare_files

    mode = "quick" if args.quick else "full"

    def progress(name: str, result: dict) -> None:
        print(f"  {name}: done ({result['events']} events)", file=sys.stderr)

    doc = run_bench(mode, only=args.only or None, progress=progress)
    out = args.out or bench_filename(doc["date"])
    write_bench(doc, out)

    table = Table(
        f"Benchmark ({mode} mode, {doc['date']})",
        ["case", "Gbps", "p50 us", "p99 us", "events/s", "sim s"],
    )
    for name, r in doc["results"].items():
        table.add_row(
            name,
            format_gbps(r["gbps"]),
            format_gbps(r["p50_us"]),
            format_gbps(r["p99_us"]),
            f"{r['events_per_sec']:.0f}" if r["events_per_sec"] else "—",
            f"{r['sim_time']:.3f}",
        )
    table.print()
    print(f"\nwrote {out}")

    if args.baseline:
        cmp = compare_files(args.baseline, out, tolerance=args.tolerance)
        print()
        print(cmp.report())
        return 0 if cmp.ok else 1
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.obs.compare import compare_files

    cmp = compare_files(
        args.baseline, args.current,
        tolerance=args.tolerance, cases=args.case or None,
    )
    print(cmp.report())
    return 0 if cmp.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SC 2012 RDMA middleware reproduction — simulated testbed runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("testbeds", help="print Table I").set_defaults(func=_cmd_testbeds)

    p = sub.add_parser("rftp", help="run an RFTP transfer")
    _add_testbed_arg(p)
    p.add_argument("--bytes", default="1G", help="dataset size (e.g. 8G)")
    p.add_argument("--block-size", default="4M")
    p.add_argument("--channels", type=int, default=4)
    p.add_argument("--pool", type=int, default=32, help="source/sink block pool size")
    p.add_argument("--disk", action="store_true", help="write to the RAID sink")
    p.add_argument("--posix", action="store_true", help="POSIX I/O instead of direct")
    p.add_argument(
        "--on-demand-credits",
        action="store_true",
        help="ablation: disable proactive credit feedback",
    )
    _add_export_args(p)
    p.set_defaults(func=_cmd_rftp)

    p = sub.add_parser("gridftp", help="run the GridFTP baseline")
    _add_testbed_arg(p)
    p.add_argument("--bytes", default="1G")
    p.add_argument("--block-size", default="1M")
    p.add_argument("--streams", type=int, default=1)
    p.add_argument("--cc", default=None, help="override congestion control")
    _add_export_args(p)
    p.set_defaults(func=_cmd_gridftp)

    p = sub.add_parser("fio", help="run the RDMA I/O engine")
    _add_testbed_arg(p)
    p.add_argument("--semantics", choices=("write", "read", "send"), default="write")
    p.add_argument("--block-size", default="128K")
    p.add_argument("--iodepth", type=int, default=16)
    p.add_argument("--blocks", type=int, default=2000)
    _add_export_args(p)
    p.set_defaults(func=_cmd_fio)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", type=int, choices=(3, 4, 8, 9, 10, 11))
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser("ablation", help="run a design-choice ablation")
    p.add_argument("which", choices=("credits", "qp", "iodepth", "recovery", "resume"))
    _add_export_args(p)
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser(
        "chaos", help="run a transfer under deterministic fault injection"
    )
    _add_testbed_arg(p)
    p.add_argument("--bytes", default="256M", help="dataset size (e.g. 256M)")
    p.add_argument("--write-fault-rate", type=float, default=0.0,
                   help="probability an RDMA WRITE fails transiently")
    p.add_argument("--ctrl-drop-rate", type=float, default=0.0,
                   help="probability a droppable control message is lost")
    p.add_argument("--ctrl-delay-rate", type=float, default=0.0,
                   help="probability a control message is delayed")
    p.add_argument("--latency-spike-rate", type=float, default=0.0,
                   help="probability a link serialisation picks up a spike")
    p.add_argument("--link-flap", action="append", default=[],
                   metavar="START:DURATION",
                   help="schedule a link outage (seconds); repeatable")
    p.add_argument("--payload-corrupt-rate", type=float, default=0.0,
                   help="probability an RDMA WRITE lands silently corrupted")
    p.add_argument("--sink-crash", action="append", default=[], metavar="T",
                   help="crash the sink process at sim-time T; repeatable")
    p.add_argument("--source-crash", action="append", default=[], metavar="T",
                   help="crash the source process at sim-time T; repeatable")
    p.add_argument("--qp-kill", action="append", default=[], metavar="T:INDEX",
                   help="kill data channel INDEX at sim-time T; repeatable")
    p.add_argument("--resume-attempts", type=int, default=0,
                   help="SESSION_RESUME retries after a typed abort")
    p.add_argument("--resume-backoff", type=float, default=1.0,
                   help="seconds to wait before each resume attempt")
    p.add_argument("--no-repair", action="store_true",
                   help="ablation: disable checksum-NACK block repair")
    p.add_argument("--heartbeat-drop-rate", type=float, default=0.0,
                   help="probability a PING/PONG is lost after posting")
    p.add_argument("--deny-fallback", action="store_true",
                   help="sink denies every TRANSPORT_FALLBACK_REQ")
    p.add_argument("--no-fallback", action="store_true",
                   help="ablation: source never attempts the TCP fallback")
    p.add_argument("--no-repromote", action="store_true",
                   help="ablation: a degraded session stays on TCP")
    p.add_argument("--horizon", type=float, default=300.0,
                   help="sim-time bound for hang detection")
    _add_export_args(p)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "sched", help="run a multi-tenant job mix through the transfer broker"
    )
    p.add_argument("--spec", metavar="PATH", default=None,
                   help="job-mix spec file (JSON; see repro.sched.spec)")
    p.add_argument("--quick", action="store_true",
                   help="synthetic 1000-file, 2-tenant (gold:3, bronze:1) "
                        "mix on the ANI WAN")
    p.add_argument("--files", type=int, default=None,
                   help="synthetic mix size (overrides --quick's 1000)")
    p.add_argument("--tenants", default="gold:3,bronze:1",
                   metavar="NAME:WEIGHT[,NAME:WEIGHT...]",
                   help="synthetic mix tenants (default gold:3,bronze:1)")
    p.add_argument("--testbed", choices=sorted(TESTBEDS), default="ani-wan",
                   help="testbed for the synthetic mix (default: ani-wan)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--doors", type=int, default=2,
                   help="connection sets to the server (failover alternatives)")
    p.add_argument("--max-active", type=int, default=8,
                   help="broker worker-pool size (concurrent sessions)")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="write the JSONL job report here")
    p.add_argument("--horizon", type=float, default=None,
                   help="sim-time bound (default: run to completion)")
    p.add_argument("--watchdog", action="store_true",
                   help="enable the per-file progress watchdog (kills "
                        "attempts with no delivered-byte progress within a "
                        "multiple of the adaptive RTO)")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="mirror the broker's write-ahead journal to this "
                        "file (flushed JSON lines)")
    p.add_argument("--crash-at", type=float, action="append", default=[],
                   metavar="SECONDS",
                   help="crash the broker at this sim time and restart it "
                        "from the journal; repeatable")
    p.add_argument("--recover", metavar="PATH", default=None,
                   help="with --crash-at: round-trip each restart's journal "
                        "through this file; with no spec/--quick/--files: "
                        "restart a previous run from this journal")
    p.add_argument("--restart-delay", type=float, default=0.5,
                   help="seconds between a broker crash and its restart "
                        "(default 0.5)")
    p.add_argument("--drain-at", type=float, default=None, metavar="SECONDS",
                   help="gracefully drain the broker at this sim time: stop "
                        "admissions, finish in-flight work, checkpoint the "
                        "journal")
    p.add_argument("--audit", action="store_true",
                   help="verify byte-exact delivery per finished file "
                        "(pattern source + collecting sink; exits 1 on any "
                        "lost file, divergent duplicate, or corrupt block)")
    p.add_argument("--spike", type=float, default=None, metavar="FACTOR",
                   help="synthetic OVERLOAD mix instead of --quick's: "
                        "open-loop arrivals spike to FACTOR× the base rate "
                        "with backpressure/shedding armed (see "
                        "repro.sched.spec.overload_spec)")
    p.add_argument("--overload", metavar="JSON", default=None,
                   help="overload-control overrides for --spike (JSON "
                        "object of repro.sched.overload.OverloadConfig "
                        "keys), or a full config to arm on a --spec run")
    p.add_argument("--resubmit", type=int, default=None, metavar="N",
                   help="times the client resubmits a shed job after its "
                        "RETRY_AFTER hint (default: spec's resubmit_limit)")
    p.add_argument("--attempt-fault-rate", type=float, default=None,
                   metavar="P",
                   help="retry-storm chaos: probability each broker attempt "
                        "fails at the attempt boundary (burns retry budget, "
                        "moves no bytes)")
    p.add_argument("--attempt-fault-window", type=float, nargs=2,
                   default=None, metavar=("START", "END"),
                   help="sim-time window outside which --attempt-fault-rate "
                        "is dormant")
    p.add_argument("--use-srq", action="store_true",
                   help="connection-scaling mode: sessions lease shared "
                        "data channels from one per-host QP pool (SRQ "
                        "receive side, eager SEND path for small blocks) "
                        "instead of opening dedicated QPs per door")
    _add_export_args(p)
    p.set_defaults(func=_cmd_sched)

    p = sub.add_parser(
        "sweep", help="run a parameter sweep sharded across worker processes"
    )
    p.add_argument("--spec", metavar="PATH", default=None,
                   help="sweep spec file (JSON; see repro.sweep)")
    p.add_argument("--quick", action="store_true",
                   help="built-in 4-point RFTP sweep on the ANI WAN")
    p.add_argument("--jobs", type=int, default=0,
                   help="worker processes (<=1 runs inline; default inline)")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write merged JSONL here (default: stdout)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "bench", help="run the deterministic benchmark suite, write BENCH_<date>.json"
    )
    p.add_argument("--quick", action="store_true",
                   help="scaled-down sizes for CI (the committed baseline's mode)")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="output path (default: BENCH_<date>.json in the cwd)")
    p.add_argument("--only", action="append", default=[], metavar="CASE",
                   help="run only this case; repeatable")
    p.add_argument("--baseline", metavar="PATH", default=None,
                   help="compare against this BENCH_*.json and gate on regression")
    p.add_argument("--tolerance", type=float, default=0.10,
                   help="relative regression tolerance for --baseline (default 0.10)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "bench-compare", help="gate one BENCH_*.json against a baseline"
    )
    p.add_argument("baseline", help="baseline BENCH_*.json")
    p.add_argument("current", help="current BENCH_*.json")
    p.add_argument("--tolerance", type=float, default=0.10,
                   help="relative regression tolerance (default 0.10)")
    p.add_argument("--case", action="append", default=[],
                   help="gate only this baseline case (repeatable); "
                        "other cases are neither gated nor missing")
    p.set_defaults(func=_cmd_bench_compare)

    return parser


def _run_with_exports(args: argparse.Namespace) -> int:
    """Dispatch ``args.func`` under engine collection and export the results.

    Collection is process-wide: every :class:`~repro.sim.engine.Engine`
    built while the command runs is captured (ablations build many), so
    multi-run commands export every run, indexed by construction order.
    """
    from repro.obs import runtime
    from repro.obs.export import write_metrics_jsonl, write_trace_jsonl

    if args.trace_out is not None:
        from repro.sim.trace import Tracer

        categories = None
        if args.trace_categories:
            categories = {
                c.strip() for c in args.trace_categories.split(",") if c.strip()
            }
        runtime.install_tracer_factory(lambda: Tracer(categories=categories))
    runtime.start_collection()
    try:
        rc = args.func(args)
    finally:
        # Exports are written even when the command raised — a failed
        # run's metrics/trace are exactly what the caller wants to see.
        try:
            engines = runtime.collected_engines()
            if args.metrics_out is not None:
                n = write_metrics_jsonl(args.metrics_out, engines)
                print(f"metrics: {n} records over {len(engines)} engine run(s) "
                      f"-> {args.metrics_out}", file=sys.stderr)
            if args.trace_out is not None:
                n = write_trace_jsonl(args.trace_out, engines)
                print(f"trace: {n} records over {len(engines)} engine run(s) "
                      f"-> {args.trace_out}", file=sys.stderr)
        finally:
            runtime.stop_collection()
            runtime.install_tracer_factory(None)
    return rc


def main(argv: Optional[List[str]] = None) -> int:
    from repro.core.errors import TransferError

    args = build_parser().parse_args(argv)
    try:
        if getattr(args, "metrics_out", None) is not None or getattr(
            args, "trace_out", None
        ) is not None:
            return _run_with_exports(args)
        return args.func(args)
    except TransferError as exc:
        # Every subcommand exits non-zero on a typed transfer failure —
        # scripted callers and CI gate on the exit code, not the text.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
