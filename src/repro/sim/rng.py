"""Deterministic named random streams.

Every stochastic component in the simulator pulls randomness from a named
child stream of one root seed, so experiments are exactly reproducible and
adding a new random consumer never perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, deterministically-seeded RNG streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The child seed is derived from ``(root seed, name)`` with BLAKE2b,
        so streams are independent of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.blake2b(
                f"{self.seed}:{name}".encode(), digest_size=8
            ).digest()
            gen = np.random.default_rng(int.from_bytes(digest, "little"))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory (e.g. per-host) with an independent seed."""
        digest = hashlib.blake2b(
            f"{self.seed}/{name}".encode(), digest_size=8
        ).digest()
        return RandomStreams(int.from_bytes(digest, "little"))
