"""The simulation engine: a deterministic event-heap scheduler.

Time is a ``float`` in **seconds**.  Events scheduled for the same instant
are processed in insertion order, which makes every simulation fully
deterministic regardless of heap internals.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from repro.obs import runtime as _obs_runtime
from repro.obs.registry import MetricsRegistry
from repro.sim.events import Event, StopEngine, Timeout
from repro.sim.process import Process

__all__ = ["Engine", "SimulationError", "StopEngine"]


class SimulationError(Exception):
    """Raised for kernel-level errors (unhandled event failures, etc.)."""


class Engine:
    """Deterministic discrete-event simulation engine.

    The engine owns the clock and the event queue.  User code creates
    processes with :meth:`process` and builds delays/events with
    :meth:`timeout` / :meth:`event`; everything else in the library layers
    on top of these primitives.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._eid: int = 0
        self._stopped = False
        #: Registry every instrumented component on this engine hangs
        #: its counters/gauges/histograms off.
        self.metrics = MetricsRegistry()
        #: Events popped by :meth:`step` — the denominator of the
        #: engine-throughput (events/sec) benchmark metric.
        self.events_processed: int = 0
        #: Optional :class:`repro.sim.trace.Tracer`; instrumented
        #: components emit records when this is set.  The CLI's
        #: ``--trace-out`` installs a factory that seeds this.
        self.tracer = _obs_runtime.make_tracer()
        _obs_runtime.track_engine(self)

    def trace(self, category: str, message: str, **fields) -> None:
        """Emit a trace record if a tracer is attached (cheap when not)."""
        if self.tracer is not None:
            self.tracer.emit(self._now, category, message, **fields)

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event` bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator function invocation."""
        return Process(self, generator)

    # -- scheduling internals ------------------------------------------------
    def _push(self, event: Event, delay: float = 0.0) -> None:
        """Queue a triggered event for processing after ``delay`` seconds."""
        self._eid += 1
        heapq.heappush(self._heap, (self._now + delay, self._eid, event))

    # -- execution ------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        # ``Timeout`` events carry their value from construction; plain
        # events were triggered via succeed()/fail().
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise SimulationError(
                f"unhandled failure of {event!r}"
            ) from exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        When ``until`` is given the clock is left exactly at ``until`` even
        if the next event lies beyond it, which makes interval-based
        measurement code simple and exact.
        """
        if until is not None and until < self._now:
            raise ValueError(
                f"until ({until!r}) must not be in the past (now={self._now!r})"
            )
        try:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    self._now = until
                    return
                self.step()
        except StopEngine:
            return
        if until is not None:
            self._now = until

    def stop(self) -> None:
        """Stop the current :meth:`run` call after the present event."""
        raise StopEngine()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self._now:.9f} queued={len(self._heap)}>"
