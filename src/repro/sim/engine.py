"""The simulation engine: a deterministic event scheduler.

Time is a ``float`` in **seconds**.  Events scheduled for the same instant
are processed in insertion order, which makes every simulation fully
deterministic regardless of queue internals.

Two queues back the scheduler:

* a binary heap for immediate triggers and long/irregular events, and
* a hashed timer wheel for short-horizon timers (heartbeats, adaptive
  RTOs, watchdogs) — the timers that dominate after adaptive failure
  detection and that are usually cancelled before they fire.

Both order strictly by ``(time, insertion id)`` with one global id
counter, so the merged dispatch order is bit-identical to a single heap;
``Engine(use_wheel=False)`` forces the single-heap path and must produce
exactly the same simulation (the determinism tests assert this).
Cancelled timers stay queued as tombstones and are discarded without
running callbacks when their entry surfaces; tombstones still advance the
clock and count as processed events, so ``sim_time`` and the
``events_processed`` determinism anchor do not depend on how many timers
a run cancels.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import Any, Generator, List, Optional, Tuple

from repro.obs import runtime as _obs_runtime
from repro.obs.registry import MetricsRegistry
from repro.sim.events import Event, StopEngine, Timeout, TimeoutAt
from repro.sim.process import Process

__all__ = ["Engine", "SimulationError", "StopEngine"]

_INF = float("inf")


class SimulationError(Exception):
    """Raised for kernel-level errors (unhandled event failures, etc.)."""


class Engine:
    """Deterministic discrete-event simulation engine.

    The engine owns the clock and the event queues.  User code creates
    processes with :meth:`process` and builds delays/events with
    :meth:`timeout` / :meth:`event`; everything else in the library layers
    on top of these primitives.
    """

    #: Wheel geometry: 2048 slots of 64 µs cover a ~131 ms horizon —
    #: generous for LAN RTOs and WAN heartbeats alike.  Timers beyond the
    #: horizon (or relative to a stale cursor) fall back to the heap;
    #: placement never affects dispatch order, only constant factors.
    WHEEL_TICK = 64e-6
    WHEEL_SLOTS = 2048

    def __init__(self, use_wheel: bool = True, use_fluid: bool = True) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._eid: int = 0
        self._stopped = False
        #: Master switch for the fluid fast-forward paths.  When set,
        #: FIFO resources grant immediately-satisfiable requests without
        #: a queue round trip, and steady-state pipelines (links, DMA,
        #: WQE processing, CPU chunks) book completions analytically as
        #: absolute-deadline timers instead of request/hold/release event
        #: chains.  Simulation *results* (clock readings, byte counts,
        #: metric values) are bit-identical; only the number of kernel
        #: events differs.  ``Engine(use_fluid=False)`` is the escape
        #: hatch that forces every seam back to discrete events.
        self.use_fluid = use_fluid
        # -- timer wheel state --
        self._use_wheel = use_wheel
        self._wheel_tick: float = self.WHEEL_TICK
        self._wheel_nslots: int = self.WHEEL_SLOTS
        #: Slot lists are created on demand so an engine that never uses
        #: the wheel pays nothing for it.
        self._wheel: List[Optional[List[Tuple[float, int, Event]]]] = (
            [None] * self.WHEEL_SLOTS if use_wheel else []
        )
        self._wheel_count = 0
        #: Absolute index of the next undrained slot.  Every entry still
        #: parked in the wheel is due at or after ``cursor * tick``.
        self._wheel_cursor = 0
        #: Sorted absolute indices of slots with parked entries, so the
        #: drain can jump over empty stretches instead of stepping the
        #: cursor slot by slot (sparse-timer workloads park entries
        #: thousands of empty slots apart).
        self._wheel_occupied: List[int] = []
        #: Entries drained from the wheel, sorted by ``(time, eid)``;
        #: merged against the heap head at dispatch.  ``_rhead`` is the
        #: index of the first live entry — dispatch consumes by advancing
        #: the cursor (O(1)) instead of ``pop(0)`` (O(n)), and the dead
        #: prefix is compacted away once it dominates the list.
        self._ready: List[Tuple[float, int, Event]] = []
        self._rhead: int = 0
        #: Registry every instrumented component on this engine hangs
        #: its counters/gauges/histograms off.
        self.metrics = MetricsRegistry()
        #: Events popped by the dispatch loop — the denominator of the
        #: engine-throughput (events/sec) benchmark metric.  Includes
        #: cancelled-timer tombstones, so the count is a determinism
        #: anchor independent of cancellation behaviour.
        self.events_processed: int = 0
        #: Optional :class:`repro.sim.trace.Tracer`; instrumented
        #: components emit records when this is set.  The CLI's
        #: ``--trace-out`` installs a factory that seeds this.
        self.tracer = _obs_runtime.make_tracer()
        _obs_runtime.track_engine(self)

    def trace(self, category: str, message: str, **fields) -> None:
        """Emit a trace record if a tracer is attached (cheap when not)."""
        if self.tracer is not None:
            self.tracer.emit(self._now, category, message, **fields)

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event` bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> TimeoutAt:
        """Create an event that fires at the absolute instant ``when``.

        The fluid fast-forward paths compute completion times
        analytically; ``now + (when - now)`` is not ``when`` in floating
        point, so an absolute-deadline timer is what keeps those
        completions bit-identical to the discrete chains they replace.
        """
        return TimeoutAt(self, when, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator function invocation."""
        return Process(self, generator)

    # -- scheduling internals ------------------------------------------------
    def _push(self, event: Event, delay: float = 0.0) -> None:
        """Queue a triggered event for processing after ``delay`` seconds."""
        self._eid += 1
        heapq.heappush(self._heap, (self._now + delay, self._eid, event))

    def _push_timer(self, event: Event, delay: float) -> None:
        """Queue a timer, preferring the wheel for short horizons.

        The global ``eid`` counter is shared with :meth:`_push`, so a
        timer's position in the total ``(time, eid)`` order is the same
        whether it lands in the wheel or the heap.
        """
        self._schedule_timer(event, self._now + delay)

    def _push_timer_at(self, event: Event, when: float) -> None:
        """Queue a timer due at the absolute instant ``when``."""
        self._schedule_timer(event, when)

    def _schedule_timer(self, event: Event, when: float) -> None:
        self._eid += 1
        if self._use_wheel:
            tick = self._wheel_tick
            if self._wheel_count == 0:
                # Nothing parked: snap the cursor forward so an idle
                # stretch doesn't leave new timers out of wheel range.
                cursor = int(self._now / tick)
                if cursor > self._wheel_cursor:
                    self._wheel_cursor = cursor
            slot = int(when / tick)
            offset = slot - self._wheel_cursor
            if offset < 0:
                # Due inside the already-drained window: straight to the
                # sorted ready list (past the dead prefix).
                insort(self._ready, (when, self._eid, event), self._rhead)
                return
            if offset < self._wheel_nslots:
                index = slot % self._wheel_nslots
                bucket = self._wheel[index]
                if bucket is None:
                    bucket = self._wheel[index] = []
                if not bucket:
                    insort(self._wheel_occupied, slot)
                bucket.append((when, self._eid, event))
                self._wheel_count += 1
                return
        heapq.heappush(self._heap, (when, self._eid, event))

    def _drain_wheel(self) -> None:
        """Advance the wheel cursor until the earliest possibly-parked
        timer can no longer precede the known queue heads.

        Draining only moves entries into the sorted ready list — it runs
        no callbacks and reads no clocks, so it is safe from ``peek`` as
        well as from the dispatch loop.
        """
        heap = self._heap
        ready = self._ready
        tick = self._wheel_tick
        nslots = self._wheel_nslots
        wheel = self._wheel
        occupied = self._wheel_occupied
        while occupied:
            head = heap[0][0] if heap else None
            if len(ready) > self._rhead and (head is None or ready[self._rhead][0] < head):
                head = ready[self._rhead][0]
            first = occupied[0]
            # Entries in slot ``first`` are due at >= first * tick; a
            # strictly earlier head cannot be outrun, ties must drain so
            # the eid order decides.
            if head is not None and head < first * tick:
                # Jump the cursor over the empty stretch (never past an
                # occupied slot) so insert offsets stay anchored near now.
                cursor = int(head / tick)
                if cursor > first:
                    cursor = first
                if cursor > self._wheel_cursor:
                    self._wheel_cursor = cursor
                return
            bucket = wheel[first % nslots]
            self._wheel_cursor = first + 1
            del occupied[0]
            self._wheel_count -= len(bucket)
            # Buckets are appended in push order, so whens inside one
            # slot may interleave; sort the bucket (small) and merge it
            # instead of re-sorting the whole ready list per slot.
            if len(bucket) > 1:
                bucket.sort()
            if not ready or ready[-1] <= bucket[0]:
                # The common (in fact, provably only) case: everything
                # already in ready is from an earlier slot or the drained
                # window, hence strictly before this slot's boundary.
                ready.extend(bucket)
            else:
                i = bisect_left(ready, bucket[0], self._rhead)
                tail = ready[i:]
                del ready[i:]
                ready.extend(heapq.merge(tail, bucket))
            bucket.clear()

    # -- execution ------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        if self._wheel_count:
            self._drain_wheel()
        rhead = self._rhead
        ready_t = self._ready[rhead][0] if len(self._ready) > rhead else _INF
        heap_t = self._heap[0][0] if self._heap else _INF
        return ready_t if ready_t < heap_t else heap_t

    def _take_ready(self) -> Tuple[float, int, Event]:
        """Consume the ready head by advancing the cursor (O(1) pop)."""
        ready = self._ready
        rhead = self._rhead
        entry = ready[rhead]
        rhead += 1
        if rhead >= 512 and rhead * 2 >= len(ready):
            del ready[:rhead]
            rhead = 0
        self._rhead = rhead
        return entry

    def _pop_next(self) -> Tuple[float, int, Event]:
        """Remove and return the globally next ``(time, eid, event)``."""
        if self._wheel_count:
            self._drain_wheel()
        ready = self._ready
        heap = self._heap
        if len(ready) > self._rhead:
            if heap and heap[0] < ready[self._rhead]:
                return heapq.heappop(heap)
            return self._take_ready()
        if heap:
            return heapq.heappop(heap)
        raise SimulationError("step() on an empty event queue")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        when, _, event = self._pop_next()
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        # ``Timeout`` events carry their value from construction; plain
        # events were triggered via succeed()/fail().
        assert callbacks is not None
        if event._cancelled:
            return
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise SimulationError(
                f"unhandled failure of {event!r}"
            ) from exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        When ``until`` is given the clock is left exactly at ``until`` even
        if the next event lies beyond it, which makes interval-based
        measurement code simple and exact.

        This is the hot loop: queue references, the heap primitives, and
        the ``until`` bound are hoisted into locals, and the next entry is
        selected by direct head comparison so the common dispatch costs no
        method calls beyond the event callbacks themselves.
        """
        if until is not None and until < self._now:
            raise ValueError(
                f"until ({until!r}) must not be in the past (now={self._now!r})"
            )
        limit = _INF if until is None else until
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        processed = 0
        try:
            while True:
                if self._wheel_count:
                    self._drain_wheel()
                # -- select the (time, eid)-least entry across queues --
                rhead = self._rhead
                if len(ready) > rhead:
                    rentry = ready[rhead]
                    if heap and heap[0] < rentry:
                        entry = heappop(heap)
                    else:
                        rhead += 1
                        if rhead >= 512 and rhead * 2 >= len(ready):
                            del ready[:rhead]
                            rhead = 0
                        self._rhead = rhead
                        entry = rentry
                elif heap:
                    entry = heappop(heap)
                else:
                    if rhead:
                        del ready[:]
                        self._rhead = 0
                    break
                when = entry[0]
                if when > limit:
                    # Put the entry back (rare: at most once per run call).
                    heapq.heappush(heap, entry)
                    self._now = until
                    return
                event = entry[2]
                self._now = when
                processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                if event._cancelled:
                    continue
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    exc = event._value
                    raise SimulationError(
                        f"unhandled failure of {event!r}"
                    ) from exc
        except StopEngine:
            return
        finally:
            self.events_processed += processed
        if until is not None:
            self._now = until

    def stop(self) -> None:
        """Stop the current :meth:`run` call after the present event."""
        raise StopEngine()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        queued = (
            len(self._heap)
            + (len(self._ready) - self._rhead)
            + self._wheel_count
        )
        return f"<Engine t={self._now:.9f} queued={queued}>"
