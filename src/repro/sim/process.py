"""Generator-based simulation processes.

A process wraps a Python generator.  Each ``yield`` must produce an
:class:`~repro.sim.events.Event`; the process suspends until that event is
processed and then resumes with the event's value (or has the event's
exception thrown into it on failure).  A process is itself an event that
triggers when the generator returns (value = the ``return`` value) or
raises (failure).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.sim.events import Event, StopEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["Process", "ProcessKilled"]


class ProcessKilled(Exception):
    """Thrown into a generator when its process is killed."""


class Process(Event):
    """A running simulation process (also awaitable as an event)."""

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        engine: "Engine",
        generator: Generator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(engine)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume on the next engine step at the current time.
        # Deliberately NOT run synchronously under fluid mode: the body
        # must observe whatever the spawner does *after* the spawn call
        # (the broker mutates shared state post-spawn), so eager start
        # is the one fast-forward that would change semantics.
        start = Event(engine)
        start._ok = True
        start._value = None
        start.callbacks.append(self._resume)
        engine._push(start)
        self._waiting_on: Optional[Event] = start

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def kill(self, reason: str = "killed") -> None:
        """Forcibly terminate the process.

        :class:`ProcessKilled` is thrown into the generator at its current
        yield point; unless caught, the process fails *defused* (killing is
        deliberate, so it is not an unhandled error).
        """
        if self.triggered:
            return
        waiting = self._waiting_on
        if waiting is not None and not waiting.processed:
            # Detach from whatever we were waiting on.
            if waiting.callbacks is not None and self._resume in waiting.callbacks:
                waiting.callbacks.remove(self._resume)
        self._waiting_on = None
        try:
            self._generator.throw(ProcessKilled(reason))
        except (ProcessKilled, StopIteration):
            self.defuse()
            self.fail(ProcessKilled(reason))
        except BaseException as exc:
            self.defuse()
            self.fail(exc)
        else:
            # Generator swallowed the kill and yielded again: disallow.
            self._generator.close()
            self.defuse()
            self.fail(ProcessKilled(reason))

    # -- internals -----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        gen = self._generator
        while True:
            try:
                if event._ok:
                    target = gen.send(event._value)
                else:
                    event.defuse()
                    target = gen.throw(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except StopEngine:
                # engine.stop(): end this process cleanly and let the
                # signal propagate to Engine.run().
                self.succeed(None)
                raise
            except BaseException as exc:
                self.fail(exc)
                return
            if not isinstance(target, Event):
                exc = TypeError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Event instances"
                )
                gen.close()
                self.fail(exc)
                return
            callbacks = target.callbacks
            if callbacks is None:
                # Already processed: continue synchronously with its outcome.
                event = target
                continue
            callbacks.append(self._resume)
            self._waiting_on = target
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"
