"""Opt-in structured tracing for simulations.

Attach a :class:`Tracer` to an engine (``engine.tracer = Tracer(...)``)
and instrumented components (queue pairs, control channels, the credit
ledger, the TCP bottleneck) emit timestamped records.  Tracing is off by
default and costs one attribute check per event when disabled.

Example
-------
>>> from repro.sim.trace import Tracer
>>> tb.engine.tracer = Tracer(categories={"qp", "credits"})
>>> ...run...
>>> for rec in tb.engine.tracer.query(category="credits"):
...     print(rec)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, Optional, Set

__all__ = ["Tracer", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time: float
    category: str
    message: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time * 1e3:12.6f}ms] {self.category:10s} {self.message} {extras}"


class Tracer:
    """A bounded in-memory trace buffer with category filtering.

    Parameters
    ----------
    categories:
        Only events in these categories are recorded (``None`` = all).
    capacity:
        Ring-buffer size; oldest records are dropped first.
    """

    def __init__(
        self,
        categories: Optional[Set[str]] = None,
        capacity: int = 100_000,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.categories = set(categories) if categories is not None else None
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped = 0
        self.emitted = 0

    @property
    def capacity(self) -> int:
        """Ring size — read from the deque so there is exactly one
        source of truth and the drop detector can never desync."""
        maxlen = self._records.maxlen
        assert maxlen is not None
        return maxlen

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def emit(self, time: float, category: str, message: str, **fields: Any) -> None:
        """Record one event (no-op if the category is filtered out)."""
        if not self.wants(category):
            return
        if len(self._records) == self._records.maxlen:
            self.dropped += 1
        self._records.append(TraceRecord(time, category, message, fields))
        self.emitted += 1

    def __len__(self) -> int:
        return len(self._records)

    def query(
        self,
        category: Optional[str] = None,
        since: float = 0.0,
        **field_filters: Any,
    ) -> Iterator[TraceRecord]:
        """Iterate matching records in chronological order."""
        for rec in self._records:
            if rec.time < since:
                continue
            if category is not None and rec.category != category:
                continue
            if any(rec.fields.get(k) != v for k, v in field_filters.items()):
                continue
            yield rec

    def clear(self) -> None:
        """Reset the buffer and both lifetime counters, so a tracer
        reused across runs starts every run from zero."""
        self._records.clear()
        self.dropped = 0
        self.emitted = 0
