"""Measurement helpers: counters, event series, and time-weighted stats.

These are the building blocks for the bandwidth / CPU-utilisation /
latency-percentile meters in :mod:`repro.analysis`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.obs.stats import exact_percentile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["Counter", "TimeSeries", "TimeWeightedStat"]


class Counter:
    """A monotonically accumulating quantity (bytes, events, drops...)."""

    __slots__ = ("name", "total", "count")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.total: float = 0.0
        self.count: int = 0

    def add(self, amount: float = 1.0) -> None:
        self.total += amount
        self.count += 1

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}: total={self.total} n={self.count}>"


class TimeSeries:
    """A timestamped sequence of samples (e.g. per-block latency)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values)

    def mean(self) -> float:
        return float(np.mean(self._values)) if self._values else float("nan")

    def percentile(self, q: float) -> float:
        if not self._values:
            return float("nan")
        return exact_percentile(self._values, q)

    def rate(self, since: float = 0.0, until: Optional[float] = None) -> float:
        """Sum of values per second over ``[since, until]``."""
        if not self._values:
            return 0.0
        times = self.times
        end = until if until is not None else float(times[-1])
        span = end - since
        if span <= 0:
            return 0.0
        mask = (times >= since) & (times <= end)
        return float(np.sum(self.values[mask]) / span)


class TimeWeightedStat:
    """Tracks the time integral of a piecewise-constant quantity.

    Used for e.g. queue occupancy and CPU busy fraction: call
    :meth:`update` whenever the level changes, then read
    :meth:`time_average` over an interval.
    """

    def __init__(self, engine: "Engine", initial: float = 0.0) -> None:
        self.engine = engine
        self._level = float(initial)
        self._last_time = engine.now
        self._integral = 0.0
        self._epoch = engine.now

    @property
    def level(self) -> float:
        return self._level

    def update(self, level: float) -> None:
        """Set a new level, accumulating the integral so far."""
        now = self.engine.now
        self._integral += self._level * (now - self._last_time)
        self._last_time = now
        self._level = float(level)

    def add(self, delta: float) -> None:
        self.update(self._level + delta)

    def integral(self) -> float:
        """Time integral of the level from the epoch until now."""
        now = self.engine.now
        return self._integral + self._level * (now - self._last_time)

    def time_average(self) -> float:
        """Average level from the epoch until now."""
        span = self.engine.now - self._epoch
        if span <= 0:
            return self._level
        return self.integral() / span

    def reset(self) -> None:
        """Restart integration from the current instant."""
        self._integral = 0.0
        self._last_time = self.engine.now
        self._epoch = self.engine.now


def snapshot_interval(stat: TimeWeightedStat) -> Tuple[float, float]:
    """Return ``(integral, span)`` since the stat's epoch (testing aid)."""
    return stat.integral(), stat.engine.now - stat._epoch
