"""Core event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence with an optional value.  Events
move through three states: *pending* (created, not yet triggered),
*triggered* (scheduled on the engine's heap with a value or exception) and
*processed* (callbacks have run).  Processes wait on events by ``yield``-ing
them; the engine resumes the process when the event is processed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = [
    "Event",
    "Timeout",
    "TimeoutAt",
    "Condition",
    "AllOf",
    "AnyOf",
    "StopEngine",
]

_PENDING = object()


class StopEngine(Exception):
    """Raised to stop :meth:`Engine.run` after the current event.

    Propagates out of processes and callbacks untouched so that
    ``engine.stop()`` works from any context.
    """


class Event:
    """A one-shot simulation event.

    Parameters
    ----------
    engine:
        The engine the event belongs to.  Triggering schedules the event on
        this engine's queue.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_defused", "_cancelled")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        #: Callbacks invoked (in order) when the event is processed.  Set to
        #: ``None`` once processed; adding callbacks afterwards is an error.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        #: Lazy tombstone: a cancelled event stays queued but is skipped
        #: (no callbacks) when its heap/wheel entry surfaces.
        self._cancelled = False

    # -- state inspection --------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance when failed)."""
        if self._value is _PENDING:
            raise RuntimeError("event not yet triggered")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.engine._push(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside any process waiting on the event.
        A failed event nobody waits on raises at engine level unless
        :meth:`defuse` was called.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.engine._push(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event._ok is None:
            # Without this guard the _PENDING sentinel would fall into
            # fail() and surface as an unrelated TypeError.
            raise RuntimeError("source event not yet triggered")
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def defuse(self) -> "Event":
        """Mark a potential failure as handled out-of-band."""
        self._defused = True
        return self

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.engine, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.engine, [self, other])

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed."""
        if self.callbacks is None:
            raise RuntimeError("cannot add callback to a processed event")
        self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(engine)
        self.delay = delay
        self._ok = True
        self._value = value
        engine._push_timer(self, delay)

    def cancel(self) -> bool:
        """Cancel a timer that has not fired yet.

        The queue entry is left in place as a tombstone — the engine
        discards it without running callbacks when it surfaces.  Returns
        ``True`` when the timer was still pending (now cancelled),
        ``False`` when it had already fired; cancelling after the fact is
        a deterministic no-op, never an error, so AnyOf losers can be
        cancelled unconditionally.
        """
        if self.callbacks is None:
            return False
        self._cancelled = True
        return True


class TimeoutAt(Timeout):
    """A timer that fires at an absolute simulated instant.

    Used by the fluid fast-forward paths, which compute completion
    times analytically: scheduling the deadline directly (instead of
    converting to a relative delay) keeps the fire time bit-identical
    to the discrete event chain it replaces, because
    ``now + (when - now)`` is generally not ``when`` in floating point.
    Inherits :meth:`Timeout.cancel`.
    """

    __slots__ = ()

    def __init__(self, engine: "Engine", when: float, value: Any = None) -> None:
        if when < engine.now:
            raise ValueError(
                f"timeout_at in the past: {when!r} < now={engine.now!r}"
            )
        Event.__init__(self, engine)
        self.delay = when - engine.now
        self._ok = True
        self._value = value
        engine._push_timer_at(self, when)


class Condition(Event):
    """Waits on a set of events until :meth:`_satisfied` holds.

    A failed child event fails the condition immediately (the child is
    defused so the failure is not reported twice).  When the condition
    resolves, its ``_check`` callback is detached from every still
    unresolved child so an AnyOf winner does not keep the losers' callback
    lists (and through them the condition) alive.
    """

    __slots__ = ("events", "_count")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self.events: List[Event] = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        check = self._check
        for ev in self.events:
            if ev.engine is not engine:
                raise ValueError("all events must belong to the same engine")
            if self.triggered:
                # Resolved while walking the children (a processed child
                # satisfied/failed us): don't register on the rest.
                continue
            if ev.processed:
                check(ev)
            else:
                ev.add_callback(check)

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _detach(self) -> None:
        """Drop our callback from children that have not resolved yet."""
        check = self._check
        for ev in self.events:
            cbs = ev.callbacks
            if cbs is not None:
                try:
                    cbs.remove(check)
                except ValueError:
                    pass

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            self._detach()
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())
            self._detach()

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev.triggered and ev._ok
        }


class AllOf(Condition):
    """Succeeds once *all* child events have succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self.events)


class AnyOf(Condition):
    """Succeeds once *any* child event has succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1
