"""FIFO resources: stores, counting resources, and byte containers.

All waiters are served strictly first-come-first-served, which keeps
simulations deterministic and models the FIFO hardware queues (NIC work
queues, link serialisation, socket buffers) used throughout the library.

Under ``Engine(use_fluid=True)`` an operation that can be satisfied
immediately (a free resource slot, a non-empty store, sufficient
container level) returns an *already-processed* event instead of queuing
a grant on the engine: the state change happens at the same simulated
instant either way, and a process yielding a processed event continues
synchronously, so results are identical while the kernel dispatches far
fewer events.  Operations that must wait always queue real events.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["Store", "Resource", "Container"]


class _PutEvent(Event):
    """A queued store-put carrying the item being inserted."""

    __slots__ = ("item",)


class _AmountEvent(Event):
    """A queued container operation carrying its quantity."""

    __slots__ = ("amount",)


def _granted(event: Event, value: Any = None) -> Event:
    """Mark ``event`` as succeeded *and* processed without queueing it.

    The fluid sync-grant: ``Process._resume`` continues synchronously on
    a processed event, and :class:`~repro.sim.events.Condition` handles
    processed children, so nothing downstream needs a queue round trip.
    """
    event._ok = True
    event._value = value
    event.callbacks = None
    return event


class Store:
    """An unbounded-or-bounded FIFO queue of Python objects.

    ``get()`` and ``put(item)`` return events.  A ``get`` on an empty store
    (or a ``put`` on a full one) suspends the caller until it can proceed.
    """

    def __init__(self, engine: "Engine", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()  # events carrying .item

    def __len__(self) -> int:
        return len(self.items)

    @property
    def waiters(self) -> int:
        """Number of getters currently blocked on an empty store."""
        return len(self._getters)

    def put_many(self, items) -> int:
        """Insert a batch of items immediately (non-blocking bulk put).

        Unlike :meth:`put` this never queues the caller: the whole batch
        must fit, so a store with finite capacity raises ``ValueError``
        when the batch would overflow.  Waiting getters are served in
        FIFO order exactly as if the items had been ``put`` one by one.
        Returns the number of items inserted.
        """
        items = list(items)
        if len(self.items) + len(items) > self.capacity:
            raise ValueError(
                f"put_many of {len(items)} items would exceed capacity "
                f"{self.capacity} (have {len(self.items)})"
            )
        self.items.extend(items)
        self._dispatch()
        return len(items)

    def cancel_get(self, event: Event) -> bool:
        """Withdraw a pending :meth:`get` request.

        Returns True if the event was still queued (and is now removed);
        False if it already received an item (or was never queued).  Used
        by timeout/abort paths so a stale getter cannot swallow an item
        intended for a live waiter.
        """
        try:
            self._getters.remove(event)
        except ValueError:
            return False
        return True

    def put(self, item: Any) -> Event:
        """Queue ``item``; the returned event fires when the item is stored."""
        event = _PutEvent(self.engine)
        event.item = item
        if (
            self.engine.use_fluid
            and not self._putters
            and len(self.items) < self.capacity
        ):
            self.items.append(item)
            self._dispatch()
            return _granted(event)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> Event:
        """Request one item; the returned event's value is the item."""
        if self.engine.use_fluid and not self._getters:
            self._admit_putters()
            if self.items:
                event = Event(self.engine)
                item = self.items.popleft()
                self._admit_putters()
                return _granted(event, item)
        event = Event(self.engine)
        self._getters.append(event)
        self._dispatch()
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: pop and return an item, or ``None`` if empty."""
        self._admit_putters()
        if self.items and not self._getters:
            item = self.items.popleft()
            self._admit_putters()
            return item
        return None

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter = self._putters.popleft()
            self.items.append(putter.item)
            putter.succeed()

    def _dispatch(self) -> None:
        self._admit_putters()
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(self.items.popleft())
            self._admit_putters()


class Resource:
    """A counting resource with ``capacity`` concurrent holders (FIFO).

    Usage::

        req = resource.request()
        yield req
        try:
            ...critical section...
        finally:
            resource.release()
    """

    def __init__(self, engine: "Engine", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Request a slot; the event fires once the slot is granted."""
        event = Event(self.engine)
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            if self.engine.use_fluid:
                return _granted(event)
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def try_acquire(self) -> bool:
        """Take a free slot without creating an event, or return False.

        The fluid fast paths use this to test-and-hold a slot they will
        release from a timer callback; pair every ``True`` with a
        :meth:`release`.
        """
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        """Release one held slot, admitting the next waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Container:
    """A continuous-quantity reservoir (e.g. bytes in a socket buffer).

    ``put(amount)`` blocks while the container would overflow;
    ``get(amount)`` blocks until at least ``amount`` is present.  Partial
    satisfaction is deliberate *not* offered — callers split quantities
    themselves, keeping semantics simple and FIFO-fair.
    """

    def __init__(
        self,
        engine: "Engine",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self.engine = engine
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[Event] = deque()  # events carrying .amount
        self._putters: Deque[Event] = deque()

    @property
    def level(self) -> float:
        """Current stored quantity."""
        return self._level

    @property
    def idle(self) -> bool:
        """True when no putter or getter is parked on the container."""
        return not self._putters and not self._getters

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self.capacity:
            raise ValueError("amount exceeds container capacity")
        event = _AmountEvent(self.engine)
        event.amount = amount
        if (
            self.engine.use_fluid
            and not self._putters
            and self._level + amount <= self.capacity + self.EPSILON
        ):
            self._level = min(self._level + amount, self.capacity)
            self._dispatch()
            return _granted(event)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        event = _AmountEvent(self.engine)
        event.amount = amount
        if (
            self.engine.use_fluid
            and not self._getters
            and not self._putters
            and self._level + self.EPSILON >= amount
        ):
            self._level = max(self._level - amount, 0.0)
            self._dispatch()
            return _granted(event, amount)
        self._getters.append(event)
        self._dispatch()
        return event

    #: Absolute slack for float comparisons: repeated fractional puts (the
    #: fluid TCP rounds) accumulate representation error; without slack a
    #: getter can starve on a quantity that is 1e-7 short forever.
    EPSILON = 1e-3

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                putter = self._putters[0]
                amount = putter.amount
                if self._level + amount <= self.capacity + self.EPSILON:
                    self._putters.popleft()
                    self._level = min(self._level + amount, self.capacity)
                    putter.succeed()
                    progressed = True
            if self._getters:
                getter = self._getters[0]
                amount = getter.amount
                if self._level + self.EPSILON >= amount:
                    self._getters.popleft()
                    self._level = max(self._level - amount, 0.0)
                    getter.succeed(amount)
                    progressed = True
