"""Discrete-event simulation kernel.

This package provides the simulation substrate every other subsystem is
built on: an event-heap :class:`~repro.sim.engine.Engine`, generator-based
:class:`~repro.sim.process.Process` coroutines, condition events, FIFO
resources (:class:`~repro.sim.resources.Store`,
:class:`~repro.sim.resources.Resource`,
:class:`~repro.sim.resources.Container`), deterministic named random
streams, and lightweight time-series monitors.

The design deliberately mirrors the small core of ``simpy`` so that the
rest of the codebase reads like ordinary process-oriented simulation code,
while remaining a from-scratch implementation with deterministic,
fully-ordered event scheduling (ties broken by insertion order).

Example
-------
>>> from repro.sim import Engine
>>> eng = Engine()
>>> def hello(env):
...     yield env.timeout(1.5)
...     return "done at %.1f" % env.now
>>> proc = eng.process(hello(eng))
>>> eng.run()
>>> proc.value
'done at 1.5'
"""

from repro.sim.engine import Engine, SimulationError, StopEngine
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessKilled
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.monitor import Counter, TimeSeries, TimeWeightedStat
from repro.sim.trace import Tracer, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Counter",
    "Engine",
    "Event",
    "Process",
    "ProcessKilled",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Store",
    "StopEngine",
    "TimeSeries",
    "TimeWeightedStat",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
