"""The three testbeds of Table I, wired and ready to run.

Each factory returns a fresh :class:`Testbed` — its own engine, two
hosts ("src" and "dst"), RDMA devices, fabric paths, connection manager,
and TCP facilities — parameterised from the paper's Table I row:

=============== ==================== ==================== ========================
                InfiniBand LAN       RoCE LAN             RoCE WAN (ANI)
=============== ==================== ==================== ========================
CPU             Xeon X5550, 8 cores  Xeon X5650, 12 cores ANL Opteron 6140 16c /
                                                          NERSC Xeon E5530 8c
Memory          48 GB                24 GB                64 GB / 24 GB
NIC             40 Gb/s (4X QDR)     40 Gb/s              10 Gb/s
TCP congestion  cubic                bic                  cubic (ANL) / htcp
MTU             65520                9000                 9000
RTT             0.013 ms             0.025 ms             49 ms
=============== ==================== ==================== ========================

The InfiniBand bare-metal ceiling is the 8-lane PCIe 2.0 slot (~25 Gbps,
per the vendor's validation quoted in §V-A1), encoded as ``pcie_gbps``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hardware import DiskProfile, Host, HostSpec, NicProfile
from repro.network import DuplexPath, back_to_back, lan_switched, wan_path
from repro.sim import Engine, RandomStreams
from repro.tcp import Bottleneck, TcpConnection, TcpMode
from repro.verbs import ArchProfile, ConnectionManager, Device, RdmaArch, RdmaFabric

__all__ = ["Testbed", "roce_lan", "infiniband_lan", "ani_wan", "iwarp_lan", "TESTBEDS"]


@dataclass
class Testbed:
    """A wired two-host experiment environment."""

    name: str
    engine: Engine
    src: Host
    dst: Host
    src_dev: Device
    dst_dev: Device
    duplex: DuplexPath
    fabric: RdmaFabric
    cm: ConnectionManager
    arch: RdmaArch
    nic_gbps: float
    rtt: float
    mtu: int
    tcp_cc: str
    tcp_mode: TcpMode
    rng: RandomStreams = field(default_factory=lambda: RandomStreams(0))
    _bottleneck: Optional[Bottleneck] = None

    @property
    def bare_metal_gbps(self) -> float:
        """The true ceiling: min of link rate and host PCIe."""
        return min(self.nic_gbps, self.src.spec.pcie_gbps, self.dst.spec.pcie_gbps)

    #: Background loss probability per byte on the path (0 on LANs; the
    #: long-haul circuit sees rare transient loss).
    wan_loss_per_byte: float = 0.0

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product of the path."""
        return self.nic_gbps * 1e9 / 8.0 * self.rtt

    def tcp_bottleneck(self) -> Bottleneck:
        """The shared WAN bottleneck (created once, shared by all flows)."""
        if self._bottleneck is None:
            self._bottleneck = Bottleneck(
                self.engine,
                capacity_bytes_per_second=self.nic_gbps * 1e9 / 8.0,
                rtt=self.rtt,
                rng=self.rng.stream("bottleneck"),
                random_loss_per_byte=self.wan_loss_per_byte,
            )
        return self._bottleneck

    def tcp_connection(
        self,
        cc: Optional[str] = None,
        sndbuf: Optional[float] = None,
        rcvbuf: Optional[float] = None,
    ) -> TcpConnection:
        """A tuned TCP connection src→dst (buffers default to the BDP,
        the paper's 'proven value for optimal network performance')."""
        buf = max(self.bdp_bytes, 4 * 1024 * 1024)
        kwargs = dict(
            cc=cc or self.tcp_cc,
            mss=min(self.mtu, 9000) - 52,
            sndbuf=sndbuf if sndbuf is not None else buf,
            rcvbuf=rcvbuf if rcvbuf is not None else buf,
        )
        if self.tcp_mode is TcpMode.PIPE:
            return TcpConnection(
                self.engine, self.src, self.dst, TcpMode.PIPE,
                path=self.duplex, **kwargs,
            )
        return TcpConnection(
            self.engine, self.src, self.dst, TcpMode.FLUID,
            bottleneck=self.tcp_bottleneck(), **kwargs,
        )


def _build(
    name: str,
    arch: RdmaArch,
    src_spec: HostSpec,
    dst_spec: HostSpec,
    nic: NicProfile,
    duplex_factory,
    rtt: float,
    mtu: int,
    tcp_cc: str,
    tcp_mode: TcpMode,
    seed: int,
    with_disk: bool,
    wan_loss_per_byte: float = 0.0,
    use_fluid: bool = True,
) -> Testbed:
    engine = Engine(use_fluid=use_fluid)
    src, dst = Host(engine, src_spec), Host(engine, dst_spec)
    src.add_nic(nic)
    dst.add_nic(nic)
    if with_disk:
        dst.add_disk(DiskProfile())
        src.add_disk(DiskProfile())
    profile = ArchProfile.for_arch(arch)
    src_dev = Device(src.nic, arch, profile)
    dst_dev = Device(dst.nic, arch, profile)
    duplex = duplex_factory(engine)
    fabric = RdmaFabric(engine)
    fabric.wire(src_dev, dst_dev, duplex)
    cm = ConnectionManager(fabric)
    return Testbed(
        name=name,
        engine=engine,
        src=src,
        dst=dst,
        src_dev=src_dev,
        dst_dev=dst_dev,
        duplex=duplex,
        fabric=fabric,
        cm=cm,
        arch=arch,
        nic_gbps=nic.gbps,
        rtt=rtt,
        mtu=mtu,
        tcp_cc=tcp_cc,
        tcp_mode=tcp_mode,
        rng=RandomStreams(seed),
        wan_loss_per_byte=wan_loss_per_byte,
    )


def roce_lan(seed: int = 0, with_disk: bool = False, use_fluid: bool = True) -> Testbed:
    """Stony Brook back-to-back 40 Gbps RoCE testbed (Table I col. 2)."""
    spec = lambda n: HostSpec(  # noqa: E731 - local factory
        name=n,
        cores=12,
        mem_bytes=24 << 30,
        pcie_gbps=52.0,  # PCIe not binding on this testbed
        cpu_model="Intel Xeon X5650 2.67GHz",
    )
    return _build(
        name="roce-lan",
        arch=RdmaArch.ROCE,
        src_spec=spec("src"),
        dst_spec=spec("dst"),
        nic=NicProfile(gbps=40.0, mtu=9000),
        duplex_factory=lambda eng: back_to_back(eng, 40.0, rtt=0.025e-3, mtu=9000),
        rtt=0.025e-3,
        mtu=9000,
        tcp_cc="bic",
        tcp_mode=TcpMode.PIPE,
        seed=seed,
        with_disk=with_disk,
        use_fluid=use_fluid,
    )


def infiniband_lan(seed: int = 0, with_disk: bool = False, use_fluid: bool = True) -> Testbed:
    """NERSC 4X QDR InfiniBand LAN (Table I col. 1).

    The 40 Gbps HCA sits in an 8-lane PCIe 2.0 slot; vendor-validated
    effective bandwidth ≈ 25 Gbps, which ``pcie_gbps`` encodes.
    """
    spec = lambda n: HostSpec(  # noqa: E731 - local factory
        name=n,
        cores=8,
        mem_bytes=48 << 30,
        pcie_gbps=25.6,
        cpu_model="Intel Xeon X5550 2.67GHz",
    )
    return _build(
        name="infiniband-lan",
        arch=RdmaArch.INFINIBAND,
        src_spec=spec("src"),
        dst_spec=spec("dst"),
        nic=NicProfile(gbps=40.0, mtu=65520),
        duplex_factory=lambda eng: lan_switched(eng, 40.0, rtt=0.013e-3, mtu=65520),
        rtt=0.013e-3,
        mtu=65520,
        tcp_cc="cubic",
        tcp_mode=TcpMode.PIPE,
        seed=seed,
        with_disk=with_disk,
        use_fluid=use_fluid,
    )


def ani_wan(seed: int = 0, with_disk: bool = True, use_fluid: bool = True) -> Testbed:
    """DOE ANI 100G testbed: ANL → NERSC, 10 Gbps RoCE NICs, 49 ms RTT."""
    src_spec = HostSpec(
        name="anl",
        cores=16,
        mem_bytes=64 << 30,
        pcie_gbps=16.0,
        cpu_model="AMD Opteron 6140 2.6GHz",
    )
    dst_spec = HostSpec(
        name="nersc",
        cores=8,
        mem_bytes=24 << 30,
        pcie_gbps=16.0,
        cpu_model="Intel Xeon E5530 2.40GHz",
    )
    return _build(
        name="ani-wan",
        arch=RdmaArch.ROCE,
        src_spec=src_spec,
        dst_spec=dst_spec,
        nic=NicProfile(gbps=10.0, mtu=9000),
        duplex_factory=lambda eng: wan_path(eng, 10.0, rtt=49e-3, mtu=9000),
        rtt=49e-3,
        mtu=9000,
        tcp_cc="cubic",
        tcp_mode=TcpMode.FLUID,
        seed=seed,
        with_disk=with_disk,
        wan_loss_per_byte=5e-10,
        use_fluid=use_fluid,
    )


def iwarp_lan(seed: int = 0, with_disk: bool = False, use_fluid: bool = True) -> Testbed:
    """A 10 Gbps iWARP LAN — an *extension* testbed (not in Table I).

    The paper's middleware claims transparency across all three RDMA
    architectures of its Figure 1; Table I only exercises RoCE and
    InfiniBand.  This testbed lets the same applications run over the
    iWARP cost profile (full TCP offload: heaviest verbs software path)
    on commodity 10G Ethernet.
    """
    spec = lambda n: HostSpec(  # noqa: E731 - local factory
        name=n,
        cores=8,
        mem_bytes=24 << 30,
        pcie_gbps=32.0,
        cpu_model="Intel Xeon E5620 2.40GHz",
    )
    return _build(
        name="iwarp-lan",
        arch=RdmaArch.IWARP,
        src_spec=spec("src"),
        dst_spec=spec("dst"),
        nic=NicProfile(gbps=10.0, mtu=9000),
        duplex_factory=lambda eng: back_to_back(eng, 10.0, rtt=0.040e-3, mtu=9000),
        rtt=0.040e-3,
        mtu=9000,
        tcp_cc="cubic",
        tcp_mode=TcpMode.PIPE,
        seed=seed,
        with_disk=with_disk,
        use_fluid=use_fluid,
    )


#: Name → factory, for CLI/bench parameterisation.  The first three are
#: the paper's Table I; ``iwarp-lan`` is this reproduction's extension.
TESTBEDS = {
    "roce-lan": roce_lan,
    "infiniband-lan": infiniband_lan,
    "ani-wan": ani_wan,
    "iwarp-lan": iwarp_lan,
}
