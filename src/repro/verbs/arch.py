"""RDMA architecture cost profiles (RoCE, InfiniBand, iWARP).

The paper observes that the same verbs API costs different amounts of CPU
on different fabrics — "*libibverbs* has lower overhead in the
[InfiniBand] environment than in the [RoCE] one" (§V-C2) — and that the
whole point of kernel bypass is that *none* of these costs scale with
bytes.  The profile therefore contains only per-call constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["RdmaArch", "ArchProfile"]


class RdmaArch(enum.Enum):
    """The three RDMA architectures of the paper's Figure 1."""

    INFINIBAND = "infiniband"
    ROCE = "roce"
    IWARP = "iwarp"


@dataclass(frozen=True)
class ArchProfile:
    """Per-verbs-call CPU cost constants (seconds, on the calling thread)."""

    arch: RdmaArch
    #: ibv_post_send: build + ring doorbell.
    post_send_seconds: float
    #: ibv_post_recv.
    post_recv_seconds: float
    #: ibv_poll_cq per completion reaped.
    poll_cqe_seconds: float
    #: ibv_poll_cq that finds nothing (busy-poll iteration).
    poll_empty_seconds: float
    #: Completion-channel event wakeup (ibv_get_cq_event + ack + rearm).
    cq_event_seconds: float
    #: ibv_reg_mr fixed cost.
    reg_mr_base_seconds: float
    #: ibv_reg_mr per-page pinning cost.
    reg_mr_page_seconds: float

    @classmethod
    def for_arch(cls, arch: RdmaArch) -> "ArchProfile":
        """Default calibrated profile for an architecture.

        InfiniBand has the leanest software path; RoCE adds Ethernet
        encapsulation bookkeeping; iWARP (full TCP offload) is the
        heaviest, consistent with the relative efficiencies reported in
        the paper's references [9][15].
        """
        if arch is RdmaArch.INFINIBAND:
            return cls(
                arch=arch,
                post_send_seconds=0.40e-6,
                post_recv_seconds=0.30e-6,
                poll_cqe_seconds=0.30e-6,
                poll_empty_seconds=0.05e-6,
                cq_event_seconds=1.5e-6,
                reg_mr_base_seconds=30e-6,
                reg_mr_page_seconds=0.25e-6,
            )
        if arch is RdmaArch.ROCE:
            return cls(
                arch=arch,
                post_send_seconds=0.70e-6,
                post_recv_seconds=0.50e-6,
                poll_cqe_seconds=0.50e-6,
                poll_empty_seconds=0.05e-6,
                cq_event_seconds=2.0e-6,
                reg_mr_base_seconds=30e-6,
                reg_mr_page_seconds=0.25e-6,
            )
        if arch is RdmaArch.IWARP:
            return cls(
                arch=arch,
                post_send_seconds=0.90e-6,
                post_recv_seconds=0.65e-6,
                poll_cqe_seconds=0.60e-6,
                poll_empty_seconds=0.05e-6,
                cq_event_seconds=2.5e-6,
                reg_mr_base_seconds=35e-6,
                reg_mr_page_seconds=0.30e-6,
            )
        raise ValueError(f"unknown architecture: {arch!r}")
