"""Queue pairs: RC and UD transports with faithful completion semantics.

The RC (Reliable Connected) QP implements what the paper's protocol
relies on:

- **Asynchronous depth**: many WRs execute concurrently; ordering is
  preserved only where hardware FIFO stages (NIC WQE pipeline, PCIe bus,
  link) impose it, and *completions* are delivered strictly in post order
  per QP (RC ordering rule).
- **SEND/RECV (channel semantics)**: two-sided; the responder must have
  pre-posted a receive WR or the sender gets an RNR NAK and retries after
  the RNR timer — the exact failure mode whose avoidance motivates the
  middleware's credit scheme.
- **RDMA WRITE (memory semantics)**: one-sided; payload lands in a
  remote, rkey-validated region with no responder CQE (unless WRITE-with-
  immediate is used) and no responder CPU.
- **RDMA READ**: one-sided with a request round-trip, the responder's
  read-engine gap, and at most ``max_ord`` requests outstanding — which
  caps READ throughput at ``ord * block / RTT`` on long paths.
- **UD**: datagrams bounded by path MTU, no acknowledgement, silent drop
  when no receive WR is posted.

CPU cost of *posting* is charged by callers via
:meth:`QueuePair.post_send_cost`-style helpers in the middleware layer;
the QP itself consumes no host CPU (kernel bypass).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Generator, Optional


from repro.sim.resources import Resource
from repro.verbs.errors import (
    MtuExceededError,
    QpStateError,
    QueueFullError,
    RemoteAccessError,
)
from repro.verbs.wr import Opcode, RecvWR, SendWR, WcStatus, WorkCompletion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.fabric import DuplexPath, Path
    from repro.verbs.cq import CompletionQueue
    from repro.verbs.device import Device
    from repro.verbs.pd import ProtectionDomain
    from repro.verbs.srq import SharedReceiveQueue

__all__ = ["QpType", "QpState", "QueuePair", "connect_pair"]

#: Per the InfiniBand spec, an RNR retry count of 7 means "retry forever".
RNR_RETRY_INFINITE = 7


class QpType(enum.Enum):
    RC = "rc"
    UD = "ud"


class QpState(enum.Enum):
    RESET = "reset"
    INIT = "init"
    RTR = "rtr"
    RTS = "rts"
    ERROR = "error"


class QueuePair:
    """One endpoint of an RDMA channel."""

    def __init__(
        self,
        device: "Device",
        qp_num: int,
        pd: "ProtectionDomain",
        send_cq: "CompletionQueue",
        recv_cq: "CompletionQueue",
        qp_type: QpType = QpType.RC,
        max_send_wr: int = 512,
        max_recv_wr: int = 1024,
        max_ord: Optional[int] = None,
        rnr_retry: int = RNR_RETRY_INFINITE,
        rnr_timer: float = 0.12e-3,
        srq: Optional["SharedReceiveQueue"] = None,
    ) -> None:
        if max_send_wr < 1 or max_recv_wr < 1:
            raise ValueError("queue depths must be >= 1")
        if srq is not None and srq.pd is not pd:
            raise QpStateError("SRQ and QP must share a protection domain")
        self.device = device
        self.engine = device.engine
        self.qp_num = qp_num
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.qp_type = qp_type
        self.max_send_wr = max_send_wr
        self.max_recv_wr = max_recv_wr
        self.rnr_retry = rnr_retry
        self.rnr_timer = rnr_timer
        self.state = QpState.INIT

        nic_ord = device.nic.profile.max_ord
        self.max_ord = min(max_ord, nic_ord) if max_ord else nic_ord
        self._ord = Resource(self.engine, capacity=self.max_ord)

        self.peer: Optional["QueuePair"] = None
        self.path: Optional["Path"] = None  # self -> peer
        self.rpath: Optional["Path"] = None  # peer -> self

        #: Shared receive queue; when set, arrivals draw WQEs from it
        #: instead of the per-QP receive queue (which stays unused).
        self.srq = srq
        self._recv_queue: Deque[RecvWR] = deque()
        self._outstanding_sends = 0
        self._ssn = 0  # send sequence number (post order)
        self._next_complete = 0
        self._done: Dict[int, Optional[WorkCompletion]] = {}

        # Registry counters keep the monitor.Counter API (.add/.total/
        # .count); host + qp_num labels make them unique per endpoint
        # (qp_num allocation is per device, one device per host here).
        reg = self.engine.metrics
        labels = {"host": device.host.name, "qp": qp_num}
        self.rnr_naks = reg.counter("qp.rnr_naks", **labels)
        self.ud_drops = reg.counter("qp.ud_drops", **labels)
        self.bytes_sent = reg.counter("qp.bytes_sent", **labels)
        #: Optional fault hook ``(SendWR) -> bool``: return True to fail
        #: the WR with :data:`WcStatus.SIM_FAULT` after it crosses the
        #: wire (payload is discarded; the QP survives).  Testing only.
        self.fault_injector: Optional[object] = None
        #: Optional corruption hook ``(SendWR) -> Optional[payload]``:
        #: return a tampered payload to place it at the target instead of
        #: the WR's own, or None for clean delivery.  Models in-flight bit
        #: rot below the transport's CRC (the WR still *completes*
        #: successfully — only end-to-end checksums can catch it).
        self.corrupt_injector: Optional[object] = None

    # -- wiring ------------------------------------------------------------------
    def attach(self, peer: "QueuePair", duplex: "DuplexPath") -> None:
        """Bind this QP to its peer over a duplex path and move to RTS."""
        if self.state is QpState.ERROR:
            raise QpStateError("cannot attach a QP in ERROR state")
        self.peer = peer
        self.path = duplex.forward
        self.rpath = duplex.backward
        self.state = QpState.RTS

    # -- receive side ---------------------------------------------------------------
    def post_recv(self, wr: RecvWR) -> None:
        """Queue a receive buffer (no timing; CPU cost charged by caller)."""
        if self.srq is not None:
            # Real verbs reject per-QP receives on an SRQ-attached QP;
            # receive provisioning happens once, on the shared queue.
            raise QpStateError("QP uses an SRQ: post receives on the SRQ")
        if self.state in (QpState.RESET, QpState.ERROR):
            raise QpStateError(f"post_recv in state {self.state.value}")
        if len(self._recv_queue) >= self.max_recv_wr:
            raise QueueFullError("receive queue full")
        self._recv_queue.append(wr)

    @property
    def recv_posted(self) -> int:
        """Number of receive WRs currently posted (shared WQEs when an
        SRQ is attached)."""
        if self.srq is not None:
            return self.srq.recv_posted
        return len(self._recv_queue)

    def _has_recv(self) -> bool:
        """Is a receive WQE available for an arriving message?

        Consults the SRQ when attached; counts a dry shared queue on the
        SRQ's accounting.  Pure equivalent of ``bool(self._recv_queue)``
        when no SRQ is attached.
        """
        if self.srq is not None:
            if self.srq.recv_posted:
                return True
            self.srq._note_empty()
            return False
        return bool(self._recv_queue)

    def _take_recv(self) -> RecvWR:
        """Consume the next receive WQE (shared when an SRQ is attached)."""
        if self.srq is not None:
            return self.srq._take()
        return self._recv_queue.popleft()

    # -- send side --------------------------------------------------------------
    @property
    def send_outstanding(self) -> int:
        """Number of send-queue WRs not yet completed."""
        return self._outstanding_sends

    @property
    def send_room(self) -> int:
        """Free send-queue slots."""
        return self.max_send_wr - self._outstanding_sends

    def post_send(self, wr: SendWR) -> None:
        """Post a work request; execution proceeds asynchronously."""
        if self.state is not QpState.RTS:
            raise QpStateError(f"post_send in state {self.state.value}")
        if self._outstanding_sends >= self.max_send_wr:
            raise QueueFullError("send queue full")
        if self.qp_type is QpType.UD:
            assert self.path is not None
            if wr.length > self.path.mtu:
                raise MtuExceededError(
                    f"UD datagram {wr.length} exceeds path MTU {self.path.mtu}"
                )
            if wr.opcode is not Opcode.SEND:
                raise QpStateError("UD supports only SEND")
        self._outstanding_sends += 1
        ssn = self._ssn
        self._ssn += 1
        self.engine.trace(
            "qp", "post_send",
            qp=self.qp_num, op=wr.opcode.value, wr_id=wr.wr_id, len=wr.length,
        )
        self.engine.process(self._execute(wr, ssn))

    # -- execution ----------------------------------------------------------------
    def _execute(self, wr: SendWR, ssn: int) -> Generator:
        assert self.peer is not None and self.path is not None
        assert self.rpath is not None
        nic = self.device.nic
        peer = self.peer
        status = WcStatus.SUCCESS
        try:
            if self.state is QpState.ERROR:
                status = WcStatus.WR_FLUSH_ERR
            elif wr.opcode is Opcode.SEND:
                status = yield from self._do_send(wr, nic, peer)
            elif wr.opcode in (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_WITH_IMM):
                status = yield from self._do_write(wr, nic, peer)
            elif wr.opcode is Opcode.RDMA_READ:
                status = yield from self._do_read(wr, nic, peer)
            else:  # pragma: no cover - defensive
                raise QpStateError(f"unsupported opcode {wr.opcode}")
        finally:
            wc = WorkCompletion(
                wr_id=wr.wr_id,
                opcode=wr.opcode,
                status=status,
                byte_len=wr.length,
                qp_num=self.qp_num,
            )
            self._retire(ssn, wc, signaled=wr.signaled)
        if status is WcStatus.SUCCESS:
            self.bytes_sent.add(wr.length)
        elif status is not WcStatus.SIM_FAULT:
            # Real RC errors are fatal to the QP; injected transient
            # faults leave it usable so recovery paths can be tested.
            self._enter_error()

    def _do_send(self, wr: SendWR, nic, peer: "QueuePair") -> Generator:
        yield from nic.process_wqe()
        yield from nic.dma_fetch(wr.length)
        attempts = 0
        while True:
            yield from self.path.transmit(wr.length)
            if self.qp_type is QpType.UD:
                # Unreliable: local completion as soon as it is on the wire.
                peer._deliver_datagram(wr)
                return WcStatus.SUCCESS
            if peer._has_recv():
                break
            # Receiver Not Ready: NAK travels back, wait RNR timer, retry.
            self.rnr_naks.add()
            attempts += 1
            if self.rnr_retry != RNR_RETRY_INFINITE and attempts > self.rnr_retry:
                return WcStatus.RNR_RETRY_EXC_ERR
            yield from self.rpath.deliver_latency()
            yield self.engine.timeout(self.rnr_timer)
        rwr = peer._take_recv()
        if wr.length > rwr.length:
            return WcStatus.LOC_LEN_ERR
        yield from peer.device.nic.dma_place(wr.length)
        peer.recv_cq.push(
            WorkCompletion(
                wr_id=rwr.wr_id,
                opcode=Opcode.RECV,
                status=WcStatus.SUCCESS,
                byte_len=wr.length,
                payload=wr.payload,
                qp_num=peer.qp_num,
            )
        )
        yield from self.rpath.deliver_latency()  # hardware ACK
        return WcStatus.SUCCESS

    def _do_write(self, wr: SendWR, nic, peer: "QueuePair") -> Generator:
        target = peer.pd.lookup_rkey(wr.rkey)
        yield from nic.process_wqe()
        yield from nic.dma_fetch(wr.length)
        yield from self.path.transmit(wr.length)
        if self.state is QpState.ERROR:
            # The QP was killed while this WR was on the wire; the write
            # never lands and the WR flushes.
            return WcStatus.WR_FLUSH_ERR
        if self.fault_injector is not None and self.fault_injector(wr):
            yield from self.rpath.deliver_latency()  # NAK comes back
            return WcStatus.SIM_FAULT
        try:
            if target is None:
                raise RemoteAccessError(f"unknown rkey {wr.rkey!r}")
            target.check_remote(wr.remote_addr, wr.length, write=True)
        except RemoteAccessError:
            yield from self.rpath.deliver_latency()  # NAK
            return WcStatus.REM_ACCESS_ERR
        yield from peer.device.nic.dma_place(wr.length)
        payload = wr.payload
        if self.corrupt_injector is not None:
            tampered = self.corrupt_injector(wr)
            if tampered is not None:
                payload = tampered
        target.place(wr.remote_addr, payload)
        if wr.opcode is Opcode.RDMA_WRITE_WITH_IMM:
            if not peer._has_recv():
                # Immediate data consumes a receive WR; RNR applies.
                self.rnr_naks.add()
                yield from self.rpath.deliver_latency()
                yield self.engine.timeout(self.rnr_timer)
                return (yield from self._do_write(wr, nic, peer))
            rwr = peer._take_recv()
            peer.recv_cq.push(
                WorkCompletion(
                    wr_id=rwr.wr_id,
                    opcode=Opcode.RECV,
                    status=WcStatus.SUCCESS,
                    byte_len=wr.length,
                    imm_data=wr.imm_data,
                    qp_num=peer.qp_num,
                )
            )
        yield from self.rpath.deliver_latency()  # hardware ACK
        return WcStatus.SUCCESS

    def _do_read(self, wr: SendWR, nic, peer: "QueuePair") -> Generator:
        source = peer.pd.lookup_rkey(wr.rkey)
        yield from nic.process_wqe()
        yield self._ord.request()  # outstanding-read limit (ORD)
        try:
            yield from self.path.deliver_latency()  # READ request packet
            try:
                if source is None:
                    raise RemoteAccessError(f"unknown rkey {wr.rkey!r}")
                source.check_remote(wr.remote_addr, wr.length, write=False)
            except RemoteAccessError:
                yield from self.rpath.deliver_latency()
                return WcStatus.REM_ACCESS_ERR
            peer_nic = peer.device.nic
            yield from peer_nic.serve_read(wr.length)
            yield from self.rpath.transmit(wr.length)
            yield from nic.dma_place(wr.length)
            wr.payload = source.fetch(wr.remote_addr)
            return WcStatus.SUCCESS
        finally:
            self._ord.release()

    # -- UD delivery -----------------------------------------------------------------
    def _deliver_datagram(self, wr: SendWR) -> None:
        if not self._has_recv():
            self.ud_drops.add()
            return
        rwr = self._take_recv()
        self.recv_cq.push(
            WorkCompletion(
                wr_id=rwr.wr_id,
                opcode=Opcode.RECV,
                status=WcStatus.SUCCESS,
                byte_len=wr.length,
                payload=wr.payload,
                qp_num=self.qp_num,
            )
        )

    # -- completion ordering ------------------------------------------------------------
    def _retire(self, ssn: int, wc: WorkCompletion, signaled: bool) -> None:
        self.engine.trace(
            "qp", "complete",
            qp=self.qp_num, wr_id=wc.wr_id, status=wc.status.value,
        )
        self._done[ssn] = wc if signaled else None
        while self._next_complete in self._done:
            pending = self._done.pop(self._next_complete)
            self._next_complete += 1
            self._outstanding_sends -= 1
            if pending is not None:
                self.send_cq.push(pending)

    def _enter_error(self) -> None:
        if self.state is QpState.ERROR:
            return
        self.state = QpState.ERROR
        # Flush posted receives.  Shared WQEs are deliberately *not*
        # flushed: an SRQ outlives any one attached QP and keeps serving
        # the survivors (matching ibv_srq semantics).
        while self._recv_queue:
            rwr = self._recv_queue.popleft()
            self.recv_cq.push(
                WorkCompletion(
                    wr_id=rwr.wr_id,
                    opcode=Opcode.RECV,
                    status=WcStatus.WR_FLUSH_ERR,
                    qp_num=self.qp_num,
                )
            )

    def kill(self) -> None:
        """Force the QP into ERROR (injected channel death).

        In-flight WRs flush with WR_FLUSH_ERR instead of landing, new
        posts are rejected, and posted receives are flushed — the same
        observable behaviour as a NIC port or cable failure on this
        channel.  Unlike :meth:`close` the QP stays in ERROR so failover
        logic can observe the state.
        """
        self._enter_error()

    def close(self) -> None:
        """Tear the QP down (flushes receives)."""
        self._enter_error()
        self.state = QpState.RESET

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<QP {self.qp_num} {self.qp_type.value} {self.state.value} "
            f"out={self._outstanding_sends}>"
        )


def connect_pair(qp_a: QueuePair, qp_b: QueuePair, duplex: "DuplexPath") -> None:
    """Wire two QPs together over a duplex path (both become RTS)."""
    if qp_a.qp_type is not qp_b.qp_type:
        raise QpStateError("QP types must match")
    qp_a.attach(qp_b, duplex)
    qp_b.attach(qp_a, duplex.reversed())
