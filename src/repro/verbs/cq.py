"""Completion queues and completion channels.

A :class:`CompletionQueue` collects :class:`~repro.verbs.wr.WorkCompletion`
entries from the NIC.  Applications either busy-poll (:meth:`poll`, cheap
per CQE, burns a little CPU when empty) or block on a
:class:`CompletionChannel` (:meth:`wait`, one interrupt-cost wakeup per
event batch) — the trade-off behind the paper's observation that larger
blocks mean fewer interrupts and lower CPU.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Generator, List, Optional

from repro.sim.events import Event, Timeout
from repro.verbs.errors import CqOverflowError
from repro.verbs.wr import WorkCompletion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.cpu import CpuThread
    from repro.verbs.device import Device

__all__ = ["CompletionQueue", "CompletionChannel"]


class CompletionQueue:
    """A bounded queue of work completions."""

    def __init__(self, device: "Device", depth: int = 4096) -> None:
        if depth < 1:
            raise ValueError("CQ depth must be >= 1")
        self.device = device
        self.engine = device.engine
        self.depth = depth
        self._entries: Deque[WorkCompletion] = deque()
        self.channel: Optional[CompletionChannel] = None
        self.overflows = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- producer side (called by QPs / NIC logic) -----------------------------
    def push(self, wc: WorkCompletion) -> None:
        """Add a completion; notify any armed channel.

        Raises :class:`~repro.verbs.errors.CqOverflowError` when the CQ
        is already full — an overflow means the run mis-sized its
        queues, and the old silent drop turned that into an undebuggable
        hang.  The ``cq.overflow`` counter is registered lazily so a
        healthy run's metrics export is untouched.
        """
        wc.timestamp = self.engine.now
        if len(self._entries) >= self.depth:
            self.overflows += 1
            self.engine.metrics.counter("cq.overflow").add()
            raise CqOverflowError(
                f"CQ depth {self.depth} exceeded (wr_id={wc.wr_id})"
            )
        self._entries.append(wc)
        if self.channel is not None:
            self.channel._notify()

    # -- consumer side -----------------------------------------------------------
    def poll(self, thread: "CpuThread", max_entries: int = 16):
        """Process event: reap up to ``max_entries`` completions.

        Charges per-CQE poll cost (or the empty-poll cost) to ``thread``
        and resolves to a list of completions (possibly empty).
        """
        profile = self.device.arch_profile

        if self.engine.use_fluid:
            # Fluid fast path: reap now (the discrete process does too —
            # its body runs at construction), and carry the batch as the
            # value of the CPU-chunk timer itself instead of wrapping
            # the poll in a process.  Falls back to a bridge process
            # when the core is contended (exec returned a process).
            batch: List[WorkCompletion] = []
            while self._entries and len(batch) < max_entries:
                batch.append(self._entries.popleft())
            if batch:
                cost = len(batch) * profile.poll_cqe_seconds
            else:
                cost = profile.poll_empty_seconds
            ev = thread.exec(cost)
            if isinstance(ev, Timeout):
                ev._value = batch
                return ev

            def _bridge() -> Generator:
                yield ev
                return batch

            return self.engine.process(_bridge())

        def _poll() -> Generator:
            batch: List[WorkCompletion] = []
            while self._entries and len(batch) < max_entries:
                batch.append(self._entries.popleft())
            if batch:
                cost = len(batch) * profile.poll_cqe_seconds
            else:
                cost = profile.poll_empty_seconds
            yield thread.exec(cost)
            return batch

        return self.engine.process(_poll())

    def poll_nocost(self, max_entries: int = 16) -> List[WorkCompletion]:
        """Synchronous, zero-cost reap for tests and setup phases."""
        batch: List[WorkCompletion] = []
        while self._entries and len(batch) < max_entries:
            batch.append(self._entries.popleft())
        return batch


class CompletionChannel:
    """Event-driven notification (``ibv_get_cq_event`` analogue)."""

    def __init__(self, cq: CompletionQueue) -> None:
        if cq.channel is not None:
            raise RuntimeError("CQ already has a completion channel")
        self.cq = cq
        self.engine = cq.engine
        cq.channel = self
        self._waiter: Optional[Event] = None

    def _notify(self) -> None:
        if self._waiter is not None and not self._waiter.triggered:
            waiter, self._waiter = self._waiter, None
            waiter.succeed()

    def wait(self, thread: "CpuThread"):
        """Process event: block until the CQ is non-empty.

        Charges one interrupt-wakeup cost when the event fires; returns
        immediately (still charging the wakeup) if completions are already
        pending — matching the ack-and-rearm dance of the real API.
        """
        profile = self.cq.device.arch_profile

        if self.engine.use_fluid and len(self.cq):
            # Completions already pending: the wakeup charge is the only
            # work left, so return the CPU-chunk timer directly.
            interrupt = self.cq.device.host.spec.interrupt_seconds
            ev = thread.exec(interrupt + profile.cq_event_seconds)
            if isinstance(ev, Timeout):
                return ev

            def _bridge() -> Generator:
                yield ev

            return self.engine.process(_bridge())

        def _wait() -> Generator:
            if not len(self.cq):
                if self._waiter is not None:
                    raise RuntimeError("completion channel supports one waiter")
                self._waiter = Event(self.engine)
                yield self._waiter
            interrupt = self.cq.device.host.spec.interrupt_seconds
            yield thread.exec(interrupt + profile.cq_event_seconds)

        return self.engine.process(_wait())
