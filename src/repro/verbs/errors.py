"""Verbs-layer exceptions."""

from __future__ import annotations

__all__ = [
    "VerbsError",
    "QpStateError",
    "QueueFullError",
    "CqOverflowError",
    "RemoteAccessError",
    "MtuExceededError",
]


class VerbsError(Exception):
    """Base class for all verbs-layer errors."""


class QpStateError(VerbsError):
    """Operation attempted in a QP state that does not allow it."""


class QueueFullError(VerbsError):
    """Posting would exceed the queue's configured depth."""


class CqOverflowError(VerbsError):
    """A completion arrived at a CQ that is already full.

    Real hardware moves the QP to error on CQ overrun; a simulated run
    that overflows a CQ has mis-sized its queues, so the push site
    raises instead of silently dropping the completion."""


class RemoteAccessError(VerbsError):
    """rkey validation or bounds check failed on a one-sided operation."""


class MtuExceededError(VerbsError):
    """A UD datagram exceeds the path MTU."""
