"""Verbs-layer exceptions."""

from __future__ import annotations

__all__ = [
    "VerbsError",
    "QpStateError",
    "QueueFullError",
    "RemoteAccessError",
    "MtuExceededError",
]


class VerbsError(Exception):
    """Base class for all verbs-layer errors."""


class QpStateError(VerbsError):
    """Operation attempted in a QP state that does not allow it."""


class QueueFullError(VerbsError):
    """Posting would exceed the queue's configured depth."""


class RemoteAccessError(VerbsError):
    """rkey validation or bounds check failed on a one-sided operation."""


class MtuExceededError(VerbsError):
    """A UD datagram exceeds the path MTU."""
