"""Connection management: an ``rdma_cm``-flavoured listener/connector.

The fabric registry knows which duplex path joins any two devices; the
connection manager runs a small handshake over that path (address/route
resolution plus the REQ/REP/RTU exchange, ~1.5 RTT) and leaves both QPs
attached and ready to use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, Optional, Tuple

from repro.sim.events import Event
from repro.sim.resources import Store
from repro.verbs.errors import VerbsError
from repro.verbs.qp import QueuePair, connect_pair

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.fabric import DuplexPath
    from repro.sim.engine import Engine
    from repro.verbs.device import Device

__all__ = ["RdmaFabric", "ConnectionManager", "ConnectRequest", "Listener"]


class RdmaFabric:
    """Registry of duplex paths between device pairs."""

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._paths: Dict[Tuple[int, int], "DuplexPath"] = {}

    def wire(self, dev_a: "Device", dev_b: "Device", duplex: "DuplexPath") -> None:
        """Declare that ``duplex.forward`` runs from ``dev_a`` to ``dev_b``."""
        self._paths[(dev_a.guid, dev_b.guid)] = duplex
        self._paths[(dev_b.guid, dev_a.guid)] = duplex.reversed()

    def path_between(self, src: "Device", dst: "Device") -> "DuplexPath":
        """The duplex path from ``src``'s point of view."""
        try:
            return self._paths[(src.guid, dst.guid)]
        except KeyError:
            raise VerbsError(
                f"no fabric path between {src!r} and {dst!r}"
            ) from None


@dataclass
class ConnectRequest:
    """An inbound connection request awaiting accept/reject."""

    source: "Device"
    port: int
    private_data: Any
    _reply: Event = field(repr=False, default=None)  # type: ignore[assignment]

    def accept(self, qp: QueuePair) -> None:
        """Accept with the server-side QP to pair with the initiator's."""
        self._reply.succeed(qp)

    def reject(self, reason: str = "rejected") -> None:
        """Refuse the connection; the initiator's connect fails."""
        self._reply.fail(VerbsError(f"connection rejected: {reason}"))


class Listener:
    """A passive endpoint accepting connections on (device, port)."""

    def __init__(self, cm: "ConnectionManager", device: "Device", port: int) -> None:
        self.cm = cm
        self.device = device
        self.port = port
        self._backlog = Store(device.engine)

    def get_request(self) -> Event:
        """Event resolving to the next :class:`ConnectRequest`."""
        return self._backlog.get()

    def close(self) -> None:
        self.cm._unbind(self.device, self.port)


class ConnectionManager:
    """Pairs QPs across the fabric with a simulated CM handshake."""

    def __init__(self, fabric: RdmaFabric) -> None:
        self.fabric = fabric
        self.engine = fabric.engine
        self._listeners: Dict[Tuple[int, int], Listener] = {}

    # -- passive side ---------------------------------------------------------
    def listen(self, device: "Device", port: int) -> Listener:
        key = (device.guid, port)
        if key in self._listeners:
            raise VerbsError(f"port {port} already bound on {device!r}")
        listener = Listener(self, device, port)
        self._listeners[key] = listener
        return listener

    def _unbind(self, device: "Device", port: int) -> None:
        self._listeners.pop((device.guid, port), None)

    # -- active side -------------------------------------------------------------
    def connect(
        self,
        qp: QueuePair,
        remote: "Device",
        port: int,
        private_data: Any = None,
    ):
        """Process event: connect ``qp`` to a listener on ``remote``.

        Resolves to the remote QP once both ends are RTS.  Fails if no
        listener is bound or the server rejects.
        """

        def _connect() -> Generator:
            duplex = self.fabric.path_between(qp.device, remote)
            listener = self._listeners.get((remote.guid, port))
            if listener is None:
                raise VerbsError(f"connection refused: no listener on port {port}")
            # REQ travels to the server...
            yield from duplex.forward.deliver_latency()
            reply = Event(self.engine)
            request = ConnectRequest(qp.device, port, private_data, reply)
            yield listener._backlog.put(request)
            # ...server accepts (REP back), then RTU forward.
            server_qp: QueuePair = yield reply
            yield from duplex.backward.deliver_latency()
            connect_pair(qp, server_qp, duplex)
            yield from duplex.forward.deliver_latency()
            return server_qp

        return self.engine.process(_connect())
