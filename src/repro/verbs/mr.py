"""Memory regions: registered, key-protected windows of host memory.

A region's *contents* are simulated as a sparse ``{address: object}``
mapping so the middleware can ship real Python payloads through one-sided
operations and verify reassembly — without allocating gigabytes.
"""

from __future__ import annotations

import enum
from typing import Any, Dict

from repro.hardware.memory import MemoryBuffer
from repro.verbs.errors import RemoteAccessError

__all__ = ["AccessFlags", "MemoryRegion"]


class AccessFlags(enum.Flag):
    """ibv_access_flags subset."""

    LOCAL_WRITE = enum.auto()
    REMOTE_WRITE = enum.auto()
    REMOTE_READ = enum.auto()


class MemoryRegion:
    """A registered (pinned) memory region with lkey/rkey protection."""

    def __init__(
        self,
        buffer: MemoryBuffer,
        lkey: int,
        rkey: int,
        access: AccessFlags,
        pd_handle: int,
    ) -> None:
        self.buffer = buffer
        self.lkey = lkey
        self.rkey = rkey
        self.access = access
        self.pd_handle = pd_handle
        self._contents: Dict[int, Any] = {}
        self._valid = True

    # -- lifecycle -------------------------------------------------------------
    @property
    def valid(self) -> bool:
        """False after deregistration."""
        return self._valid

    def invalidate(self) -> None:
        """Deregister: further remote access fails."""
        self._valid = False
        self._contents.clear()

    # -- simulated contents ------------------------------------------------------
    def check_remote(self, addr: int, length: int, write: bool) -> None:
        """Validate a one-sided access; raises :class:`RemoteAccessError`."""
        if not self._valid:
            raise RemoteAccessError("access to a deregistered region")
        needed = AccessFlags.REMOTE_WRITE if write else AccessFlags.REMOTE_READ
        if not (self.access & needed):
            raise RemoteAccessError(
                f"region lacks {needed} permission (rkey={self.rkey:#x})"
            )
        if not self.buffer.contains(addr, length):
            raise RemoteAccessError(
                f"access [{addr:#x}, +{length}) outside region "
                f"[{self.buffer.addr:#x}, +{self.buffer.size})"
            )

    def place(self, addr: int, obj: Any) -> None:
        """Deposit a payload object at ``addr`` (one-sided WRITE landing)."""
        self._contents[addr] = obj

    def fetch(self, addr: int) -> Any:
        """Read the payload object at ``addr`` (one-sided READ source)."""
        return self._contents.get(addr)

    def take(self, addr: int) -> Any:
        """Read and clear the payload at ``addr`` (consume a landed block)."""
        return self._contents.pop(addr, None)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<MemoryRegion addr={self.buffer.addr:#x} size={self.buffer.size} "
            f"rkey={self.rkey:#x}{'' if self._valid else ' INVALID'}>"
        )
