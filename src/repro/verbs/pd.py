"""Protection domains: the registration authority for memory regions."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from repro.hardware.memory import MemoryBuffer
from repro.verbs.mr import AccessFlags, MemoryRegion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.cpu import CpuThread
    from repro.verbs.device import Device
    from repro.verbs.srq import SharedReceiveQueue

__all__ = ["ProtectionDomain"]

_pd_handles = itertools.count(1)


class ProtectionDomain:
    """Scopes memory registrations and QPs to one device context."""

    def __init__(self, device: "Device") -> None:
        self.device = device
        self.handle = next(_pd_handles)
        self._key_seq = itertools.count(0x1000)
        self._regions: Dict[int, MemoryRegion] = {}  # by rkey
        self.srqs: List["SharedReceiveQueue"] = []

    def reg_mr(
        self,
        thread: "CpuThread",
        buffer: MemoryBuffer,
        access: AccessFlags = AccessFlags.LOCAL_WRITE,
    ):
        """Register ``buffer`` (process event; charges pinning CPU cost).

        Returns a process whose value is the :class:`MemoryRegion` —
        registration pins pages and is deliberately expensive, which is
        why the middleware registers once and reuses regions.
        """
        profile = self.device.arch_profile
        cost = (
            profile.reg_mr_base_seconds
            + buffer.pages * profile.reg_mr_page_seconds
        )

        def _register() -> Generator:
            yield thread.exec(cost)
            return self._admit(buffer, access)

        return self.device.engine.process(_register())

    def reg_mr_sync(
        self,
        buffer: MemoryBuffer,
        access: AccessFlags = AccessFlags.LOCAL_WRITE,
    ) -> MemoryRegion:
        """Zero-time registration for test fixtures and setup phases."""
        return self._admit(buffer, access)

    def _admit(self, buffer: MemoryBuffer, access: AccessFlags) -> MemoryRegion:
        key = next(self._key_seq)
        mr = MemoryRegion(
            buffer,
            lkey=key,
            rkey=key | 0x8000_0000,
            access=access | AccessFlags.LOCAL_WRITE,
            pd_handle=self.handle,
        )
        self._regions[mr.rkey] = mr
        return mr

    def create_srq(self, depth: int = 4096) -> "SharedReceiveQueue":
        """Create a shared receive queue scoped to this domain; every QP
        attached to it must be created in the same PD."""
        from repro.verbs.srq import SharedReceiveQueue

        return SharedReceiveQueue(self, depth)

    def _admit_srq(self, srq: "SharedReceiveQueue") -> None:
        self.srqs.append(srq)

    def dereg_mr(self, mr: MemoryRegion) -> None:
        """Deregister: removes remote access rights immediately."""
        mr.invalidate()
        self._regions.pop(mr.rkey, None)

    def lookup_rkey(self, rkey: Optional[int]) -> Optional[MemoryRegion]:
        """Resolve an rkey presented by a remote peer."""
        if rkey is None:
            return None
        return self._regions.get(rkey)

    def lookup_lkey(self, lkey: Optional[int]) -> Optional[MemoryRegion]:
        """Resolve a local key on a posted WR (lkey == rkey & ~high bit)."""
        if lkey is None:
            return None
        return self._regions.get(lkey | 0x8000_0000)
