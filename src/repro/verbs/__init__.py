"""Simulated OFED verbs: the RDMA programming interface of the paper.

This package reproduces the slice of ``libibverbs``/``librdmacm`` the
paper's middleware is written against:

- :class:`~repro.verbs.device.Device` / :class:`~repro.verbs.pd.ProtectionDomain`
  / :class:`~repro.verbs.mr.MemoryRegion` with lkey/rkey enforcement,
- :class:`~repro.verbs.cq.CompletionQueue` with polling and
  :class:`~repro.verbs.cq.CompletionChannel` event waits,
- :class:`~repro.verbs.qp.QueuePair` (Reliable Connected and Unreliable
  Datagram) supporting SEND/RECV, RDMA WRITE (optionally with immediate),
  and RDMA READ, with in-order completions, RNR NAK + retry, and the
  ORD outstanding-read limit,
- :class:`~repro.verbs.cm.ConnectionManager`, an ``rdma_cm``-style
  listener/connector that resolves fabric paths between devices,
- :class:`~repro.verbs.arch.ArchProfile`, per-architecture (RoCE /
  InfiniBand / iWARP) software cost profiles for verbs calls.

Everything is timed by the hardware models in :mod:`repro.hardware`; the
API layer charges *CPU* costs to the calling thread, mirroring where real
cycles are spent (kernel bypass means no per-byte CPU on the data path).
"""

from repro.verbs.arch import ArchProfile, RdmaArch
from repro.verbs.cm import ConnectionManager, RdmaFabric
from repro.verbs.cq import CompletionChannel, CompletionQueue
from repro.verbs.device import Device
from repro.verbs.errors import (
    CqOverflowError,
    QpStateError,
    RemoteAccessError,
    VerbsError,
)
from repro.verbs.mr import AccessFlags, MemoryRegion
from repro.verbs.pd import ProtectionDomain
from repro.verbs.qp import QpState, QpType, QueuePair, connect_pair
from repro.verbs.srq import SharedReceiveQueue
from repro.verbs.wr import Opcode, RecvWR, SendWR, WcStatus, WorkCompletion

__all__ = [
    "AccessFlags",
    "ArchProfile",
    "CompletionChannel",
    "CompletionQueue",
    "ConnectionManager",
    "CqOverflowError",
    "Device",
    "MemoryRegion",
    "Opcode",
    "ProtectionDomain",
    "QpState",
    "QpStateError",
    "QpType",
    "QueuePair",
    "RdmaArch",
    "RdmaFabric",
    "RecvWR",
    "RemoteAccessError",
    "SendWR",
    "SharedReceiveQueue",
    "VerbsError",
    "WcStatus",
    "WorkCompletion",
    "connect_pair",
]
