"""Device contexts: the root object of the simulated verbs API."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, List, Optional

from repro.verbs.arch import ArchProfile, RdmaArch
from repro.verbs.cq import CompletionQueue
from repro.verbs.pd import ProtectionDomain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.host import Host
    from repro.hardware.nic import Nic
    from repro.sim.engine import Engine
    from repro.verbs.qp import QueuePair

__all__ = ["Device"]

_guid = itertools.count(0x2C90_0000)


class Device:
    """An opened RDMA device context (``ibv_context`` analogue).

    Binds one NIC to an architecture cost profile and acts as the factory
    for PDs, CQs, and QPs.
    """

    def __init__(
        self,
        nic: "Nic",
        arch: RdmaArch = RdmaArch.ROCE,
        arch_profile: Optional[ArchProfile] = None,
    ) -> None:
        self.nic = nic
        self.host: "Host" = nic.host
        self.engine: "Engine" = nic.engine
        self.arch = arch
        self.arch_profile = arch_profile or ArchProfile.for_arch(arch)
        self.guid = next(_guid)
        self.qps: List["QueuePair"] = []
        self._qp_num = itertools.count(1)

    def alloc_pd(self) -> ProtectionDomain:
        """Allocate a protection domain."""
        return ProtectionDomain(self)

    def create_cq(self, depth: int = 4096) -> CompletionQueue:
        """Create a completion queue."""
        return CompletionQueue(self, depth)

    def create_qp(self, *args, **kwargs) -> "QueuePair":
        """Create a queue pair (see :class:`~repro.verbs.qp.QueuePair`)."""
        from repro.verbs.qp import QueuePair

        qp = QueuePair(self, next(self._qp_num), *args, **kwargs)
        self.qps.append(qp)
        return qp

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Device {self.arch.value} guid={self.guid:#x} on {self.host.name}>"
