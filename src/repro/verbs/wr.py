"""Work requests and work completions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Opcode", "WcStatus", "SendWR", "RecvWR", "WorkCompletion"]


class Opcode(enum.Enum):
    """Work-request / completion opcodes (subset used by the middleware)."""

    SEND = "send"
    RECV = "recv"
    RDMA_WRITE = "rdma_write"
    RDMA_WRITE_WITH_IMM = "rdma_write_with_imm"
    RDMA_READ = "rdma_read"


class WcStatus(enum.Enum):
    """Completion status codes (subset of ibv_wc_status)."""

    SUCCESS = "success"
    RNR_RETRY_EXC_ERR = "rnr_retry_exceeded"
    REM_ACCESS_ERR = "remote_access_error"
    WR_FLUSH_ERR = "flushed"
    LOC_LEN_ERR = "local_length_error"
    #: Injected transient fault (testing/fault-injection only): the
    #: operation is reported failed but the QP stays usable, so recovery
    #: paths (the middleware's WAITING → LOADED re-send transition) can
    #: be exercised without tearing the connection down.
    SIM_FAULT = "simulated_fault"


@dataclass
class SendWR:
    """A send-queue work request.

    For SEND, ``payload`` rides to the remote receive completion.  For
    RDMA WRITE/READ, ``remote_addr``/``rkey`` select the target region;
    WRITE deposits ``payload`` into the remote region's simulated
    contents, READ returns whatever the remote region holds at the
    address.
    """

    opcode: Opcode
    length: int
    wr_id: int = 0
    #: Local memory region's lkey (validated against the QP's PD).
    lkey: Optional[int] = None
    local_addr: int = 0
    remote_addr: int = 0
    rkey: Optional[int] = None
    #: Immediate data for RDMA_WRITE_WITH_IMM (consumes a remote recv WR).
    imm_data: Optional[int] = None
    #: Simulated payload object transported with the data.
    payload: Any = None
    #: Request a completion (unsignalled sends skip the CQE).
    signaled: bool = True

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("length must be non-negative")
        if self.opcode in (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_WITH_IMM, Opcode.RDMA_READ):
            if self.rkey is None:
                raise ValueError(f"{self.opcode.value} requires an rkey")
        if self.opcode is Opcode.RDMA_WRITE_WITH_IMM and self.imm_data is None:
            raise ValueError("RDMA_WRITE_WITH_IMM requires imm_data")


@dataclass
class RecvWR:
    """A receive-queue work request (a registered landing buffer)."""

    length: int
    wr_id: int = 0
    lkey: Optional[int] = None
    local_addr: int = 0

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("length must be non-negative")


@dataclass
class WorkCompletion:
    """A completion-queue entry."""

    wr_id: int
    opcode: Opcode
    status: WcStatus
    byte_len: int = 0
    #: For receive completions: the payload object the sender attached.
    payload: Any = None
    #: For RDMA_WRITE_WITH_IMM receive completions.
    imm_data: Optional[int] = None
    #: QP number the completion arrived on (for shared CQs).
    qp_num: int = -1
    #: Simulated completion timestamp (engine time), for latency stats.
    timestamp: float = field(default=0.0, repr=False)

    @property
    def ok(self) -> bool:
        return self.status is WcStatus.SUCCESS
