"""Shared receive queues: one receive pool serving many QPs.

A :class:`SharedReceiveQueue` (``ibv_srq`` analogue) decouples receive
WQE provisioning from connections: instead of pre-posting ``depth``
receives on *every* QP, a host posts one shared pool and every attached
QP draws from it on arrival.  That is the RDMAvisor-style scaling move —
receive memory grows with expected *aggregate* arrival rate, not with
connection count — and it is what lets the middleware's per-host channel
pool serve hundreds of sessions from a bounded WQE budget.

Semantics mirrored from the real API:

- Receives are posted on the SRQ, never on an attached QP
  (:meth:`QueuePair.post_recv` raises for SRQ-attached QPs).
- An arriving SEND (or WRITE-with-immediate) consumes one shared WQE;
  the completion lands on the *consuming QP's* receive CQ, carrying that
  QP's number, so demultiplexing stays per-connection.
- An empty SRQ produces RNR NAKs exactly like an empty per-QP receive
  queue — the credit scheme's reason to exist does not change.
- A QP entering ERROR does **not** flush the SRQ: the shared WQEs still
  serve the surviving QPs.  Only :meth:`close` drains the queue.

WQE accounting (``srq.*`` metric family, registered only when an SRQ is
created so non-SRQ runs export identical metrics): ``srq.posted`` /
``srq.consumed`` counters and an ``srq.empty_naks`` counter for
arrivals that found the shared queue dry.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Deque, List

from repro.verbs.errors import QpStateError, QueueFullError
from repro.verbs.wr import RecvWR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.verbs.pd import ProtectionDomain

__all__ = ["SharedReceiveQueue"]

_srq_handles = itertools.count(1)


class SharedReceiveQueue:
    """A bounded receive-WQE pool shared by every attached QP."""

    def __init__(self, pd: "ProtectionDomain", depth: int = 4096) -> None:
        if depth < 1:
            raise ValueError("SRQ depth must be >= 1")
        self.pd = pd
        self.device = pd.device
        self.engine = pd.device.engine
        self.handle = next(_srq_handles)
        self.depth = depth
        self.closed = False
        self._queue: Deque[RecvWR] = deque()
        pd._admit_srq(self)
        reg = self.engine.metrics
        labels = {"host": self.device.host.name, "srq": self.handle}
        self._m_posted = reg.counter("srq.posted", **labels)
        self._m_consumed = reg.counter("srq.consumed", **labels)
        self._m_empty = reg.counter("srq.empty_naks", **labels)
        reg.gauge_fn("srq.occupancy", lambda: len(self._queue), **labels)

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def recv_posted(self) -> int:
        """Number of shared receive WQEs currently posted."""
        return len(self._queue)

    def post_recv(self, wr: RecvWR) -> None:
        """Queue a shared receive buffer (no timing; CPU cost is the
        caller's, as with :meth:`QueuePair.post_recv`)."""
        if self.closed:
            raise QpStateError("post_recv on a closed SRQ")
        if len(self._queue) >= self.depth:
            raise QueueFullError(
                f"SRQ full ({self.depth} WQEs posted)"
            )
        self._queue.append(wr)
        self._m_posted.add()

    # -- consumer side (called by attached QPs on arrival) ---------------------
    def _take(self) -> RecvWR:
        """Consume one shared WQE for an arriving message."""
        wr = self._queue.popleft()
        self._m_consumed.add()
        return wr

    def _note_empty(self) -> None:
        """An arrival found the shared queue dry (RNR on the wire)."""
        self._m_empty.add()

    def close(self) -> List[RecvWR]:
        """Tear the SRQ down; returns the unconsumed WQEs so the owner
        can reclaim their buffers.  Attached QPs see an empty queue
        (RNR) afterwards rather than an error — matching a drained
        shared pool, which is all teardown needs here."""
        self.closed = True
        drained = list(self._queue)
        self._queue.clear()
        return drained

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<SRQ {self.handle} posted={len(self._queue)}/{self.depth}"
            f" on {self.device.host.name}>"
        )
