"""Multiprocess parameter-sweep runner (``python -m repro sweep``).

A sweep spec is a JSON object naming a runner and a grid of parameters::

    {
      "runner": "rftp",                  // or "gridftp"
      "testbed": "ani-wan",
      "base":  {"bytes": "64M"},         // shared by every point
      "axes":  {"channels": [1, 2, 4],   // cartesian product
                "block_size": ["1M", "4M"]}
    }

Points are expanded as the cartesian product of the axes (axis names
iterated in sorted order, values in spec order) and sharded across a
``ProcessPoolExecutor``.  Every point is an independent, seeded
simulation, so the output is a pure function of the spec: records are
collected, sorted by their canonical point key, and written as JSONL
with sorted keys and **no wall-clock fields** — the merged file is
byte-identical across repeat runs and across any ``--jobs`` count.
"""

from __future__ import annotations

import itertools
import json
from concurrent.futures import ProcessPoolExecutor
from typing import IO, Any, Dict, List, Sequence, Tuple

__all__ = [
    "SWEEP_SCHEMA_VERSION",
    "QUICK_SPEC",
    "load_spec",
    "validate_spec",
    "expand_points",
    "point_key",
    "run_point",
    "run_sweep",
    "write_jsonl",
]

SWEEP_SCHEMA_VERSION = 1

RUNNERS = ("rftp", "gridftp")

#: Keys whose values may be human-friendly size strings ("4M", "64K").
_SIZE_KEYS = {"bytes", "block_size"}

#: The built-in ``--quick`` spec: small enough for a CI smoke leg, wide
#: enough (4 points, 2 axes) to exercise sharding and the merge order.
QUICK_SPEC: Dict[str, Any] = {
    "runner": "rftp",
    "testbed": "ani-wan",
    "base": {"bytes": "16M", "seed": 0},
    "axes": {"channels": [1, 4], "block_size": ["1M", "4M"]},
}


def load_spec(path: str) -> dict:
    with open(path) as fh:
        spec = json.load(fh)
    validate_spec(spec)
    return spec


def validate_spec(spec: dict) -> None:
    """Raise ``ValueError`` unless ``spec`` is a well-formed sweep spec."""
    if not isinstance(spec, dict):
        raise ValueError("sweep spec must be a JSON object")
    runner = spec.get("runner")
    if runner not in RUNNERS:
        raise ValueError(f"unknown sweep runner {runner!r}; known: {RUNNERS}")
    base = spec.get("base", {})
    if not isinstance(base, dict):
        raise ValueError("sweep 'base' must be an object")
    axes = spec.get("axes", {})
    if not isinstance(axes, dict) or not axes:
        raise ValueError("sweep 'axes' must be a non-empty object")
    for name, values in axes.items():
        if not isinstance(values, list) or not values:
            raise ValueError(f"axis {name!r} must be a non-empty list")
    if "bytes" not in base and "bytes" not in axes:
        raise ValueError("sweep needs 'bytes' in base or axes")


def _coerce_sizes(params: dict) -> dict:
    from repro.cli import parse_size

    out = dict(params)
    for key in _SIZE_KEYS & out.keys():
        if isinstance(out[key], str):
            out[key] = parse_size(out[key])
    return out


def expand_points(spec: dict) -> List[dict]:
    """The spec's parameter grid, in deterministic order.

    Axis names iterate sorted, values in spec order; every point is the
    base dict overlaid with its axis assignment, size strings resolved
    to byte counts so the canonical key never depends on spelling.
    """
    base = _coerce_sizes(spec.get("base", {}))
    names = sorted(spec["axes"])
    points = []
    for combo in itertools.product(*(spec["axes"][n] for n in names)):
        point = dict(base)
        point.update(zip(names, combo))
        points.append(_coerce_sizes(point))
    return points


def point_key(params: dict) -> str:
    """Canonical identity of one point — the sort key of the merge."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def _run_rftp_point(testbed: str, params: dict) -> dict:
    from repro.apps.rftp import run_rftp
    from repro.core import ProtocolConfig
    from repro.testbeds import TESTBEDS

    tb = TESTBEDS[testbed](seed=int(params.get("seed", 0)))
    overrides: Dict[str, Any] = {}
    if "block_size" in params:
        overrides["block_size"] = int(params["block_size"])
    if "channels" in params:
        overrides["num_channels"] = int(params["channels"])
    if "pool" in params:
        overrides["source_blocks"] = int(params["pool"])
        overrides["sink_blocks"] = int(params["pool"])
    result = run_rftp(tb, int(params["bytes"]), ProtocolConfig(**overrides))
    return {
        "gbps": result.gbps,
        "sim_time": tb.engine.now,
        "events": tb.engine.events_processed,
        "blocks": result.outcome.blocks,
        "resends": result.outcome.resends,
    }


def _run_gridftp_point(testbed: str, params: dict) -> dict:
    from repro.apps.gridftp import run_gridftp
    from repro.testbeds import TESTBEDS

    tb = TESTBEDS[testbed](seed=int(params.get("seed", 0)))
    kwargs: Dict[str, Any] = {}
    if "streams" in params:
        kwargs["streams"] = int(params["streams"])
    if "block_size" in params:
        kwargs["block_size"] = int(params["block_size"])
    if "cc" in params:
        kwargs["cc"] = params["cc"]
    result = run_gridftp(tb, int(params["bytes"]), **kwargs)
    return {
        "gbps": result.gbps,
        "sim_time": tb.engine.now,
        "events": tb.engine.events_processed,
        "losses": result.losses,
    }


def run_point(task: Tuple[str, str, dict]) -> dict:
    """Run one sweep point; the pool's picklable unit of work.

    Returns the full record (params echoed back plus the simulation's
    result) so the parent never has to correlate by index.
    """
    runner, testbed, params = task
    if runner == "rftp":
        result = _run_rftp_point(testbed, params)
    elif runner == "gridftp":
        result = _run_gridftp_point(testbed, params)
    else:  # pragma: no cover - validate_spec rejects earlier
        raise ValueError(f"unknown runner {runner!r}")
    return {"params": params, "result": result}


def run_sweep(spec: dict, jobs: int = 0) -> List[dict]:
    """Expand, shard, run, and deterministically merge one sweep.

    ``jobs`` <= 1 runs inline (no pool); any larger value shards the
    points across that many worker processes.  The merge sorts by
    canonical point key, so the record order — and the serialized
    output — is independent of worker count and completion order.
    """
    validate_spec(spec)
    testbed = spec.get("testbed", "ani-wan")
    tasks = [(spec["runner"], testbed, p) for p in expand_points(spec)]
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            records = list(pool.map(run_point, tasks))
    else:
        records = [run_point(task) for task in tasks]
    records.sort(key=lambda r: point_key(r["params"]))
    return records


def write_jsonl(spec: dict, records: Sequence[dict], fh: IO[str]) -> None:
    """One header line plus one sorted-key line per point.

    Nothing wall-clock dependent is written — not even a date — so two
    runs of the same spec produce byte-identical files.
    """
    header = {
        "kind": "repro-sweep",
        "schema": SWEEP_SCHEMA_VERSION,
        "runner": spec["runner"],
        "testbed": spec.get("testbed", "ani-wan"),
        "points": len(records),
    }
    fh.write(json.dumps(header, sort_keys=True) + "\n")
    for record in records:
        fh.write(json.dumps(record, sort_keys=True, allow_nan=False) + "\n")
