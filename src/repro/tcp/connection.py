"""TCP connections: the socket-like API the GridFTP model is written to.

A connection charges the *application* costs (user/kernel copy, syscalls)
to the calling thread — the cost that pins GridFTP's single thread — and
the *kernel* per-byte costs (softirq, skb handling) as background CPU on
both hosts, which is why the paper's nmon traces show GridFTP consuming
more than one core in total.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Generator, Optional

from repro.sim.resources import Container
from repro.tcp.bic import Bic
from repro.tcp.congestion import CongestionControl, Reno
from repro.tcp.cubic import Cubic
from repro.tcp.htcp import HTcp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.cpu import CpuThread
    from repro.hardware.host import Host
    from repro.network.fabric import DuplexPath
    from repro.sim.engine import Engine
    from repro.tcp.bottleneck import Bottleneck

__all__ = ["TcpConnection", "TcpMode", "make_congestion_control"]

_ALGORITHMS = {
    "reno": Reno,
    "cubic": Cubic,
    "bic": Bic,
    "htcp": HTcp,
}


def make_congestion_control(name: str, mss: int = 8948) -> CongestionControl:
    """Instantiate a congestion-control algorithm by its Linux name."""
    try:
        cls = _ALGORITHMS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown congestion control {name!r}; known: {sorted(_ALGORITHMS)}"
        ) from None
    return cls(mss=mss)


class TcpMode(enum.Enum):
    #: LAN fast path: stream chunks through the real links (CPU-bound regime).
    PIPE = "pipe"
    #: WAN: round-based congestion-window fluid simulation.
    FLUID = "fluid"


class TcpConnection:
    """One TCP connection between two simulated hosts.

    Parameters
    ----------
    path:
        Duplex fabric path (required for :attr:`TcpMode.PIPE`; used for
        RTT bookkeeping in both modes when given).
    bottleneck:
        Shared :class:`~repro.tcp.bottleneck.Bottleneck` (required for
        :attr:`TcpMode.FLUID`).
    sndbuf / rcvbuf:
        Socket buffer sizes in bytes.  The paper tunes these to the BDP.
    """

    #: Granularity of the pipe-mode pump.
    PIPE_CHUNK = 256 * 1024

    def __init__(
        self,
        engine: "Engine",
        src: "Host",
        dst: "Host",
        mode: TcpMode,
        cc: str = "cubic",
        mss: int = 8948,
        path: Optional["DuplexPath"] = None,
        bottleneck: Optional["Bottleneck"] = None,
        sndbuf: float = 64 * 1024 * 1024,
        rcvbuf: float = 64 * 1024 * 1024,
    ) -> None:
        self.engine = engine
        self.src = src
        self.dst = dst
        self.mode = mode
        self.cc = make_congestion_control(cc, mss)
        self.path = path
        self.bottleneck = bottleneck
        self._sndbuf = Container(engine, capacity=sndbuf)
        self._rcvbuf = Container(engine, capacity=rcvbuf)
        reg = engine.metrics
        labels = {"cc": cc, "i": reg.sequence("tcp_connection")}
        self.bytes_delivered = reg.counter("tcp.bytes_delivered", **labels)
        reg.gauge_fn("tcp.losses", lambda: self.cc.losses, **labels)
        reg.gauge_fn("tcp.cwnd_bytes", lambda: self.cc.cwnd_bytes, **labels)
        self._closed = False

        if mode is TcpMode.PIPE:
            if path is None:
                raise ValueError("PIPE mode requires a fabric path")
            engine.process(self._pipe_pump())
        elif mode is TcpMode.FLUID:
            if bottleneck is None:
                raise ValueError("FLUID mode requires a bottleneck")
            bottleneck.attach(self)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown mode {mode!r}")

    # -- application-facing API ---------------------------------------------------
    def send(self, thread: "CpuThread", nbytes: int) -> Generator:
        """Process generator: write ``nbytes`` to the socket.

        Charges the user→kernel copy and one syscall to ``thread`` and
        blocks while the send buffer is full (backpressure).
        """
        if self._closed:
            raise RuntimeError("send on closed connection")
        spec = self.src.spec
        yield thread.exec(spec.syscall_seconds)
        # A single send() larger than the socket buffer trickles in as the
        # buffer drains, exactly like the real syscall; the user→kernel
        # copy is paid per chunk as the copy actually proceeds.
        remaining = nbytes
        max_chunk = max(min(self._sndbuf.capacity / 4.0, 4 * 1024 * 1024), 1.0)
        while remaining > 0:
            chunk = min(remaining, max_chunk)
            yield thread.exec(chunk * spec.memcpy_ns_per_byte * 1e-9)
            yield self._sndbuf.put(chunk)
            remaining -= chunk
            if self.mode is TcpMode.FLUID and self.bottleneck is not None:
                self.bottleneck.ensure_running()

    def recv(self, thread: "CpuThread", nbytes: int) -> Generator:
        """Process generator: read exactly ``nbytes`` from the socket.

        Blocks until that much data has been delivered; charges the
        kernel→user copy and one syscall to ``thread``.
        """
        spec = self.dst.spec
        yield thread.exec(spec.syscall_seconds)
        remaining = nbytes
        max_chunk = max(min(self._rcvbuf.capacity / 4.0, 4 * 1024 * 1024), 1.0)
        while remaining > 0:
            chunk = min(remaining, max_chunk)
            yield self._rcvbuf.get(chunk)
            yield thread.exec(chunk * spec.memcpy_ns_per_byte * 1e-9)
            remaining -= chunk
            if self.mode is TcpMode.FLUID and self.bottleneck is not None:
                # Freed receive-window space may unblock a parked sender.
                self.bottleneck.ensure_running()

    def close(self) -> None:
        """Detach from the bottleneck / stop pumping new data."""
        self._closed = True
        if self.mode is TcpMode.FLUID and self.bottleneck is not None:
            self.bottleneck.detach(self)

    @property
    def unsent_bytes(self) -> float:
        return self._sndbuf.level

    @property
    def unread_bytes(self) -> float:
        return self._rcvbuf.level

    # -- kernel cost accounting ---------------------------------------------------
    def _charge_kernel(self, nbytes: float) -> None:
        self.src.cpu.charge_background(
            nbytes * self.src.spec.tcp_kernel_ns_per_byte * 1e-9, "kernel"
        )
        self.dst.cpu.charge_background(
            nbytes * self.dst.spec.tcp_kernel_ns_per_byte * 1e-9, "kernel"
        )

    # -- PIPE mode: stream through the fabric links ----------------------------------
    def _pipe_pump(self) -> Generator:
        assert self.path is not None
        forward = self.path.forward
        while True:
            if self._closed and self._sndbuf.level == 0:
                return
            chunk = min(self.PIPE_CHUNK, self._sndbuf.level)
            if chunk <= 0:
                # Wait for data in small deterministic increments; the
                # chunk cadence bounds added latency to microseconds.
                yield self._sndbuf.get(1)
                chunk = 1 + min(self.PIPE_CHUNK - 1, self._sndbuf.level)
                if chunk > 1:
                    yield self._sndbuf.get(chunk - 1)
            else:
                yield self._sndbuf.get(chunk)
            yield from forward.transmit(int(chunk))
            self._charge_kernel(chunk)
            self.bytes_delivered.add(chunk)
            yield self._rcvbuf.put(chunk)

    # -- FLUID mode: bottleneck round callbacks ------------------------------------
    def fluid_quiescent(self) -> bool:
        """True when no process is parked on either socket buffer.

        The bottleneck's fluid round batcher may only integrate rounds
        ahead of the clock when a round cannot wake anything: a blocked
        ``send``/``recv`` waiter must be resumed at its exact instant.
        """
        return self._sndbuf.idle and self._rcvbuf.idle

    def offered_bytes(self) -> float:
        rwnd_free = self._rcvbuf.capacity - self._rcvbuf.level
        return min(self.cc.cwnd_bytes, self._sndbuf.level, rwnd_free)

    def round_result(self, delivered: float, lost: bool, now: float, rtt: float) -> None:
        if delivered > 0:
            # Remove from the send side and land on the receive side.
            taken = min(delivered, self._sndbuf.level)
            if taken > 0:
                self._sndbuf.get(taken)
                self._charge_kernel(taken)
                self.bytes_delivered.add(taken)
                self._rcvbuf.put(taken)
        if lost:
            self.cc.on_loss(now)
        elif delivered > 0:
            self.cc.on_round_acked(delivered, now, rtt)
