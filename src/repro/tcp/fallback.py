"""Framed block transport over a TCP connection (degraded mode).

When every data QP of a :class:`~repro.core.source_link.SourceLink` is
dead, the session negotiates ``TRANSPORT_FALLBACK`` and finishes the
dataset over a :class:`~repro.tcp.connection.TcpConnection` through the
same simulated fabric.  The byte-accurate TCP stack transfers *counts*;
this stream adds the framing the middleware needs: each frame is one
``(BlockHeader, payload)`` block, ``HEADER_BYTES + length`` on the wire,
delivered strictly FIFO.

The object side-channel deque is appended *before* the bytes enter the
send buffer, so by the time the receiver has pulled a frame's first
``HEADER_BYTES`` bytes the matching object is guaranteed to be queued —
the sim idiom for objects riding a byte-accurate transport.

End of the TCP phase (dataset finished, or promotion back to RDMA) is
signalled in-band with a header-sized EOF sentinel, so the sink drains
every preceding block before it answers ``TRANSPORT_RESTORE``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator, Optional, Tuple

from repro.core.messages import BlockHeader, HEADER_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.cpu import CpuThread
    from repro.tcp.connection import TcpConnection

__all__ = ["TcpBlockStream"]


class TcpBlockStream:
    """One direction of framed block transfer over a TcpConnection."""

    def __init__(self, conn: "TcpConnection") -> None:
        self.conn = conn
        self._frames: deque = deque()
        self.blocks_sent = 0
        self.blocks_received = 0

    def send_block(
        self, thread: "CpuThread", header: BlockHeader, payload: Any
    ) -> Generator:
        """Frame and send one block (blocks on TCP backpressure)."""
        self._frames.append((header, payload))
        yield from self.conn.send(thread, HEADER_BYTES + header.length)
        self.blocks_sent += 1

    def send_eof(self, thread: "CpuThread") -> Generator:
        """Send the end-of-stream sentinel (one header-sized frame)."""
        self._frames.append(None)
        yield from self.conn.send(thread, HEADER_BYTES)

    def recv_block(
        self, thread: "CpuThread"
    ) -> Generator:
        """Receive the next frame; returns ``(header, payload)`` or
        ``None`` at the EOF sentinel."""
        yield from self.conn.recv(thread, HEADER_BYTES)
        frame: Optional[Tuple[BlockHeader, Any]] = self._frames.popleft()
        if frame is None:
            return None
        header, _payload = frame
        if header.length:
            yield from self.conn.recv(thread, header.length)
        self.blocks_received += 1
        return frame

    def close(self) -> None:
        self.conn.close()
