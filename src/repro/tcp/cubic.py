"""CUBIC congestion control (Ha, Rhee, Xu — as standardised in RFC 8312).

The window follows a cubic function of time since the last loss,

    W_cubic(t) = C * (t - K)^3 + W_max,   K = cbrt(W_max * (1-beta) / C)

which plateaus near the previous saturation point ``W_max`` and then
probes aggressively — giving the high-BDP friendliness the ANL testbed
hosts were configured with (Table I lists ``cubic`` at both ANL and the
Stony Brook hosts).
"""

from __future__ import annotations

from repro.tcp.congestion import CongestionControl

__all__ = ["Cubic"]


class Cubic(CongestionControl):
    name = "cubic"

    #: RFC 8312 constants.
    C = 0.4
    BETA = 0.7

    def __init__(self, mss: int = 8948) -> None:
        super().__init__(mss)
        self.w_max = 0.0
        self._epoch_start: float | None = None
        self._k = 0.0

    def _exit_slow_start(self, now: float) -> None:
        self._epoch_start = None

    def _begin_epoch(self, now: float) -> None:
        self._epoch_start = now
        if self.w_max < self.cwnd_seg:
            # We recovered above the old ceiling: probe from here.
            self.w_max = self.cwnd_seg
        self._k = ((self.w_max * (1.0 - self.BETA)) / self.C) ** (1.0 / 3.0)

    def _avoid(self, acked_seg: float, now: float, rtt: float) -> None:
        if self._epoch_start is None:
            self._begin_epoch(now)
        t = now - self._epoch_start + rtt
        target = self.C * (t - self._k) ** 3 + self.w_max
        # TCP-friendly region (RFC 8312 §4.2): never slower than AIMD with
        # the equivalent average rate.
        elapsed = now - self._epoch_start
        w_est = (
            self.w_max * self.BETA
            + (3.0 * (1.0 - self.BETA) / (1.0 + self.BETA)) * (elapsed / max(rtt, 1e-9))
        )
        target = max(target, w_est)
        if target > self.cwnd_seg:
            # At most a 50% increase per round (RFC 8312 §4.1 clamp).
            self.cwnd_seg = min(target, self.cwnd_seg * 1.5)
        else:
            # Plateau region: creep forward slowly.
            self.cwnd_seg += 0.01 * acked_seg / max(self.cwnd_seg, 1.0)

    def _backoff(self, now: float) -> None:
        self.w_max = self.cwnd_seg
        self.cwnd_seg *= self.BETA
        self._epoch_start = None
