"""BIC congestion control (Xu, Harfoush, Rhee — Binary Increase Congestion
control), the default on the RoCE-LAN testbed hosts of Table I.

Between the window after a loss (``w_min``) and the window where the loss
occurred (``w_max``) BIC performs a binary search, moving halfway each
round but never more than ``S_MAX`` segments; past ``w_max`` it enters
max-probing with exponentially growing steps.
"""

from __future__ import annotations

from repro.tcp.congestion import CongestionControl

__all__ = ["Bic"]


class Bic(CongestionControl):
    name = "bic"

    #: Multiplicative decrease factor.
    BETA = 0.8
    #: Binary-search step clamps, in segments.
    S_MAX = 32.0
    S_MIN = 0.01
    #: Windows smaller than this use plain Reno behaviour.
    LOW_WINDOW = 14.0

    def __init__(self, mss: int = 8948) -> None:
        super().__init__(mss)
        self.w_max = float("inf")
        self._probe_step = 1.0

    def _avoid(self, acked_seg: float, now: float, rtt: float) -> None:
        if self.cwnd_seg < self.LOW_WINDOW:
            self.cwnd_seg += min(acked_seg / self.cwnd_seg, 1.0)
            return
        if self.cwnd_seg < self.w_max:
            # Binary search toward the last known saturation point.
            inc = (self.w_max - self.cwnd_seg) / 2.0
            inc = min(max(inc, self.S_MIN), self.S_MAX)
            self._probe_step = 1.0
        else:
            # Max probing: accelerate away from w_max.
            inc = min(self._probe_step, self.S_MAX)
            self._probe_step = min(self._probe_step * 2.0, self.S_MAX)
        self.cwnd_seg += inc

    def _backoff(self, now: float) -> None:
        if self.cwnd_seg < self.w_max:
            # Fast convergence: a flow still below the old ceiling gives
            # ground so newcomers can catch up.
            self.w_max = self.cwnd_seg * (2.0 - self.BETA) / 2.0
        else:
            self.w_max = self.cwnd_seg
        self.cwnd_seg *= self.BETA
        self._probe_step = 1.0
