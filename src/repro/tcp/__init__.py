"""Kernel TCP stack simulation for the GridFTP baseline.

Two complementary fidelity levels, selected per testbed:

- **pipe mode** (LAN): the bandwidth-delay product is a few segments, so
  congestion control is never the binding constraint — the host CPU is.
  Connections stream chunks straight through the shared
  :class:`~repro.network.fabric.Path` links, paying user/kernel copy and
  syscall CPU.
- **fluid mode** (WAN): a round-based (one step per RTT)
  congestion-window simulation over a shared drop-tail bottleneck, with
  Reno, CUBIC, BIC and H-TCP window-update rules.  This reproduces the
  single-stream underutilisation on a 49 ms path and its partial recovery
  with parallel streams — the behaviour GridFTP's WAN numbers hinge on.
"""

from repro.tcp.congestion import CongestionControl, Reno
from repro.tcp.cubic import Cubic
from repro.tcp.bic import Bic
from repro.tcp.htcp import HTcp
from repro.tcp.bottleneck import Bottleneck
from repro.tcp.connection import TcpConnection, TcpMode, make_congestion_control
from repro.tcp.fallback import TcpBlockStream

__all__ = [
    "Bic",
    "Bottleneck",
    "CongestionControl",
    "Cubic",
    "HTcp",
    "Reno",
    "TcpBlockStream",
    "TcpConnection",
    "TcpMode",
    "make_congestion_control",
]
