"""Congestion-control interface and the Reno reference algorithm.

Window arithmetic is done in *segments* (floats) internally and exposed in
bytes, matching how the kernel algorithms are specified.  Updates happen
once per round (≈ one RTT), the granularity of the fluid simulation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["CongestionControl", "Reno"]

#: Linux's default initial congestion window (RFC 6928).
INITIAL_CWND_SEGMENTS = 10.0


class CongestionControl(ABC):
    """Per-connection congestion state updated once per RTT round."""

    name = "base"

    def __init__(self, mss: int = 8948) -> None:
        if mss <= 0:
            raise ValueError("MSS must be positive")
        self.mss = mss
        self.cwnd_seg = INITIAL_CWND_SEGMENTS
        self.ssthresh_seg = float("inf")
        self.losses = 0

    # -- byte-facing API --------------------------------------------------------
    @property
    def cwnd_bytes(self) -> float:
        return self.cwnd_seg * self.mss

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd_seg < self.ssthresh_seg

    #: Rounds that used less than this fraction of cwnd are application-
    #: or receive-window-limited; growing cwnd then would let it inflate
    #: arbitrarily beyond what the path has validated (RFC 7661).
    _CWND_USED_THRESHOLD = 0.85

    def on_round_acked(self, acked_bytes: float, now: float, rtt: float) -> None:
        """All data of the last round was acknowledged."""
        if acked_bytes < 0:
            raise ValueError("acked bytes must be non-negative")
        if acked_bytes < self._CWND_USED_THRESHOLD * self.cwnd_bytes:
            return  # window not the constraint: do not grow an unvalidated cwnd
        acked_seg = acked_bytes / self.mss
        if self.in_slow_start:
            # Exponential growth: one extra segment per segment acked,
            # clamped at ssthresh.
            self.cwnd_seg = min(self.cwnd_seg + acked_seg, max(self.ssthresh_seg, self.cwnd_seg))
            if not self.in_slow_start:
                self._exit_slow_start(now)
            return
        self._avoid(acked_seg, now, rtt)

    def on_loss(self, now: float) -> None:
        """A loss (triple-dupack equivalent) was detected this round."""
        self.losses += 1
        self._backoff(now)
        self.cwnd_seg = max(self.cwnd_seg, 2.0)
        self.ssthresh_seg = max(self.cwnd_seg, 2.0)

    # -- algorithm hooks ------------------------------------------------------------
    def _exit_slow_start(self, now: float) -> None:
        """Called once when cwnd first reaches ssthresh."""

    @abstractmethod
    def _avoid(self, acked_seg: float, now: float, rtt: float) -> None:
        """Congestion-avoidance window update for one acked round."""

    @abstractmethod
    def _backoff(self, now: float) -> None:
        """Multiplicative decrease on loss; must shrink ``cwnd_seg``."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} cwnd={self.cwnd_seg:.1f}seg losses={self.losses}>"


class Reno(CongestionControl):
    """Classic AIMD: +1 segment per RTT, halve on loss."""

    name = "reno"

    def _avoid(self, acked_seg: float, now: float, rtt: float) -> None:
        # +1 MSS per cwnd's worth of acks == +1 MSS per RTT when the
        # window is fully used; scale by utilisation of the round.
        self.cwnd_seg += min(acked_seg / self.cwnd_seg, 1.0)

    def _backoff(self, now: float) -> None:
        self.cwnd_seg *= 0.5
