"""A shared drop-tail bottleneck driving round-based TCP dynamics.

Every RTT the bottleneck collects each attached flow's offered window,
serves up to one bandwidth-delay product plus the queue it can absorb,
and — on overflow — marks a minimal random subset of flows with a loss,
which models the partial (de)synchronisation of drop-tail queues that
makes parallel streams outperform a single stream on long paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional, Protocol

import numpy as np


if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["Bottleneck", "FluidFlow"]


class FluidFlow(Protocol):
    """What the bottleneck needs from an attached flow."""

    def offered_bytes(self) -> float:
        """Bytes the flow would send this round (cwnd-, data-, rwnd-capped)."""

    def round_result(self, delivered: float, lost: bool, now: float, rtt: float) -> None:
        """Deliver the round's outcome back to the flow."""


class Bottleneck:
    """The shared queue of a WAN path (capacity in bytes/second)."""

    def __init__(
        self,
        engine: "Engine",
        capacity_bytes_per_second: float,
        rtt: float,
        buffer_bytes: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        random_loss_per_byte: float = 0.0,
    ) -> None:
        if capacity_bytes_per_second <= 0:
            raise ValueError("capacity must be positive")
        if rtt <= 0:
            raise ValueError("RTT must be positive")
        if random_loss_per_byte < 0:
            raise ValueError("loss rate must be non-negative")
        self.engine = engine
        self.capacity = capacity_bytes_per_second
        self.rtt = rtt
        #: Router buffer; the classic provisioning rule is one BDP.
        self.buffer_bytes = (
            buffer_bytes if buffer_bytes is not None else capacity_bytes_per_second * rtt
        )
        #: Background loss probability per byte — long-haul circuits are
        #: not loss-free, and loss sensitivity is exactly what separates a
        #: single TCP stream from a parallel aggregate on a 49 ms path.
        self.random_loss_per_byte = random_loss_per_byte
        self.rng = rng or np.random.default_rng(0)
        self._flows: List[FluidFlow] = []
        self._queue = 0.0
        self._running = False
        #: Escape hatch for the fluid round batcher: set ``False`` to
        #: force one kernel timer per RTT round even when the engine
        #: runs fluid.
        self.use_fluid = True
        reg = engine.metrics
        labels = {"i": reg.sequence("bottleneck")}
        self.bytes_served = reg.counter("tcp.bottleneck_bytes_served", **labels)
        self.bytes_dropped = reg.counter("tcp.bottleneck_bytes_dropped", **labels)
        self._m_loss_rounds = reg.counter("tcp.bottleneck_loss_rounds", **labels)
        reg.gauge_fn("tcp.bottleneck_queue_bytes", lambda: self._queue, **labels)

    @property
    def loss_rounds(self) -> int:
        return int(self._m_loss_rounds.total)

    @property
    def queue_bytes(self) -> float:
        return self._queue

    def attach(self, flow: FluidFlow) -> None:
        self._flows.append(flow)
        self.ensure_running()

    def detach(self, flow: FluidFlow) -> None:
        if flow in self._flows:
            self._flows.remove(flow)

    def ensure_running(self) -> None:
        """(Re)start the round loop — call when a parked flow gets data.

        The loop parks itself when every flow is idle so that a finished
        simulation can drain its event queue; connections poke it from
        ``send``/``recv``.
        """
        if not self._running and self._flows:
            self._running = True
            self.engine.process(self._round_loop())

    # -- the per-RTT round -----------------------------------------------------
    def _round_loop(self) -> Generator:
        idle_rounds = 0
        engine = self.engine
        while self._flows and idle_rounds < 2:
            progressed = self._step_round(engine.now)
            idle_rounds = 0 if progressed else idle_rounds + 1
            wake = engine.now + self.rtt
            if progressed and self._batch_ok():
                # Fluid fast-forward: while no foreign event is due
                # before the next round and every flow is quiescent (no
                # parked socket-buffer waiters a round could wake), run
                # the rounds back-to-back at their virtual times and
                # sleep once.  ``wake`` advances by the same ``+ rtt``
                # float chain the per-round timers would produce, and
                # the rng draws happen in the same order, so results
                # are bit-identical — only the timer count drops.
                horizon = engine.peek()
                while wake < horizon and self._flows:
                    progressed = self._step_round(wake)
                    wake = wake + self.rtt
                    if not progressed:
                        idle_rounds = 1
                        break
                    if not self._batch_ok():
                        break
            yield engine.timeout_at(wake)
        self._running = False
        # A flow may have buffered data during the final idle sleep — its
        # send-side poke saw ``_running`` still True and was a no-op.
        # Re-arm rather than strand that data until the next poke (which,
        # for a sender that already returned, never comes).
        if any(f.offered_bytes() > 0.0 for f in self._flows):
            self.ensure_running()

    def _batch_ok(self) -> bool:
        """True when rounds may be integrated ahead of the clock.

        Requires fluid mode (engine and bottleneck), no tracer (trace
        records carry real timestamps), and every flow quiescent — a
        flow without ``fluid_quiescent`` (or reporting False, i.e. a
        process is parked on one of its socket buffers) pins the loop to
        real time so wakeups happen at their exact instants.
        """
        engine = self.engine
        if not engine.use_fluid or not self.use_fluid or engine.tracer is not None:
            return False
        for flow in self._flows:
            quiescent = getattr(flow, "fluid_quiescent", None)
            if quiescent is None or not quiescent():
                return False
        return True

    def _step_round(self, now: float) -> bool:
        flows = list(self._flows)
        arrivals = np.array([max(f.offered_bytes(), 0.0) for f in flows])
        total = float(arrivals.sum())
        cap_round = self.capacity * self.rtt

        # Queue evolution: this round's arrivals join the backlog; one
        # round's worth of capacity drains it.
        backlog = self._queue + total
        served = min(backlog, cap_round)
        queue_after = backlog - served
        overflow = max(0.0, queue_after - self.buffer_bytes)
        self._queue = min(queue_after, self.buffer_bytes)

        dropped = np.zeros(len(flows))
        if overflow > 0.0 and total > 0.0:
            self._m_loss_rounds.add()
            dropped = self._mark_losses(flows, arrivals, overflow)
            self.engine.trace(
                "tcp", "overflow",
                overflow=int(overflow), queue=int(self._queue), flows=len(flows),
            )

        # Independent background loss per flow (transient path errors).
        if self.random_loss_per_byte > 0.0 and total > 0.0:
            p_loss = 1.0 - np.exp(-arrivals * self.random_loss_per_byte)
            hits = self.rng.random(len(flows)) < p_loss
            for i in np.nonzero(hits)[0]:
                # A handful of segments retransmitted: negligible goodput
                # loss, but the congestion window takes the cut.
                dropped[i] = max(dropped[i], 1.0)

        delivered = np.maximum(arrivals - dropped, 0.0)
        self.bytes_served.add(float(delivered.sum()))
        self.bytes_dropped.add(float(dropped.sum()))
        for flow, dlv, drp in zip(flows, delivered, dropped):
            flow.round_result(float(dlv), bool(drp > 0.0), now, self.rtt)
        return total > 0.0 or self._queue > 0.0

    def _mark_losses(
        self, flows: List[FluidFlow], arrivals: np.ndarray, overflow: float
    ) -> np.ndarray:
        """Pick a minimal random set of flows to take the loss.

        Marking stops once the *projected* window reduction of the marked
        flows (a conservative 30 % of their arrival) covers the overflow,
        so under small overloads only some flows back off — the
        desynchronisation that lets stream aggregates hold utilisation.
        """
        order = [i for i in self.rng.permutation(len(flows)) if arrivals[i] > 0.0]
        marked: List[int] = []
        projected = 0.0
        for idx in order:
            marked.append(idx)
            projected += 0.3 * arrivals[idx]
            if projected >= overflow:
                break
        dropped = np.zeros(len(flows))
        marked_total = float(arrivals[marked].sum())
        if marked_total <= 0.0:
            return dropped
        for idx in marked:
            dropped[idx] = overflow * arrivals[idx] / marked_total
            dropped[idx] = min(dropped[idx], arrivals[idx])
        return dropped
