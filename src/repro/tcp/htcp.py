"""H-TCP congestion control (Leith & Shorten), used on the NERSC WAN host.

The additive-increase factor grows with the *time since the last loss*:

    alpha(D) = 1                                   for D <= D_L
    alpha(D) = 1 + 10 (D - D_L) + ((D - D_L)/2)^2  for D  > D_L

scaled by 2(1 - beta) for backoff fairness; beta adapts to the ratio of
minimum to maximum observed RTT, bounded to [0.5, 0.8].
"""

from __future__ import annotations

from repro.tcp.congestion import CongestionControl

__all__ = ["HTcp"]


class HTcp(CongestionControl):
    name = "htcp"

    #: Low-speed regime threshold, seconds since last backoff.
    DELTA_L = 1.0

    def __init__(self, mss: int = 8948) -> None:
        super().__init__(mss)
        self._last_backoff: float = 0.0
        self._rtt_min = float("inf")
        self._rtt_max = 0.0
        self.beta = 0.5

    def _observe_rtt(self, rtt: float) -> None:
        self._rtt_min = min(self._rtt_min, rtt)
        self._rtt_max = max(self._rtt_max, rtt)

    def _alpha(self, now: float) -> float:
        delta = now - self._last_backoff
        if delta <= self.DELTA_L:
            alpha = 1.0
        else:
            excess = delta - self.DELTA_L
            alpha = 1.0 + 10.0 * excess + (excess / 2.0) ** 2
        return 2.0 * (1.0 - self.beta) * alpha

    def _avoid(self, acked_seg: float, now: float, rtt: float) -> None:
        self._observe_rtt(rtt)
        utilisation = min(acked_seg / max(self.cwnd_seg, 1e-9), 1.0)
        self.cwnd_seg += self._alpha(now) * utilisation

    def _backoff(self, now: float) -> None:
        if self._rtt_max > 0:
            self.beta = min(max(self._rtt_min / self._rtt_max, 0.5), 0.8)
        self._last_backoff = now
        self.cwnd_seg *= self.beta
