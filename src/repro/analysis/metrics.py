"""Bandwidth meters and latency summaries."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Sequence

import numpy as np

from repro.obs.stats import exact_percentile, mean
from repro.sim.monitor import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["BandwidthMeter", "summarize_latencies"]


class BandwidthMeter:
    """Records byte completions and reports windowed rates."""

    def __init__(self, engine: "Engine", name: str = "bw") -> None:
        self.engine = engine
        self.series = TimeSeries(name)
        self._started = engine.now

    def record(self, nbytes: float) -> None:
        self.series.record(self.engine.now, nbytes)

    @property
    def total_bytes(self) -> float:
        return float(np.sum(self.series.values)) if len(self.series) else 0.0

    def gbps(self, since: float = 0.0) -> float:
        """Average rate in Gbps from ``since`` until now."""
        span = self.engine.now - max(since, self._started)
        if span <= 0:
            return 0.0
        times = self.series.times
        mask = times >= since
        return float(np.sum(self.series.values[mask]) * 8.0 / span / 1e9)


def summarize_latencies(latencies_s: Sequence[float]) -> Dict[str, float]:
    """Mean / p50 / p90 / p99 / max of a latency sample, in microseconds."""
    if len(latencies_s) == 0:
        return {k: float("nan") for k in ("mean", "p50", "p90", "p99", "max")}
    us = [v * 1e6 for v in latencies_s]
    return {
        "mean": mean(us),
        "p50": exact_percentile(us, 50),
        "p90": exact_percentile(us, 90),
        "p99": exact_percentile(us, 99),
        "max": float(max(us)),
    }
