"""Measurement and reporting helpers for experiments."""

from repro.analysis.metrics import BandwidthMeter, summarize_latencies
from repro.analysis.report import Series, Table, format_gbps, format_pct

__all__ = [
    "BandwidthMeter",
    "Series",
    "Table",
    "format_gbps",
    "format_pct",
    "summarize_latencies",
]
