"""ASCII tables and series for benchmark output.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output consistent and parseable.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Table", "Series", "format_gbps", "format_pct"]

# ``summarize_latencies`` returns NaN for empty samples (e.g. GridFTP
# runs that never record per-block latency); render those cells as an
# em-dash instead of "    nan".


def format_gbps(value: float) -> str:
    if value is None or math.isnan(value):
        return "—".rjust(7)
    return f"{value:7.2f}"


def format_pct(value: float) -> str:
    if value is None or math.isnan(value):
        return "—".rjust(7)
    return f"{value:6.1f}%"


class Table:
    """A fixed-column ASCII table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        head = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        body = "\n".join(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
            for row in self.rows
        )
        parts = [f"== {self.title} ==", head, sep]
        if body:
            parts.append(body)
        return "\n".join(parts)

    def print(self) -> None:
        print("\n" + self.render())


class Series:
    """A labelled (x, y) series — one curve of a paper figure."""

    def __init__(self, label: str, x_name: str = "x", y_name: str = "y") -> None:
        self.label = label
        self.x_name = x_name
        self.y_name = y_name
        self.points: List[Dict[str, float]] = []

    def add(self, x: float, y: float, **extra: float) -> None:
        self.points.append({self.x_name: x, self.y_name: y, **extra})

    def ys(self) -> List[float]:
        return [p[self.y_name] for p in self.points]

    def xs(self) -> List[float]:
        return [p[self.x_name] for p in self.points]

    def y_at(self, x: float) -> Optional[float]:
        for p in self.points:
            if p[self.x_name] == x:
                return p[self.y_name]
        return None

    def render(self) -> str:
        pts = "  ".join(
            f"({p[self.x_name]:g}, {p[self.y_name]:.2f})" for p in self.points
        )
        return f"{self.label}: {pts}"
