"""Data sources and sinks for transfer applications.

A *source* provides ``read(thread, nbytes, seq)`` and a *sink* provides
``write(thread, nbytes, header, payload)``; both are process generators
so they can charge CPU time and block on devices.  These mirror the
paper's test configurations: memory-to-memory runs read /dev/zero and
write /dev/null; memory-to-disk runs hit the RAID array with either
POSIX or direct I/O.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.messages import BlockHeader
    from repro.hardware.cpu import CpuThread
    from repro.hardware.disk import DiskArray
    from repro.hardware.host import Host

__all__ = [
    "ZeroSource",
    "PatternSource",
    "NullSink",
    "CollectingSink",
    "DiskSource",
    "DiskSink",
]


class ZeroSource:
    """Reads from /dev/zero: pure memset cost on the loading thread.

    The paper measures this at ~50 % of one core at 25 Gbps — the
    dominant CPU term for RFTP at large block sizes (Amdahl's-law floor).
    """

    def __init__(self, host: "Host") -> None:
        self.host = host
        self.bytes_read = 0

    def read(self, thread: "CpuThread", nbytes: int, seq: int) -> Generator:
        cost = (
            self.host.spec.syscall_seconds
            + nbytes * self.host.spec.memset_ns_per_byte * 1e-9
        )
        yield thread.exec(cost)
        self.bytes_read += nbytes
        return None  # zeros carry no information


class PatternSource:
    """Deterministic verifiable payloads (for correctness tests)."""

    def __init__(self, host: "Host", tag: str = "blk") -> None:
        self.host = host
        self.tag = tag
        self.bytes_read = 0

    def read(self, thread: "CpuThread", nbytes: int, seq: int) -> Generator:
        cost = nbytes * self.host.spec.memset_ns_per_byte * 1e-9
        yield thread.exec(cost)
        self.bytes_read += nbytes
        return (self.tag, seq, nbytes)


class NullSink:
    """Writes to /dev/null: one cheap syscall, no per-byte cost."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        self.bytes_written = 0

    def write(
        self, thread: "CpuThread", nbytes: int, header: Any = None, payload: Any = None
    ) -> Generator:
        yield thread.exec(self.host.spec.syscall_seconds)
        self.bytes_written += nbytes


class CollectingSink:
    """Records every delivered (header, payload) in arrival order."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        self.deliveries: List[Tuple[Any, Any]] = []
        self.bytes_written = 0

    def write(
        self, thread: "CpuThread", nbytes: int, header: Any = None, payload: Any = None
    ) -> Generator:
        yield thread.exec(self.host.spec.syscall_seconds)
        self.deliveries.append((header, payload))
        self.bytes_written += nbytes


class DiskSource:
    """Reads file data from the host's disk array."""

    def __init__(self, host: "Host", direct: bool = True) -> None:
        if host.disk is None:
            raise RuntimeError(f"host {host.name} has no disk array")
        self.host = host
        self.disk: "DiskArray" = host.disk
        self.direct = direct
        self.bytes_read = 0

    def read(self, thread: "CpuThread", nbytes: int, seq: int) -> Generator:
        yield from self.disk.read(thread, nbytes, direct=self.direct)
        self.bytes_read += nbytes
        return ("disk", seq, nbytes)


class DiskSink:
    """Writes delivered blocks to the host's disk array.

    ``direct=True`` is RFTP's mode (O_DIRECT onto the RAID);
    ``direct=False`` models POSIX buffered writes (the page-cache copy
    lands on the writer thread).
    """

    def __init__(self, host: "Host", direct: bool = True) -> None:
        if host.disk is None:
            raise RuntimeError(f"host {host.name} has no disk array")
        self.host = host
        self.disk: "DiskArray" = host.disk
        self.direct = direct
        self.bytes_written = 0

    def write(
        self,
        thread: "CpuThread",
        nbytes: int,
        header: Optional["BlockHeader"] = None,
        payload: Any = None,
    ) -> Generator:
        yield from self.disk.write(thread, nbytes, direct=self.direct)
        self.bytes_written += nbytes
