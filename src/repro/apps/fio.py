"""An fio-style RDMA I/O engine (§III-B's measurement tool).

The engine opens one RC QP pair, keeps ``iodepth`` operations in flight,
and measures bandwidth, per-operation latency percentiles, and CPU on
both hosts — for all three semantics the paper compares:

- ``write``: requester RDMA-WRITEs into a remote region (one-sided),
- ``read``: requester RDMA-READs from a remote region (one-sided; feels
  the responder read-engine gap and the ORD outstanding-read limit),
- ``send``: SEND/RECV (two-sided; the responder burns CPU posting
  receives and reaping completions — the high-CPU finding of Figs 3/4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List

from repro.obs.stats import exact_percentile, mean
from repro.sim.events import Event
from repro.testbeds import Testbed
from repro.verbs import (
    AccessFlags,
    CompletionChannel,
    Opcode,
    RecvWR,
    SendWR,
    connect_pair,
)

__all__ = ["FioJob", "FioResult", "run_fio"]

_SEMANTICS = ("write", "read", "send")


@dataclass(frozen=True)
class FioJob:
    """One fio job specification."""

    semantics: str = "write"
    block_size: int = 128 * 1024
    iodepth: int = 16
    total_blocks: int = 4096
    #: Busy-poll the CQ instead of sleeping on the completion channel:
    #: lower completion latency, strictly more CPU (the classic trade-off
    #: behind the paper's interrupt-count observations).
    busy_poll: bool = False

    def __post_init__(self) -> None:
        if self.semantics not in _SEMANTICS:
            raise ValueError(f"semantics must be one of {_SEMANTICS}")
        if self.block_size < 1:
            raise ValueError("block size must be positive")
        if self.iodepth < 1:
            raise ValueError("iodepth must be >= 1")
        if self.total_blocks < 1:
            raise ValueError("total_blocks must be >= 1")


@dataclass
class FioResult:
    """Measurements from one fio run."""

    job: FioJob
    elapsed: float
    bytes: int
    gbps: float
    #: Requester-host CPU, percent of one core.
    src_cpu_pct: float
    #: Responder-host CPU (≈0 for one-sided semantics).
    dst_cpu_pct: float
    #: Source + sink CPU combined — the paper's "CPU consumption" axis.
    total_cpu_pct: float
    lat_mean_us: float
    lat_p50_us: float
    lat_p99_us: float
    _latencies: List[float] = field(default_factory=list, repr=False)


def run_fio(testbed: Testbed, job: FioJob) -> FioResult:
    """Execute ``job`` on ``testbed`` and return the measurements."""
    engine = testbed.engine
    pd_src = testbed.src_dev.alloc_pd()
    pd_dst = testbed.dst_dev.alloc_pd()
    send_cq = testbed.src_dev.create_cq(depth=1 << 16)
    recv_cq_src = testbed.src_dev.create_cq(depth=1 << 16)
    send_cq_dst = testbed.dst_dev.create_cq(depth=1 << 16)
    recv_cq_dst = testbed.dst_dev.create_cq(depth=1 << 16)
    depth = max(job.iodepth * 2, 64)
    qp_src = testbed.src_dev.create_qp(
        pd_src, send_cq, recv_cq_src, max_send_wr=depth, max_recv_wr=depth * 2
    )
    qp_dst = testbed.dst_dev.create_qp(
        pd_dst, send_cq_dst, recv_cq_dst, max_send_wr=depth, max_recv_wr=depth * 2
    )
    connect_pair(qp_src, qp_dst, testbed.duplex)

    # One remote region, one slot per in-flight op (regions are reused —
    # registration happens once, as the middleware does).
    remote_buf = testbed.dst.memory.alloc(job.block_size * job.iodepth)
    remote_mr = pd_dst.reg_mr_sync(
        remote_buf, AccessFlags.REMOTE_WRITE | AccessFlags.REMOTE_READ
    )

    src_thread = testbed.src.thread("fio-src", "app")
    src_cq_thread = testbed.src.thread("fio-src-cq", "app")
    dst_thread = testbed.dst.thread("fio-dst", "app")
    profile_src = testbed.src_dev.arch_profile
    profile_dst = testbed.dst_dev.arch_profile

    post_times: Dict[int, float] = {}
    latencies: List[float] = []
    finished = Event(engine)

    opcode = {
        "write": Opcode.RDMA_WRITE,
        "read": Opcode.RDMA_READ,
        "send": Opcode.SEND,
    }[job.semantics]

    def submitter() -> Generator:
        posted = 0
        while posted < job.total_blocks:
            if qp_src.send_outstanding >= job.iodepth or qp_src.send_room == 0:
                yield engine.timeout(1e-6)
                continue
            slot = posted % job.iodepth
            yield src_thread.exec(profile_src.post_send_seconds)
            post_times[posted] = engine.now
            qp_src.post_send(
                SendWR(
                    opcode=opcode,
                    length=job.block_size,
                    wr_id=posted,
                    remote_addr=remote_buf.addr + slot * job.block_size,
                    rkey=remote_mr.rkey,
                    payload=("fio", posted),
                )
            )
            posted += 1

    def reaper() -> Generator:
        channel = None if job.busy_poll else CompletionChannel(send_cq)
        done = 0
        while done < job.total_blocks:
            if channel is not None:
                yield channel.wait(src_cq_thread)
            wcs = yield send_cq.poll(src_cq_thread, max_entries=depth)
            if not wcs and channel is None:
                # Busy-poll spin: the polling core burns flat out.
                yield src_cq_thread.exec(1e-6)
                continue
            for wc in wcs:
                if not wc.ok:
                    raise RuntimeError(f"fio completion error: {wc.status}")
                latencies.append(engine.now - post_times.pop(wc.wr_id))
                done += 1
        finished.succeed(done)

    def responder() -> Generator:
        """SEND semantics only: post receives and reap receive CQEs."""
        channel = CompletionChannel(recv_cq_dst)
        for i in range(min(depth * 2, job.total_blocks + job.iodepth)):
            yield dst_thread.exec(profile_dst.post_recv_seconds)
            qp_dst.post_recv(RecvWR(length=job.block_size, wr_id=i))
        reaped = 0
        while reaped < job.total_blocks:
            yield channel.wait(dst_thread)
            wcs = yield recv_cq_dst.poll(dst_thread, max_entries=depth)
            for wc in wcs:
                reaped += 1
                if reaped + job.iodepth <= job.total_blocks + job.iodepth:
                    yield dst_thread.exec(profile_dst.post_recv_seconds)
                    qp_dst.post_recv(RecvWR(length=job.block_size, wr_id=wc.wr_id))

    testbed.src.cpu.reset_accounting()
    testbed.dst.cpu.reset_accounting()
    start = engine.now
    engine.process(submitter())
    engine.process(reaper())
    if job.semantics == "send":
        engine.process(responder())
    engine.run()
    if not finished.triggered:
        raise RuntimeError("fio run did not complete")
    elapsed = engine.now - start
    total_bytes = job.total_blocks * job.block_size
    lat_us = [v * 1e6 for v in latencies]
    src_cpu = testbed.src.cpu.utilization_pct()
    dst_cpu = testbed.dst.cpu.utilization_pct()
    return FioResult(
        job=job,
        elapsed=elapsed,
        bytes=total_bytes,
        gbps=total_bytes * 8.0 / elapsed / 1e9,
        src_cpu_pct=src_cpu,
        dst_cpu_pct=dst_cpu,
        total_cpu_pct=src_cpu + dst_cpu,
        lat_mean_us=mean(lat_us),
        lat_p50_us=exact_percentile(lat_us, 50),
        lat_p99_us=exact_percentile(lat_us, 99),
        _latencies=latencies,
    )
