"""A behavioural model of GridFTP (globus-url-copy, MODE E, threaded
flavour) — the paper's baseline.

What the paper's ``strace`` analysis found, and what this model encodes:
GridFTP "only used a single thread to handle regular file operations,
such as reading and writing data, and also network events, such as
multiplexing, sending and receiving data".  So:

- the **client** runs ONE application thread that, for every block,
  loads data (memset for /dev/zero) *and* pays the user→kernel copy and
  syscall of ``send()`` — across however many parallel TCP streams are
  configured (MODE E stripes blocks round-robin);
- the **server** runs ONE application thread that multiplexes
  ``recv()`` across the streams and writes to the sink (POSIX I/O — the
  paper notes GridFTP had no direct-I/O support);
- the kernel's per-byte TCP costs land on other cores (charged as
  background), which is why total host CPU exceeds 100 % while goodput
  is capped by the one application core.

Authentication is off (as in the paper's runs) and the control channel
is not modelled — it is idle during a transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.apps.io import NullSink, ZeroSource
from repro.sim.events import Event
from repro.tcp import TcpConnection
from repro.testbeds import Testbed

__all__ = ["GridFtpPair", "GridFtpResult", "run_gridftp"]

#: MODE E extended-block header (descriptor + count + offset), bytes.
MODE_E_HEADER = 17


@dataclass(frozen=True)
class GridFtpResult:
    """One completed GridFTP run."""

    bytes: int
    elapsed: float
    gbps: float
    #: Client host CPU, percent of one core — application + kernel.
    client_cpu_pct: float
    server_cpu_pct: float
    #: Application-thread-only utilisation (capped at 100 by construction).
    client_app_cpu_pct: float
    server_app_cpu_pct: float
    streams: int
    block_size: int
    losses: int


class GridFtpPair:
    """A client/server GridFTP transfer over N parallel TCP streams."""

    def __init__(
        self,
        testbed: Testbed,
        streams: int = 1,
        block_size: int = 1 << 20,
        cc: Optional[str] = None,
        source: Any = None,
        sink: Any = None,
    ) -> None:
        if streams < 1:
            raise ValueError("streams must be >= 1")
        if block_size < 4096:
            raise ValueError("block size below 4 KiB is not realistic")
        self.testbed = testbed
        self.streams = streams
        self.block_size = block_size
        self.source = source if source is not None else ZeroSource(testbed.src)
        self.sink = sink if sink is not None else NullSink(testbed.dst)
        self.conns: List[TcpConnection] = [
            testbed.tcp_connection(cc=cc) for _ in range(streams)
        ]
        self.done: Event = Event(testbed.engine)
        self._received = 0

    # -- the two single-threaded event loops --------------------------------------
    def _client_loop(self, total_bytes: int) -> Generator:
        thread = self.testbed.src.thread("gridftp-client", "app")
        sent = 0
        seq = 0
        while sent < total_bytes:
            nbytes = min(self.block_size, total_bytes - sent)
            # Read from the data source (on THIS thread: the strace
            # finding), then send on the next stream round-robin.
            yield from self.source.read(thread, nbytes, seq)
            conn = self.conns[seq % self.streams]
            yield from conn.send(thread, nbytes + MODE_E_HEADER)
            sent += nbytes
            seq += 1

    def _server_loop(self, total_bytes: int) -> Generator:
        thread = self.testbed.dst.thread("gridftp-server", "app")
        received = 0
        seq = 0
        while received < total_bytes:
            nbytes = min(self.block_size, total_bytes - received)
            conn = self.conns[seq % self.streams]
            # recv() the block (blocking; sender round-robins identically
            # so this matches a select() loop's service order), then write
            # to the sink on the same thread.
            yield from conn.recv(thread, nbytes + MODE_E_HEADER)
            yield from self.sink.write(thread, nbytes, None, None)
            received += nbytes
            seq += 1
        self._received = received
        self.done.succeed(received)

    def start(self, total_bytes: int) -> Event:
        """Launch both loops; returns the completion event."""
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        engine = self.testbed.engine
        engine.process(self._client_loop(total_bytes))
        engine.process(self._server_loop(total_bytes))
        return self.done


def run_gridftp(
    testbed: Testbed,
    total_bytes: int,
    streams: int = 1,
    block_size: int = 1 << 20,
    cc: Optional[str] = None,
    source: Any = None,
    sink: Any = None,
) -> GridFtpResult:
    """Run one GridFTP transfer to completion and measure it."""
    pair = GridFtpPair(testbed, streams, block_size, cc, source, sink)
    testbed.src.cpu.reset_accounting()
    testbed.dst.cpu.reset_accounting()
    start = testbed.engine.now
    done = pair.start(total_bytes)
    testbed.engine.run()
    if not done.triggered:
        raise RuntimeError("GridFTP transfer did not complete")
    elapsed = testbed.engine.now - start
    for conn in pair.conns:
        conn.close()
    return GridFtpResult(
        bytes=total_bytes,
        elapsed=elapsed,
        gbps=total_bytes * 8.0 / elapsed / 1e9,
        client_cpu_pct=testbed.src.cpu.utilization_pct(),
        server_cpu_pct=testbed.dst.cpu.utilization_pct(),
        client_app_cpu_pct=testbed.src.cpu.utilization_pct("app"),
        server_app_cpu_pct=testbed.dst.cpu.utilization_pct("app"),
        streams=streams,
        block_size=block_size,
        losses=sum(conn.cc.losses for conn in pair.conns),
    )
