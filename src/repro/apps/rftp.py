"""RFTP: the paper's RDMA-enabled FTP, as a thin application layer.

RFTP is deliberately small — the heavy lifting (credit flow control,
parallel QPs, reassembly, zero-copy block management) lives in the
middleware.  The server binds a data sink behind a listening port; the
client issues ``put`` transfers.  ``run_rftp`` is the one-call harness
used by the examples and benchmarks: it wires a client/server pair onto
a testbed, runs the transfer, and reports bandwidth plus nmon-style CPU
utilisation for both hosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.apps.io import NullSink, ZeroSource
from repro.core import ProtocolConfig, RdmaMiddleware, TransferOutcome
from repro.core.errors import TransferError
from repro.testbeds import Testbed

__all__ = ["RftpServer", "RftpClient", "RftpResult", "run_rftp"]


class RftpServer:
    """The receiving daemon: middleware + a data sink."""

    def __init__(
        self,
        testbed: Testbed,
        config: Optional[ProtocolConfig] = None,
        sink: Any = None,
    ) -> None:
        self.testbed = testbed
        self.config = config or ProtocolConfig()
        self.sink = sink if sink is not None else NullSink(testbed.dst)
        self.middleware = RdmaMiddleware(
            testbed.dst, testbed.dst_dev, testbed.cm, self.config
        )

    def start(self, port: int = 2811) -> None:
        """Begin accepting sessions on ``port``."""
        self.middleware.serve(port, self.sink)


class RftpClient:
    """The sending side: middleware + a data source."""

    def __init__(
        self,
        testbed: Testbed,
        config: Optional[ProtocolConfig] = None,
        source: Any = None,
    ) -> None:
        self.testbed = testbed
        self.config = config or ProtocolConfig()
        self.source = source if source is not None else ZeroSource(testbed.src)
        self.middleware = RdmaMiddleware(
            testbed.src, testbed.src_dev, testbed.cm, self.config
        )

    def put(self, total_bytes: int, port: int = 2811):
        """Process event resolving to a
        :class:`~repro.core.middleware.TransferOutcome`.

        The testbed's TCP connector rides along as the degraded-mode
        transport: a put that loses every data channel falls back to a
        TCP stream through the same fabric instead of aborting.
        """
        return self.middleware.transfer(
            self.testbed.dst_dev,
            port,
            self.source,
            total_bytes,
            tcp_factory=self.testbed.tcp_connection,
        )

    def put_resumable(
        self,
        total_bytes: int,
        port: int = 2811,
        resume_attempts: int = 3,
        resume_backoff: float = 1.0,
        fault_injector: Any = None,
    ):
        """A ``put`` that survives hard mid-transfer death.

        Process event resolving to the final
        :class:`~repro.core.middleware.TransferOutcome`.  On a typed
        :class:`~repro.core.errors.TransferError` the client waits
        ``resume_backoff`` seconds, re-establishes a data channel if none
        survived, and SESSION_RESUMEs from the sink's restart marker — so
        only the missing suffix is re-read and re-sent.  After
        ``resume_attempts`` failed resumes the last typed error is
        re-raised.
        """
        mw = self.middleware
        testbed = self.testbed

        def _run():
            link = yield mw.open_link(
                testbed.dst_dev,
                port,
                fault_injector=fault_injector,
                tcp_factory=testbed.tcp_connection,
            )
            try:
                return (
                    yield mw.transfer(
                        testbed.dst_dev, port, self.source, total_bytes, link=link
                    )
                )
            except TransferError as exc:
                last_error = exc
            for _ in range(resume_attempts):
                yield mw.engine.timeout(resume_backoff)
                if link.data.alive_count == 0:
                    yield mw.reopen_channel(link, testbed.dst_dev, port)
                try:
                    return (
                        yield mw.resume(
                            testbed.dst_dev,
                            port,
                            self.source,
                            total_bytes,
                            last_error.session_id,
                            link=link,
                        )
                    )
                except TransferError as exc:
                    last_error = exc
            raise last_error

        return mw.engine.process(_run())

    def open_broker(
        self,
        doors: int = 1,
        port: int = 2811,
        broker_config: Any = None,
        tenants: Any = None,
        door_sessions: int = 4,
        fault_injector: Any = None,
        journal: Any = None,
        seed: int = 0,
        overload: Any = None,
    ):
        """Process event resolving to an opened
        :class:`~repro.sched.broker.TransferBroker` — the job-level API.

        Opens ``doors`` independent connection sets to the server (each a
        named ``orderly``-failover alternative) and wires them into a
        broker.  Submit bulk jobs with
        :meth:`~repro.sched.broker.TransferBroker.submit` and ``yield
        job.done``; sessions are reused per door, so runs of small files
        pay one negotiation round trip each, not three.
        """
        from repro.sched.broker import RftpDoor, TransferBroker

        mw = self.middleware
        testbed = self.testbed
        door_objs = [
            RftpDoor(
                f"door-{i}",
                mw,
                testbed.dst_dev,
                port,
                self.source,
                max_sessions=door_sessions,
                tcp_factory=testbed.tcp_connection,
                fault_injector=fault_injector if i == 0 else None,
            )
            for i in range(doors)
        ]

        def _open():
            for door in door_objs:
                yield door.open()
            return TransferBroker(
                mw.engine, door_objs, broker_config, tenants,
                journal=journal, seed=seed, overload=overload,
            )

        return mw.engine.process(_open())

    def put_many(self, file_sizes, port: int = 2811, concurrent: bool = False):
        """Transfer several files over ONE connection set (§IV-C multi-
        session).  Process event resolving to a list of
        :class:`~repro.core.middleware.TransferOutcome`, in input order.

        ``concurrent=True`` launches every file as a simultaneous session
        (interleaved on the shared data QPs, reassembled per session);
        otherwise files go back-to-back, still reusing the link.
        """
        sizes = list(file_sizes)
        if not sizes:
            raise ValueError("put_many needs at least one file")
        mw = self.middleware
        testbed = self.testbed

        def _run():
            link = yield mw.open_link(
                testbed.dst_dev, port, tcp_factory=testbed.tcp_connection
            )
            events = []
            if concurrent:
                events = [
                    mw.transfer(
                        testbed.dst_dev, port, self.source, size, link=link
                    )
                    for size in sizes
                ]
            outcomes = []
            for i, size in enumerate(sizes):
                if concurrent:
                    outcomes.append((yield events[i]))
                else:
                    outcomes.append(
                        (
                            yield mw.transfer(
                                testbed.dst_dev, port, self.source, size, link=link
                            )
                        )
                    )
            return outcomes

        return mw.engine.process(_run())


@dataclass(frozen=True)
class RftpResult:
    """One completed RFTP run with host-level measurements."""

    outcome: TransferOutcome
    #: Application goodput, Gbps.
    gbps: float
    #: Client (source) host CPU, percent of one core (nmon convention),
    #: application threads only.
    client_cpu_pct: float
    #: Server (sink) host CPU, same convention.
    server_cpu_pct: float
    elapsed: float


def run_rftp(
    testbed: Testbed,
    total_bytes: int,
    config: Optional[ProtocolConfig] = None,
    source: Any = None,
    sink: Any = None,
    port: int = 2811,
) -> RftpResult:
    """Wire an RFTP pair on ``testbed``, run a put, measure everything.

    CPU accounting is reset when the transfer enters its data phase so
    utilisation reflects steady-state transfer, not setup.
    """
    cfg = config or ProtocolConfig()
    server = RftpServer(testbed, cfg, sink)
    server.start(port)
    client = RftpClient(testbed, cfg, source)

    # Reset CPU accounting as late as possible before the data phase; the
    # negotiation handshake is microseconds, so resetting here is exact
    # enough for multi-second transfers.
    testbed.src.cpu.reset_accounting()
    testbed.dst.cpu.reset_accounting()

    done = client.put(total_bytes, port)

    # Capture CPU utilisation at the instant the transfer completes, not
    # after the engine drains: recovery watchdogs and the sink's session
    # GC leave timers on the heap that extend ``engine.now`` past the
    # transfer end and would dilute busy/span utilisation.
    cpu_at_done = {}

    def _capture(event) -> None:
        if not event._ok:
            event.defuse()  # typed error re-raised below
        cpu_at_done["client"] = testbed.src.cpu.utilization_pct()
        cpu_at_done["server"] = testbed.dst.cpu.utilization_pct()

    done.add_callback(_capture)
    testbed.engine.run()
    if not done.triggered:
        raise RuntimeError("transfer did not complete (deadlock?)")
    if not done.ok:
        raise done.value
    outcome: TransferOutcome = done.value
    return RftpResult(
        outcome=outcome,
        gbps=outcome.gbps,
        client_cpu_pct=cpu_at_done["client"],
        server_cpu_pct=cpu_at_done["server"],
        elapsed=outcome.elapsed,
    )
