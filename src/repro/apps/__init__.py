"""Applications built on the middleware and the TCP baseline.

- :mod:`repro.apps.io` — data sources/sinks (/dev/zero, /dev/null,
  pattern generators for verification, disk-backed files),
- :mod:`repro.apps.rftp` — RFTP, the paper's RDMA-enabled FTP,
- :mod:`repro.apps.gridftp` — the GridFTP baseline model (TCP, MODE E,
  single-threaded event loop),
- :mod:`repro.apps.fio` — the fio-style RDMA I/O engine used for the raw
  semantics comparisons of Figures 3 and 4.
"""

from repro.apps.io import (
    CollectingSink,
    DiskSink,
    DiskSource,
    NullSink,
    PatternSource,
    ZeroSource,
)
from repro.apps.rftp import RftpClient, RftpServer, RftpResult
from repro.apps.gridftp import GridFtpPair, GridFtpResult
from repro.apps.fio import FioJob, FioResult, run_fio
from repro.apps.sockets import SocketFtpResult, socket_transfer

__all__ = [
    "CollectingSink",
    "DiskSink",
    "DiskSource",
    "FioJob",
    "FioResult",
    "GridFtpPair",
    "GridFtpResult",
    "NullSink",
    "PatternSource",
    "RftpClient",
    "RftpResult",
    "RftpServer",
    "SocketFtpResult",
    "ZeroSource",
    "run_fio",
    "socket_transfer",
]
