"""Socket-over-RDMA middlewares: IPoIB and SDP (Figure 1, §II).

The paper's Figure 1 stacks socket applications over RDMA devices three
ways: native verbs (what the middleware uses), the Sockets Direct
Protocol (SDP), and IP-over-InfiniBand (IPoIB) — and cites [15] for the
finding that "these extensions introduce additional overhead and
performance penalties compared to the native RDMA IB verbs".  These
models reproduce that ordering for an unmodified socket application:

- **IPoIB**: the full kernel TCP/IP stack runs over the RDMA link as a
  plain NIC.  Every byte pays user↔kernel copies on the application
  thread *and* kernel per-byte costs; encapsulation wastes a slice of
  the link.  No offload benefits survive.
- **SDP**: socket calls are translated to RDMA operations with bounce
  buffers.  Kernel-bypass removes the softirq per-byte cost and most
  protocol overhead, but the API contract still forces a copy between
  the application buffer and the registered bounce buffer, plus
  per-segment verbs bookkeeping — cheaper than IPoIB, strictly worse
  than native zero-copy verbs.

``socket_transfer`` runs the same single-threaded sender/receiver pair
over either adapter; compare with RFTP (native verbs) for the Figure 1
story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.apps.io import NullSink, ZeroSource
from repro.sim.events import Event
from repro.testbeds import Testbed

__all__ = ["SocketFtpResult", "socket_transfer", "IPOIB_EFFICIENCY", "SDP_EFFICIENCY"]

#: Fraction of link bandwidth usable through IPoIB encapsulation
#: (IP + transport headers per MTU plus datagram-mode bookkeeping).
IPOIB_EFFICIENCY = 0.80
#: SDP keeps RDMA framing; only a small protocol tax on the wire.
SDP_EFFICIENCY = 0.95

#: SDP per-segment verbs bookkeeping (post + completion per segment).
_SDP_SEGMENT_BYTES = 64 * 1024
_SDP_SEGMENT_CPU = 2.0e-6
#: Inline TCP protocol work (segmentation, checksum staging, skb
#: handling) that runs on the *application* thread inside send()/recv()
#: when the stack is not offloaded — IPoIB pays this, SDP bypasses it.
_IPOIB_TCP_NS_PER_BYTE = 0.25


@dataclass(frozen=True)
class SocketFtpResult:
    """A socket-application transfer over an RDMA device."""

    mode: str
    bytes: int
    elapsed: float
    gbps: float
    client_cpu_pct: float
    server_cpu_pct: float


def socket_transfer(
    testbed: Testbed,
    total_bytes: int,
    mode: str,
    block_size: int = 1 << 20,
) -> SocketFtpResult:
    """Move ``total_bytes`` with a 1-thread-per-side socket app over
    ``mode`` ∈ {'ipoib', 'sdp'}."""
    if mode not in ("ipoib", "sdp"):
        raise ValueError(f"mode must be 'ipoib' or 'sdp', got {mode!r}")
    if total_bytes <= 0:
        raise ValueError("total_bytes must be positive")
    engine = testbed.engine
    src, dst = testbed.src, testbed.dst
    source = ZeroSource(src)
    sink = NullSink(dst)
    efficiency = IPOIB_EFFICIENCY if mode == "ipoib" else SDP_EFFICIENCY
    wire_scale = 1.0 / efficiency
    forward = testbed.duplex.forward
    done = Event(engine)

    from repro.sim.resources import Container

    sndbuf = Container(engine, capacity=8 << 20)
    pipe = Container(engine, capacity=8 << 20)

    def _per_block_cpu(host, nbytes: int) -> float:
        spec = host.spec
        if mode == "ipoib":
            # Full TCP path: syscall + copy + inline protocol work, all
            # on the app thread.
            per_byte = spec.memcpy_ns_per_byte + _IPOIB_TCP_NS_PER_BYTE
            return spec.syscall_seconds + nbytes * per_byte * 1e-9
        # SDP: syscall + bounce-buffer copy + per-segment verbs work.
        segments = -(-nbytes // _SDP_SEGMENT_BYTES)
        return (
            spec.syscall_seconds
            + nbytes * spec.memcpy_ns_per_byte * 1e-9
            + segments * _SDP_SEGMENT_CPU
        )

    def _kernel_charge(nbytes: int) -> None:
        if mode == "ipoib":
            # Kernel TCP per-byte work on both hosts (softirq etc.).
            src.cpu.charge_background(
                nbytes * src.spec.tcp_kernel_ns_per_byte * 1e-9, "kernel"
            )
            dst.cpu.charge_background(
                nbytes * dst.spec.tcp_kernel_ns_per_byte * 1e-9, "kernel"
            )
        # SDP bypasses the kernel data path: no per-byte kernel charge.

    def sender(env) -> Generator:
        thread = src.thread(f"{mode}-send", "app")
        sent = 0
        seq = 0
        while sent < total_bytes:
            nbytes = min(block_size, total_bytes - sent)
            yield from source.read(thread, nbytes, seq)
            yield thread.exec(_per_block_cpu(src, nbytes))
            yield sndbuf.put(nbytes)  # blocking send(): buffer backpressure
            sent += nbytes
            seq += 1

    def pump(env) -> Generator:
        # The stack (kernel TCP for IPoIB, the SDP driver) drains the
        # socket buffer onto the wire asynchronously from the app thread.
        moved = 0
        while moved < total_bytes:
            nbytes = min(block_size, total_bytes - moved)
            yield sndbuf.get(nbytes)
            yield from forward.transmit(int(nbytes * wire_scale))
            _kernel_charge(nbytes)
            yield pipe.put(nbytes)
            moved += nbytes

    def receiver(env) -> Generator:
        thread = dst.thread(f"{mode}-recv", "app")
        received = 0
        while received < total_bytes:
            nbytes = min(block_size, total_bytes - received)
            yield pipe.get(nbytes)
            yield thread.exec(_per_block_cpu(dst, nbytes))
            yield from sink.write(thread, nbytes)
            received += nbytes
        done.succeed(received)

    src.cpu.reset_accounting()
    dst.cpu.reset_accounting()
    start = engine.now
    engine.process(sender(engine))
    engine.process(pump(engine))
    engine.process(receiver(engine))
    engine.run()
    if not done.triggered:
        raise RuntimeError(f"{mode} transfer did not complete")
    elapsed = engine.now - start
    return SocketFtpResult(
        mode=mode,
        bytes=total_bytes,
        elapsed=elapsed,
        gbps=total_bytes * 8.0 / elapsed / 1e9,
        client_cpu_pct=src.cpu.utilization_pct(),
        server_cpu_pct=dst.cpu.utilization_pct(),
    )
