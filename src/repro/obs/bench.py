"""Deterministic benchmark harness over the simulated experiment suite.

``python -m repro bench`` runs a fixed set of cases — RFTP on the LAN
and WAN testbeds, GridFTP on the WAN, fio against the RDMA block
device, and a chaos-recovery transfer — and records, per case:

* ``gbps`` — application goodput,
* ``p50_us`` / ``p99_us`` — block (or I/O) latency percentiles where
  the workload produces them (``None`` where it does not; never NaN,
  which is not valid JSON),
* ``events_per_sec`` — simulator engine throughput (processed events
  over wall-clock seconds), the health metric for the sim itself,
* ``sim_time`` / ``events`` — determinism anchors: these must be
  bit-identical run to run, so drift flags a behaviour change.

Results are written as ``BENCH_<date>.json`` and gated against the
committed ``benchmarks/BENCH_baseline.json`` by :mod:`repro.obs.compare`.
"""

from __future__ import annotations

import datetime as _dt
import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCase",
    "BENCH_CASES",
    "run_bench",
    "write_bench",
    "validate_bench",
    "bench_filename",
]

BENCH_SCHEMA_VERSION = 1

#: Required per-case result keys (values may be ``None`` where a case
#: has no meaningful measurement, e.g. GridFTP latency).
RESULT_KEYS = ("gbps", "p50_us", "p99_us", "events_per_sec", "sim_time", "events")


def _rftp_latency_us(engine) -> tuple:
    """Merge block-latency buckets across every session histogram."""
    from repro.obs.registry import HistogramMetric

    merged = HistogramMetric.merged(
        engine.metrics.family("source.block_latency_seconds")
    )
    if merged.count == 0:
        return None, None
    return merged.percentile(50) * 1e6, merged.percentile(99) * 1e6


def _run_rftp_case(testbed_name: str, total_bytes: int) -> dict:
    from repro.apps.rftp import run_rftp
    from repro.testbeds import TESTBEDS

    tb = TESTBEDS[testbed_name]()
    result = run_rftp(tb, total_bytes=total_bytes)
    p50, p99 = _rftp_latency_us(tb.engine)
    return {
        "gbps": result.gbps,
        "p50_us": p50,
        "p99_us": p99,
        "sim_time": tb.engine.now,
        "events": tb.engine.events_processed,
    }


def _run_gridftp_case(testbed_name: str, total_bytes: int, streams: int) -> dict:
    from repro.apps.gridftp import run_gridftp
    from repro.testbeds import TESTBEDS

    tb = TESTBEDS[testbed_name]()
    result = run_gridftp(tb, total_bytes=total_bytes, streams=streams)
    return {
        "gbps": result.gbps,
        "p50_us": None,  # GridFTP reports goodput only, no per-block latency
        "p99_us": None,
        "sim_time": tb.engine.now,
        "events": tb.engine.events_processed,
    }


def _run_fio_case(testbed_name: str, total_blocks: int) -> dict:
    from repro.apps.fio import FioJob, run_fio
    from repro.testbeds import TESTBEDS

    tb = TESTBEDS[testbed_name]()
    job = FioJob(semantics="write", block_size=128 * 1024, iodepth=16,
                 total_blocks=total_blocks)
    result = run_fio(tb, job)
    return {
        "gbps": result.gbps,
        "p50_us": result.lat_p50_us,
        "p99_us": result.lat_p99_us,
        "sim_time": tb.engine.now,
        "events": tb.engine.events_processed,
    }


def _run_chaos_case(testbed_name: str, total_bytes: int) -> dict:
    from repro.faults.chaos import run_chaos
    from repro.faults.plan import FaultPlan
    from repro.testbeds import TESTBEDS

    tb = TESTBEDS[testbed_name]()
    plan = FaultPlan(seed=7, write_fault_rate=0.02, ctrl_drop_rate=0.01)
    result = run_chaos(tb, total_bytes=total_bytes, plan=plan)
    gbps = None
    if result.completed and result.sim_time > 0:
        gbps = total_bytes * 8 / result.sim_time / 1e9
    p50, p99 = _rftp_latency_us(tb.engine)
    return {
        "gbps": gbps,
        "p50_us": p50,
        "p99_us": p99,
        "sim_time": tb.engine.now,
        "events": tb.engine.events_processed,
    }


def _run_fallback_case(testbed_name: str, total_bytes: int) -> dict:
    """Graceful-degradation case: every data QP is killed mid-transfer,
    the session carries on over the TCP fallback path through the same
    fabric (repromotion off so the whole tail measures degraded-mode
    throughput), and the run must still end byte-exact and leak-free."""
    from repro.core import ProtocolConfig
    from repro.faults.chaos import run_chaos
    from repro.faults.plan import FaultPlan
    from repro.testbeds import TESTBEDS

    tb = TESTBEDS[testbed_name]()
    cfg = ProtocolConfig(fallback_repromote=False)
    plan = FaultPlan(
        seed=11, qp_kills=tuple((0.25, i) for i in range(cfg.num_channels))
    )
    result = run_chaos(tb, total_bytes=total_bytes, plan=plan, config=cfg)
    if not result.clean or not result.completed:
        raise RuntimeError(
            "fallback bench case did not complete cleanly: "
            f"error={result.error} leaks={result.leaks}"
        )
    gbps = None
    if result.sim_time > 0:
        gbps = total_bytes * 8 / result.sim_time / 1e9
    p50, p99 = _rftp_latency_us(tb.engine)
    return {
        "gbps": gbps,
        "p50_us": p50,
        "p99_us": p99,
        "sim_time": tb.engine.now,
        "events": tb.engine.events_processed,
    }


def _run_sched_case(total_files: int) -> dict:
    """Broker-scheduled many-file job mix on the WAN testbed.

    Two tenants (3:1 weights) across two doors with session reuse — the
    scheduler-layer counterpart of the single-transfer WAN cases.  Goodput
    aggregates every finished file; latency percentiles come from the
    per-tenant submit-to-finish histograms.
    """
    from repro.obs.registry import HistogramMetric
    from repro.sched import run_sched, synthetic_spec

    spec = synthetic_spec(seed=0, total_files=total_files, doors=2)
    result = run_sched(spec)
    if not result.all_finished:
        raise RuntimeError("sched bench case did not finish every job")
    engine = result.testbed.engine
    total_bytes = sum(
        task.size for job in result.jobs for task in job.files
        if task.state.value == "FINISHED"
    )
    gbps = None
    if engine.now > 0:
        gbps = total_bytes * 8 / engine.now / 1e9
    merged = HistogramMetric.merged(
        engine.metrics.family("sched.file_latency_seconds")
    )
    p50 = p99 = None
    if merged.count:
        p50, p99 = merged.percentile(50) * 1e6, merged.percentile(99) * 1e6
    return {
        "gbps": gbps,
        "p50_us": p50,
        "p99_us": p99,
        "sim_time": engine.now,
        "events": engine.events_processed,
    }


#: Un-overloaded per-file service rate the overload case holds admitted
#: goodput against: the ``sched_10k`` quick case moves 1500 files in
#: ~31s of sim time (≈48 files/s).  Kept as a constant rather than
#: re-running that case inside this one — the bench gate on
#: ``sched_10k`` itself pins the reference.
_SCHED_QUICK_FILES_PER_SEC = 48.4


def _run_sched_overload_case(total_files: int) -> dict:
    """Open-loop 10× arrival spike against the armed overload controls.

    The broker must shed its way through the spike — every shed job
    reported with a reason and a RETRY_AFTER hint, zero lost or
    duplicate bytes for admitted work, no state leaked after the
    shed-heavy campaign — while goodput for the work it *did* admit
    stays within 80% of the un-overloaded service rate.  Guards the
    overload layer against both kinds of regression: collapsing under
    the spike, and shedding so eagerly the pipe idles.
    """
    from repro.obs.registry import HistogramMetric
    from repro.sched import overload_spec, run_sched

    spec = overload_spec(seed=0, total_files=total_files)
    result = run_sched(spec, audit=True)
    if not result.all_resolved:
        raise RuntimeError(
            f"{len(result.unresolved)} jobs neither finished nor shed"
        )
    if result.audit_ok is False:
        raise RuntimeError(
            f"delivery audit failed: {result.audit_problems[:3]}"
        )
    if result.leaks:
        raise RuntimeError(f"post-run leaks: {result.leaks[:3]}")
    if not result.shed_jobs:
        raise RuntimeError("overload case shed nothing — spike too small")
    for job in result.jobs:
        if job.shed and (not job.shed_reason or job.retry_after is None):
            raise RuntimeError(
                f"shed job {job.job_id} missing reason/RETRY_AFTER"
            )
    engine = result.testbed.engine
    finished = [
        task for job in result.jobs for task in job.files
        if task.state.value == "FINISHED"
    ]
    total_bytes = sum(task.size for task in finished)
    gbps = None
    if engine.now > 0:
        gbps = total_bytes * 8 / engine.now / 1e9
        admitted_rate = len(finished) / engine.now
        if admitted_rate < 0.8 * _SCHED_QUICK_FILES_PER_SEC:
            raise RuntimeError(
                f"admitted goodput {admitted_rate:.1f} files/s below 80% "
                f"of the un-overloaded rate "
                f"({_SCHED_QUICK_FILES_PER_SEC} files/s)"
            )
    merged = HistogramMetric.merged(
        engine.metrics.family("sched.file_latency_seconds")
    )
    p50 = p99 = None
    if merged.count:
        p50, p99 = merged.percentile(50) * 1e6, merged.percentile(99) * 1e6
    return {
        "gbps": gbps,
        "p50_us": p50,
        "p99_us": p99,
        "sim_time": engine.now,
        "events": engine.events_processed,
    }


def _run_sessions_per_host_case(total_files: int) -> dict:
    """Connection-scaling A/B: dedicated QPs vs the shared per-host pool.

    Runs the same small-file job mix twice on the WAN testbed — once with
    each door opening its own ``num_channels`` QPs and block pool
    (``use_srq=False``), once with every session leasing channels from
    one shared :class:`HostChannelPool` whose receive side is an SRQ and
    whose small blocks ride the eager SEND path.  The gate asserts the
    scaling claims, then reports the pooled run's numbers as anchors:

    - peak concurrent sessions per pinned source byte must improve >= 4x
      (the door cap derives from real pool capacity, 32, instead of the
      config constant 4 — at a *lower* total pinned footprint);
    - small-file goodput must improve >= 1.3x (no credit round trip per
      eager block on a long path).
    """
    from repro.core import ProtocolConfig
    from repro.core.messages import HEADER_BYTES
    from repro.obs.registry import HistogramMetric
    from repro.sched import run_sched, synthetic_spec

    def one_run(config):
        spec = synthetic_spec(
            seed=0, total_files=total_files, doors=2, max_active=64,
        )
        result = run_sched(spec, config=config)
        if not result.all_finished:
            raise RuntimeError("sessions_per_host run left unfinished jobs")
        if result.leaks:
            raise RuntimeError(f"post-run leaks: {result.leaks[:3]}")
        broker = result.broker
        pools = {}
        for door in broker.doors.values():
            pools[id(door.link.pool)] = door.link.pool
        pinned = sum(
            len(p.blocks) * (p.block_size + HEADER_BYTES)
            for p in pools.values()
        )
        srq = result.server.middleware._srq
        if srq is not None:
            # The pooled mode's extra cost: the shared receive ring is
            # pinned for the host pair, not per connection.
            pinned += config.srq_depth * (config.block_size + HEADER_BYTES)
        engine = result.testbed.engine
        total_bytes = sum(
            task.size for job in result.jobs for task in job.files
        )
        return result, engine, total_bytes / engine.now * 8 / 1e9, pinned

    base_cfg = ProtocolConfig()
    # SRQ sized for aggregate arrival, not per-connection: 24 shared
    # 4 MiB WQEs serve all 32 leases (the dedicated baseline pins a
    # 32-block pool *per door* for 4 sessions each).  Starved arrivals
    # RNR-NAK and retry, which is the backpressure working as designed.
    pool_cfg = ProtocolConfig(
        use_srq=True, eager_threshold=4 * MiB, srq_depth=24,
    )
    base_res, _, base_gbps, base_pinned = one_run(base_cfg)
    pool_res, engine, pool_gbps, pool_pinned = one_run(pool_cfg)

    base_density = base_res.broker.peak_active / base_pinned
    pool_density = pool_res.broker.peak_active / pool_pinned
    if pool_density < 4.0 * base_density:
        raise RuntimeError(
            "session density gate failed: "
            f"pooled {pool_res.broker.peak_active} sessions / "
            f"{pool_pinned} pinned B vs dedicated "
            f"{base_res.broker.peak_active} / {base_pinned} B "
            f"({pool_density / base_density:.2f}x < 4x)"
        )
    if pool_gbps < 1.3 * base_gbps:
        raise RuntimeError(
            "goodput gate failed: pooled "
            f"{pool_gbps:.2f} gbps < 1.3x dedicated {base_gbps:.2f} gbps"
        )
    merged = HistogramMetric.merged(
        engine.metrics.family("sched.file_latency_seconds")
    )
    p50 = p99 = None
    if merged.count:
        p50, p99 = merged.percentile(50) * 1e6, merged.percentile(99) * 1e6
    return {
        "gbps": pool_gbps,
        "p50_us": p50,
        "p99_us": p99,
        "sim_time": engine.now,
        "events": engine.events_processed,
    }


def _run_sim_kernel_case(workers: int, rounds: int) -> dict:
    """Pure timer/event churn — no protocol, no hardware models.

    Exercises exactly the kernel hot paths the protocol cases sit on:
    request/reply races against an RTO (the winner cancels the loser),
    short periodic timers (wheel traffic), and beyond-horizon sleepers
    (heap traffic), so kernel-level regressions show up undiluted by
    protocol work.
    """
    from repro.sim.engine import Engine
    from repro.sim.events import AnyOf

    engine = Engine()

    def requester(i: int):
        for k in range(rounds):
            reply = engine.event()
            timer = engine.timeout(50e-6)
            if (k + i) % 5:
                reply.succeed(k)  # reply beats the timer 4 rounds in 5
            yield AnyOf(engine, [reply, timer])
            if reply.triggered:
                timer.cancel()

    def heartbeat(i: int):
        for _ in range(rounds):
            yield engine.timeout(97e-6 + i * 1e-6)

    def long_sleeper(i: int):
        for _ in range(rounds // 8):
            yield engine.timeout(0.5 + i * 1e-3)

    for i in range(workers):
        engine.process(requester(i))
        engine.process(heartbeat(i))
    for i in range(4):
        engine.process(long_sleeper(i))
    engine.run()
    return {
        "gbps": None,
        "p50_us": None,
        "p99_us": None,
        "sim_time": engine.now,
        "events": engine.events_processed,
    }


def _run_fluid_pipeline(
    use_fluid: bool, flows: int, blocks: int, unit: int, packets: int
) -> dict:
    """Steady-state WAN bulk pipeline: cpu -> wqe -> dma -> packetized
    burst -> dma -> cpu -> ack, per block, per flow.

    The kernel-dominated workload behind the ``sim_fluid`` case: each
    block's burst is ``packets`` wire units, which discrete mode carries
    as per-packet transmit processes and fluid mode books as one timer.
    """
    from repro.hardware.cpu import CpuScheduler, CpuThread
    from repro.hardware.nic import Nic, NicProfile
    from repro.hardware.pci import PcieBus
    from repro.network.fabric import wan_path
    from repro.sim.engine import Engine

    engine = Engine(use_fluid=use_fluid)
    duplex = wan_path(engine, 10.0, 0.098)
    src_pcie = PcieBus(engine, 25.0)
    snk_pcie = PcieBus(engine, 25.0)
    src_cpu = CpuScheduler(engine, cores=12)
    snk_cpu = CpuScheduler(engine, cores=12)

    class _Host:
        pcie = src_pcie
        name = "src"

    nic = Nic(engine, _Host(), NicProfile(gbps=10.0), "nic0")
    block_bytes = unit * packets

    def pump(i: int):
        t_src = CpuThread(src_cpu, f"s{i}", "app")
        t_snk = CpuThread(snk_cpu, f"k{i}", "app")
        forward, backward = duplex.forward, duplex.backward
        for _ in range(blocks):
            yield t_src.exec(2e-6)
            yield from nic.process_wqe()
            yield from src_pcie.dma(block_bytes)
            yield from forward.transmit_burst(unit, packets)
            yield from snk_pcie.dma(block_bytes)
            yield t_snk.exec(2e-6)
            yield from backward.deliver_latency(64)

    for i in range(flows):
        engine.process(pump(i))
    t0 = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - t0
    return {"sim_time": engine.now, "events": engine.events_processed,
            "wall": wall}


def _run_sim_fluid_case(flows: int, blocks: int) -> dict:
    """Fluid fast-forward acceptance case.

    Runs the same pipeline twice — discrete (``use_fluid=False``) and
    fluid — and refuses to report unless the simulated clocks agree
    bit-for-bit, so the case gates fluid correctness, not just speed.
    ``events_per_sec`` is the *discrete* event count over the *fluid*
    wall clock: the rate at which fast-forward retires what discrete
    execution would have dispatched one event at a time.
    """
    unit, packets = 1 << 16, 16
    discrete = _run_fluid_pipeline(False, flows, blocks, unit, packets)
    fluid = _run_fluid_pipeline(True, flows, blocks, unit, packets)
    if fluid["sim_time"] != discrete["sim_time"]:
        raise RuntimeError(
            "fluid fast-forward diverged from discrete execution: "
            f"{fluid['sim_time']!r} != {discrete['sim_time']!r}"
        )
    total_bytes = flows * blocks * unit * packets
    return {
        "gbps": total_bytes * 8 / fluid["sim_time"] / 1e9,
        "p50_us": None,
        "p99_us": None,
        "sim_time": fluid["sim_time"],
        "events": fluid["events"],
        "events_per_sec": (
            discrete["events"] / fluid["wall"] if fluid["wall"] > 0 else None
        ),
    }


@dataclass(frozen=True)
class BenchCase:
    """One named benchmark: a runner closure per mode."""

    name: str
    #: ``mode -> zero-arg runner`` returning the raw result dict.
    runners: Dict[str, Callable[[], dict]]

    def run(self, mode: str) -> dict:
        runner = self.runners[mode]
        t0 = time.perf_counter()
        result = runner()
        wall = time.perf_counter() - t0
        if "events_per_sec" not in result:
            # A runner that measures its own throughput (sim_fluid times
            # each mode separately) keeps its number; everyone else gets
            # events over the whole-runner wall clock.
            events = result.get("events") or 0
            result["events_per_sec"] = (events / wall) if wall > 0 else None
        return result


MiB = 1024 * 1024

BENCH_CASES: Sequence[BenchCase] = (
    BenchCase(
        "rftp_roce_lan",
        {
            "quick": lambda: _run_rftp_case("roce-lan", 64 * MiB),
            "full": lambda: _run_rftp_case("roce-lan", 1024 * MiB),
        },
    ),
    BenchCase(
        "rftp_ani_wan",
        {
            "quick": lambda: _run_rftp_case("ani-wan", 256 * MiB),
            "full": lambda: _run_rftp_case("ani-wan", 4096 * MiB),
        },
    ),
    BenchCase(
        "gridftp_ani_wan",
        {
            "quick": lambda: _run_gridftp_case("ani-wan", 64 * MiB, streams=4),
            "full": lambda: _run_gridftp_case("ani-wan", 1024 * MiB, streams=4),
        },
    ),
    BenchCase(
        "fio_write_roce",
        {
            "quick": lambda: _run_fio_case("roce-lan", total_blocks=512),
            "full": lambda: _run_fio_case("roce-lan", total_blocks=8192),
        },
    ),
    BenchCase(
        "chaos_recovery_roce",
        {
            "quick": lambda: _run_chaos_case("roce-lan", 32 * MiB),
            "full": lambda: _run_chaos_case("roce-lan", 256 * MiB),
        },
    ),
    BenchCase(
        "rftp_wan_fallback",
        {
            "quick": lambda: _run_fallback_case("ani-wan", 32 * MiB),
            "full": lambda: _run_fallback_case("ani-wan", 256 * MiB),
        },
    ),
    BenchCase(
        "sched_10k",
        {
            "quick": lambda: _run_sched_case(total_files=1500),
            "full": lambda: _run_sched_case(total_files=10_000),
        },
    ),
    BenchCase(
        "sched_overload",
        {
            "quick": lambda: _run_sched_overload_case(total_files=600),
            "full": lambda: _run_sched_overload_case(total_files=2400),
        },
    ),
    BenchCase(
        "sessions_per_host",
        {
            "quick": lambda: _run_sessions_per_host_case(total_files=400),
            "full": lambda: _run_sessions_per_host_case(total_files=2000),
        },
    ),
    BenchCase(
        "sim_kernel",
        {
            "quick": lambda: _run_sim_kernel_case(workers=32, rounds=60),
            "full": lambda: _run_sim_kernel_case(workers=64, rounds=400),
        },
    ),
    BenchCase(
        "sim_fluid",
        {
            "quick": lambda: _run_sim_fluid_case(flows=4, blocks=24),
            "full": lambda: _run_sim_fluid_case(flows=8, blocks=96),
        },
    ),
)


def _warm_suite() -> None:
    """Import every subsystem the runners use before any case is timed.

    ``events_per_sec`` is the engine-throughput health metric; without
    this warm-up the first case to touch a subsystem was also charged
    its one-time import cost, so a case's number depended on suite order
    (and on ``--only`` selections) rather than on the simulator.
    """
    import repro.apps.fio  # noqa: F401
    import repro.apps.gridftp  # noqa: F401
    import repro.apps.rftp  # noqa: F401
    import repro.faults.chaos  # noqa: F401
    import repro.sched  # noqa: F401
    import repro.sim.engine  # noqa: F401
    import repro.testbeds  # noqa: F401

    # numpy defers its ``random`` subpackage to first attribute access;
    # the first RandomStreams.stream() call would otherwise pay the
    # ~10 ms subimport inside whichever case touches an RNG first.
    import numpy.random  # noqa: F401

    numpy.random.default_rng(0).random()


def run_bench(
    mode: str = "quick",
    only: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str, dict], None]] = None,
    date: Optional[str] = None,
) -> dict:
    """Run the suite; return the ``BENCH_*.json`` document as a dict."""
    if mode not in ("quick", "full"):
        raise ValueError(f"unknown bench mode {mode!r}")
    if date is None:
        date = _dt.date.today().isoformat()
    selected = [c for c in BENCH_CASES if only is None or c.name in only]
    if only is not None:
        unknown = set(only) - {c.name for c in BENCH_CASES}
        if unknown:
            raise ValueError(f"unknown bench case(s): {sorted(unknown)}")
    _warm_suite()
    results: Dict[str, dict] = {}
    for case in selected:
        result = case.run(mode)
        results[case.name] = result
        if progress is not None:
            progress(case.name, result)
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": "repro-bench",
        "date": date,
        "mode": mode,
        "results": results,
    }


def bench_filename(date: str) -> str:
    return f"BENCH_{date}.json"


def write_bench(doc: dict, path: str) -> None:
    validate_bench(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")


def validate_bench(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed bench document."""
    if not isinstance(doc, dict):
        raise ValueError("bench document must be a JSON object")
    if doc.get("kind") != "repro-bench":
        raise ValueError(f"not a repro-bench document (kind={doc.get('kind')!r})")
    if doc.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(f"unsupported bench schema {doc.get('schema')!r}")
    if doc.get("mode") not in ("quick", "full"):
        raise ValueError(f"invalid bench mode {doc.get('mode')!r}")
    if not isinstance(doc.get("date"), str):
        raise ValueError("bench document needs a string 'date'")
    results = doc.get("results")
    if not isinstance(results, dict) or not results:
        raise ValueError("bench document has no results")
    for name, result in results.items():
        if not isinstance(result, dict):
            raise ValueError(f"case {name!r}: result must be an object")
        for key in RESULT_KEYS:
            if key not in result:
                raise ValueError(f"case {name!r}: missing key {key!r}")
            value = result[key]
            if value is not None and not isinstance(value, (int, float)):
                raise ValueError(f"case {name!r}: {key} must be numeric or null")
            if isinstance(value, float) and value != value:
                raise ValueError(f"case {name!r}: {key} is NaN")
