"""Process-wide collection hooks for CLI-level observability.

Subcommands like ``ablation`` build many engines internally (one per
sweep point), so ``--metrics-out`` cannot simply export "the" engine.
Instead the CLI calls :func:`start_collection` before dispatching;
every :class:`~repro.sim.engine.Engine` constructed while collection
is active registers itself here, and the exporter walks the collected
engines afterwards in creation order.

Engines are held with *strong* references: sweep commands drop each
testbed as soon as its run finishes, and the exporter must still see
those engines.  The window is bounded — :func:`stop_collection` (and
the next :func:`start_collection`) releases everything — so nothing
leaks beyond one CLI command.

:func:`install_tracer_factory` serves ``--trace-out`` the same way:
while a factory is installed, every new engine gets a fresh
:class:`~repro.sim.trace.Tracer` from it at construction time.

Both hooks are no-ops (one ``if`` on a module global) when inactive,
so the simulation pays nothing outside instrumented CLI runs.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = [
    "start_collection",
    "stop_collection",
    "collecting",
    "track_engine",
    "collected_engines",
    "install_tracer_factory",
    "make_tracer",
]

_collecting: bool = False
_engines: List[Any] = []
_tracer_factory: Optional[Callable[[], Any]] = None


def start_collection() -> None:
    """Begin tracking engines created from now on (clears prior set)."""
    global _collecting
    _engines.clear()
    _collecting = True


def stop_collection() -> None:
    """Stop tracking and release every collected engine."""
    global _collecting
    _collecting = False
    _engines.clear()


def collecting() -> bool:
    return _collecting


def track_engine(engine: Any) -> None:
    """Called by ``Engine.__init__``; records the engine if collecting."""
    if _collecting:
        _engines.append(engine)


def collected_engines() -> List[Any]:
    """Collected engines so far, in creation order."""
    return list(_engines)


def install_tracer_factory(factory: Optional[Callable[[], Any]]) -> None:
    """Set (or clear, with ``None``) the default-tracer factory."""
    global _tracer_factory
    _tracer_factory = factory


def make_tracer() -> Any:
    """Default tracer for a new engine — ``None`` unless a factory is set."""
    if _tracer_factory is None:
        return None
    return _tracer_factory()
