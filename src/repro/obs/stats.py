"""Small numpy-free statistics helpers for hot/timed paths.

``numpy.percentile`` is exact but its first call pays a lazy-import
warm-up of several milliseconds — enough to dominate a quick bench case
when it lands inside the timed region.  These helpers reproduce numpy's
default linear-interpolation percentile in plain Python so result paths
that run inside benchmarks stay free of one-time numpy costs.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["exact_percentile", "mean"]


def exact_percentile(values: Sequence[float], q: float) -> float:
    """Percentile ``q`` (0–100) with linear interpolation between order
    statistics — the same convention as ``numpy.percentile``'s default.

    Returns NaN for an empty sequence; raises :class:`ValueError` for a
    ``q`` outside [0, 100] (a silently-clamped typo like ``q=990`` would
    report the max and hide the bug).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    n = len(values)
    if n == 0:
        return float("nan")
    ordered: List[float] = sorted(values)
    if n == 1:
        return float(ordered[0])
    rank = (n - 1) * q / 100.0
    lo = int(rank)
    if lo >= n - 1:
        return float(ordered[-1])
    frac = rank - lo
    a = ordered[lo]
    return float(a + (ordered[lo + 1] - a) * frac)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; NaN for an empty sequence."""
    if not values:
        return float("nan")
    return float(sum(values) / len(values))
