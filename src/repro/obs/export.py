"""JSONL exporters for metrics snapshots and trace buffers.

One line per record keeps the files streamable and diff-friendly:

* metrics files: a ``{"record": "engine", ...}`` header per engine run
  followed by one ``{"record": "metric", ...}`` line per metric;
* trace files: one ``{"record": "trace", ...}`` line per
  :class:`~repro.sim.trace.TraceRecord`.

Multi-engine commands (ablations) produce several runs in one file,
distinguished by the ``run`` index.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, List

__all__ = ["metrics_lines", "trace_lines", "write_metrics_jsonl", "write_trace_jsonl"]


def _jsonable(value: Any) -> Any:
    """Best-effort conversion for trace fields (enums, objects...)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def metrics_lines(engines: Iterable[Any]) -> List[str]:
    lines: List[str] = []
    for run, engine in enumerate(engines):
        snapshot = engine.metrics.snapshot()
        header = {
            "record": "engine",
            "run": run,
            "sim_time": engine.now,
            "events_processed": getattr(engine, "events_processed", None),
            "metrics": len(snapshot),
        }
        lines.append(json.dumps(header, sort_keys=True))
        for rec in snapshot:
            rec = {"record": "metric", "run": run, **rec}
            lines.append(json.dumps(rec, sort_keys=True, default=_jsonable))
    return lines


def trace_lines(engines: Iterable[Any]) -> List[str]:
    lines: List[str] = []
    for run, engine in enumerate(engines):
        tracer = getattr(engine, "tracer", None)
        if tracer is None:
            continue
        header = {
            "record": "tracer",
            "run": run,
            "emitted": tracer.emitted,
            "dropped": tracer.dropped,
            "retained": len(tracer),
        }
        lines.append(json.dumps(header, sort_keys=True))
        for rec in tracer.query():
            lines.append(
                json.dumps(
                    {
                        "record": "trace",
                        "run": run,
                        "time": rec.time,
                        "category": rec.category,
                        "message": rec.message,
                        "fields": {k: _jsonable(v) for k, v in rec.fields.items()},
                    },
                    sort_keys=True,
                )
            )
    return lines


def _write(path: str, lines: List[str]) -> None:
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")


def write_metrics_jsonl(path: str, engines: Iterable[Any]) -> int:
    lines = metrics_lines(engines)
    _write(path, lines)
    return len(lines)


def write_trace_jsonl(path: str, engines: Iterable[Any]) -> int:
    lines = trace_lines(engines)
    _write(path, lines)
    return len(lines)
