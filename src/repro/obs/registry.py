"""A label-aware metrics registry for the simulation.

Every :class:`~repro.sim.engine.Engine` owns one
:class:`MetricsRegistry`; instrumented components register counters,
gauges, and histograms on it instead of growing ad-hoc ``int``
attributes.  Metrics are keyed by ``(name, sorted(labels))`` so the
same call site is a get-or-create: two components asking for the same
name+labels share one metric, and label-partitioned families
(per-session, per-QP, per-link) fall out of passing different labels.

The numeric API of :class:`CounterMetric` is intentionally identical to
:class:`repro.sim.monitor.Counter` (``add`` / ``total`` / ``count`` /
``name``) so existing call sites and tests keep working unchanged when
a plain Counter attribute is swapped for a registry counter.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "MetricsRegistry",
    "CounterMetric",
    "GaugeMetric",
    "CallbackGauge",
    "HistogramMetric",
]

LabelKey = Tuple[Tuple[str, Any], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class _Metric:
    """Common base: a name plus an immutable label set."""

    kind = "metric"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lbl = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        return f"<{type(self).__name__} {self.name}{{{lbl}}}>"


class CounterMetric(_Metric):
    """A monotonically increasing sum plus an event count.

    ``add(amount)`` adds ``amount`` to :attr:`total` and bumps
    :attr:`count` by one — the same contract as
    :class:`repro.sim.monitor.Counter`, so byte counters track both the
    byte total and the number of additions.
    """

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.total: float = 0.0
        self.count: int = 0

    def add(self, amount: float = 1.0) -> None:
        self.total += amount
        self.count += 1

    inc = add

    @property
    def value(self) -> float:
        return self.total


class GaugeMetric(_Metric):
    """A point-in-time value that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """Retain the high-water mark of everything ``set_max`` saw."""
        if value > self.value:
            self.value = value

    def add(self, delta: float = 1.0) -> None:
        self.value += delta


class CallbackGauge(_Metric):
    """A gauge whose value is read from a callback at snapshot time.

    Zero hot-path cost: the instrumented component never writes to it;
    the registry calls ``fn()`` only when a snapshot is taken.
    """

    kind = "gauge"

    def __init__(
        self, name: str, labels: Dict[str, Any], fn: Callable[[], float]
    ) -> None:
        super().__init__(name, labels)
        self._fn = fn

    @property
    def value(self) -> float:
        try:
            return float(self._fn())
        except Exception:
            return float("nan")


class HistogramMetric(_Metric):
    """Raw-sample histogram with percentile summaries.

    Samples are kept verbatim (simulations are small enough) so
    percentiles are exact, matching how the paper reports latency.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    def percentile(self, q: float) -> float:
        if not self.samples:
            return float("nan")
        return float(np.percentile(np.asarray(self.samples), q))

    def summary(self) -> Dict[str, float]:
        if not self.samples:
            return {
                "count": 0,
                "mean": float("nan"),
                "p50": float("nan"),
                "p90": float("nan"),
                "p99": float("nan"),
                "max": float("nan"),
            }
        arr = np.asarray(self.samples)
        p50, p90, p99 = (float(v) for v in np.percentile(arr, [50, 90, 99]))
        return {
            "count": int(arr.size),
            "mean": float(arr.mean()),
            "p50": p50,
            "p90": p90,
            "p99": p99,
            "max": float(arr.max()),
        }


class MetricsRegistry:
    """Get-or-create store of metrics keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], _Metric] = {}
        self._sequences: Dict[str, int] = {}

    # -- get-or-create constructors -----------------------------------------
    def _get(self, cls, name: str, labels: Dict[str, Any]) -> _Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r}{labels!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> CounterMetric:
        return self._get(CounterMetric, name, labels)

    def gauge(self, name: str, **labels: Any) -> GaugeMetric:
        return self._get(GaugeMetric, name, labels)

    def histogram(self, name: str, **labels: Any) -> HistogramMetric:
        return self._get(HistogramMetric, name, labels)

    def gauge_fn(self, name: str, fn: Callable[[], float], **labels: Any) -> CallbackGauge:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = CallbackGauge(name, labels, fn)
            self._metrics[key] = metric
        elif not isinstance(metric, CallbackGauge):
            raise TypeError(
                f"metric {name!r}{labels!r} already registered as "
                f"{type(metric).__name__}, not CallbackGauge"
            )
        return metric

    # -- instance numbering ---------------------------------------------------
    def sequence(self, name: str) -> int:
        """Next instance number for ``name`` (0, 1, 2, ...).

        Used to give each component instance a deterministic, unique
        label (creation order is deterministic in the simulation).
        """
        n = self._sequences.get(name, 0)
        self._sequences[name] = n + 1
        return n

    # -- removal (pruned sessions etc.) --------------------------------------
    def remove(self, name: str, **labels: Any) -> bool:
        """Drop one metric; returns whether it existed."""
        return self._metrics.pop((name, _label_key(labels)), None) is not None

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[_Metric]:
        return iter(self._metrics.values())

    def get(self, name: str, **labels: Any) -> Optional[_Metric]:
        return self._metrics.get((name, _label_key(labels)))

    def family(self, name: str) -> List[_Metric]:
        """All metrics sharing ``name``, in registration order."""
        return [m for (n, _), m in self._metrics.items() if n == name]

    def label_values(self, name: str, label: str) -> Dict[Any, float]:
        """``{label value -> metric value}`` for one family — the shape
        the old hand-rolled per-session dicts exposed."""
        out: Dict[Any, float] = {}
        for metric in self.family(name):
            if label in metric.labels:
                out[metric.labels[label]] = metric.value
        return out

    # -- snapshots -------------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """Flatten every metric to a JSON-friendly record."""
        records: List[Dict[str, Any]] = []
        for metric in self._metrics.values():
            rec: Dict[str, Any] = {
                "metric": metric.name,
                "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, CounterMetric):
                rec["value"] = metric.total
                rec["count"] = metric.count
            elif isinstance(metric, HistogramMetric):
                rec["summary"] = metric.summary()
            else:
                rec["value"] = metric.value
            records.append(rec)
        return records
