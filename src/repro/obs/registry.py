"""A label-aware metrics registry for the simulation.

Every :class:`~repro.sim.engine.Engine` owns one
:class:`MetricsRegistry`; instrumented components register counters,
gauges, and histograms on it instead of growing ad-hoc ``int``
attributes.  Metrics are keyed by ``(name, sorted(labels))`` so the
same call site is a get-or-create: two components asking for the same
name+labels share one metric, and label-partitioned families
(per-session, per-QP, per-link) fall out of passing different labels.

The numeric API of :class:`CounterMetric` is intentionally identical to
:class:`repro.sim.monitor.Counter` (``add`` / ``total`` / ``count`` /
``name``) so existing call sites and tests keep working unchanged when
a plain Counter attribute is swapped for a registry counter.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "MetricsRegistry",
    "CounterMetric",
    "GaugeMetric",
    "CallbackGauge",
    "HistogramMetric",
]

LabelKey = Tuple[Tuple[str, Any], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class _Metric:
    """Common base: a name plus an immutable label set."""

    kind = "metric"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lbl = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        return f"<{type(self).__name__} {self.name}{{{lbl}}}>"


class CounterMetric(_Metric):
    """A monotonically increasing sum plus an event count.

    ``add(amount)`` adds ``amount`` to :attr:`total` and bumps
    :attr:`count` by one — the same contract as
    :class:`repro.sim.monitor.Counter`, so byte counters track both the
    byte total and the number of additions.
    """

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.total: float = 0.0
        self.count: int = 0

    def add(self, amount: float = 1.0) -> None:
        self.total += amount
        self.count += 1

    inc = add

    @property
    def value(self) -> float:
        return self.total


class GaugeMetric(_Metric):
    """A point-in-time value that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """Retain the high-water mark of everything ``set_max`` saw."""
        if value > self.value:
            self.value = value

    def add(self, delta: float = 1.0) -> None:
        self.value += delta


class CallbackGauge(_Metric):
    """A gauge whose value is read from a callback at snapshot time.

    Zero hot-path cost: the instrumented component never writes to it;
    the registry calls ``fn()`` only when a snapshot is taken.
    """

    kind = "gauge"

    def __init__(
        self, name: str, labels: Dict[str, Any], fn: Callable[[], float]
    ) -> None:
        super().__init__(name, labels)
        self._fn = fn

    @property
    def value(self) -> float:
        try:
            return float(self._fn())
        except Exception:
            return float("nan")


class HistogramMetric(_Metric):
    """Streaming fixed-bucket histogram with percentile summaries.

    Observations land in log-spaced buckets (:attr:`BUCKETS_PER_DECADE`
    per decade over ``[1e-9, 1e3)``, with under/overflow clamped to the
    edge buckets), so ``observe`` is O(1) and memory is bounded no matter
    how long a run is.  ``count``/``total``/``min``/``max`` stay exact;
    percentiles are interpolated inside the containing bucket and are
    therefore accurate to one bucket width (a factor of
    :attr:`BUCKET_WIDTH` ≈ 1.037, i.e. < 4 %) — inside the 10 % tolerance
    the bench regression gate allows.
    """

    kind = "histogram"

    BUCKETS_PER_DECADE = 64
    _MIN_EXP = -9  # lowest bucket edge: 1e-9 (seconds scale: one ns)
    _DECADES = 12  # up to 1e3
    _NBUCKETS = BUCKETS_PER_DECADE * _DECADES
    _FLOOR = 10.0 ** _MIN_EXP
    #: Multiplicative width of one bucket — the resolution bound the
    #: percentile contract is stated in.
    BUCKET_WIDTH = 10.0 ** (1.0 / BUCKETS_PER_DECADE)

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.count: int = 0
        self.total: float = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._counts: List[int] = [0] * self._NBUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= self._FLOOR:
            index = 0
        else:
            index = int(
                (math.log10(value) - self._MIN_EXP) * self.BUCKETS_PER_DECADE
            )
            if index >= self._NBUCKETS:
                index = self._NBUCKETS - 1
        self._counts[index] += 1

    @property
    def min(self) -> float:
        return self._min if self.count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self.count else float("nan")

    def _bucket_edge(self, index: int) -> float:
        return 10.0 ** (self._MIN_EXP + index / self.BUCKETS_PER_DECADE)

    def _order_stat(self, j: int) -> float:
        """Estimate of the ``j``-th (0-indexed) ordered observation.

        The endpoints are exact (tracked min/max); interior positions
        are placed inside their containing bucket, clamped to the exact
        observed ``[min, max]``, so the estimate is off by at most one
        bucket width.
        """
        if j <= 0:
            return self._min
        if j >= self.count - 1:
            return self._max
        cum = 0
        for index, c in enumerate(self._counts):
            if not c:
                continue
            if j < cum + c:
                lo = self._bucket_edge(index)
                hi = self._bucket_edge(index + 1)
                if lo < self._min:
                    lo = self._min
                if hi > self._max:
                    hi = self._max
                if hi < lo:
                    hi = lo
                return lo + (hi - lo) * ((j - cum + 0.5) / c)
            cum += c
        return self._max

    def percentile(self, q: float) -> float:
        """Value at quantile ``q`` (0–100), to one bucket width.

        Follows the linearly-interpolated order-statistic convention
        (rank ``(count - 1) * q / 100``, interpolating between the two
        bracketing observations).  Each bracketing observation is
        estimated to one bucket width, so the result tracks the exact
        sample percentile to one bucket width even where the tail is
        sparse and adjacent observations sit buckets apart.
        """
        n = self.count
        if n == 0:
            return float("nan")
        if self._min == self._max:
            return self._min
        rank = (n - 1) * q / 100.0
        k = int(rank)
        frac = rank - k
        value = self._order_stat(k)
        if frac > 0.0:
            value += (self._order_stat(k + 1) - value) * frac
        return value

    def merge(self, other: "HistogramMetric") -> None:
        """Fold another histogram's buckets into this one (same layout)."""
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        counts = self._counts
        for index, c in enumerate(other._counts):
            if c:
                counts[index] += c

    @staticmethod
    def merged(metrics: Iterable["HistogramMetric"]) -> "HistogramMetric":
        """A fresh histogram holding the union of ``metrics``' buckets."""
        out = HistogramMetric("merged", {})
        for metric in metrics:
            out.merge(metric)
        return out

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {
                "count": 0,
                "mean": float("nan"),
                "p50": float("nan"),
                "p90": float("nan"),
                "p99": float("nan"),
                "max": float("nan"),
            }
        return {
            "count": self.count,
            "mean": self.total / self.count,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self._max,
        }


class MetricsRegistry:
    """Get-or-create store of metrics keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], _Metric] = {}
        self._sequences: Dict[str, int] = {}

    # -- get-or-create constructors -----------------------------------------
    def _get(self, cls, name: str, labels: Dict[str, Any]) -> _Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r}{labels!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> CounterMetric:
        return self._get(CounterMetric, name, labels)

    def gauge(self, name: str, **labels: Any) -> GaugeMetric:
        return self._get(GaugeMetric, name, labels)

    def histogram(self, name: str, **labels: Any) -> HistogramMetric:
        return self._get(HistogramMetric, name, labels)

    def gauge_fn(self, name: str, fn: Callable[[], float], **labels: Any) -> CallbackGauge:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = CallbackGauge(name, labels, fn)
            self._metrics[key] = metric
        elif not isinstance(metric, CallbackGauge):
            raise TypeError(
                f"metric {name!r}{labels!r} already registered as "
                f"{type(metric).__name__}, not CallbackGauge"
            )
        else:
            # Re-registration rebinds the callback: a component restarted
            # on the same engine (e.g. a recovered broker) must report its
            # NEW incarnation's state, not a closure over the dead one's.
            metric._fn = fn
        return metric

    # -- instance numbering ---------------------------------------------------
    def sequence(self, name: str) -> int:
        """Next instance number for ``name`` (0, 1, 2, ...).

        Used to give each component instance a deterministic, unique
        label (creation order is deterministic in the simulation).
        """
        n = self._sequences.get(name, 0)
        self._sequences[name] = n + 1
        return n

    # -- removal (pruned sessions etc.) --------------------------------------
    def remove(self, name: str, **labels: Any) -> bool:
        """Drop one metric; returns whether it existed."""
        return self._metrics.pop((name, _label_key(labels)), None) is not None

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[_Metric]:
        return iter(self._metrics.values())

    def get(self, name: str, **labels: Any) -> Optional[_Metric]:
        return self._metrics.get((name, _label_key(labels)))

    def family(self, name: str) -> List[_Metric]:
        """All metrics sharing ``name``, in registration order."""
        return [m for (n, _), m in self._metrics.items() if n == name]

    def label_values(self, name: str, label: str) -> Dict[Any, float]:
        """``{label value -> metric value}`` for one family — the shape
        the old hand-rolled per-session dicts exposed."""
        out: Dict[Any, float] = {}
        for metric in self.family(name):
            if label in metric.labels:
                out[metric.labels[label]] = metric.value
        return out

    # -- snapshots -------------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """Flatten every metric to a JSON-friendly record."""
        records: List[Dict[str, Any]] = []
        for metric in self._metrics.values():
            rec: Dict[str, Any] = {
                "metric": metric.name,
                "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, CounterMetric):
                rec["value"] = metric.total
                rec["count"] = metric.count
            elif isinstance(metric, HistogramMetric):
                rec["summary"] = metric.summary()
            else:
                rec["value"] = metric.value
            records.append(rec)
        return records
