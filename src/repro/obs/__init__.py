"""Unified observability layer: metrics registry, collection hooks,
JSONL export, and the regression-gated benchmark harness.

Kept import-light: the engine imports this package at startup, so only
the registry and runtime hooks load eagerly.  The bench/compare modules
(which pull in testbeds and application stacks) are imported lazily by
the CLI.
"""

from repro.obs.registry import (
    CallbackGauge,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from repro.obs import runtime
from repro.obs.export import (
    metrics_lines,
    trace_lines,
    write_metrics_jsonl,
    write_trace_jsonl,
)

__all__ = [
    "MetricsRegistry",
    "CounterMetric",
    "GaugeMetric",
    "CallbackGauge",
    "HistogramMetric",
    "runtime",
    "metrics_lines",
    "trace_lines",
    "write_metrics_jsonl",
    "write_trace_jsonl",
]
