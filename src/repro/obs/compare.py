"""Regression gate between two ``BENCH_*.json`` documents.

A case regresses when, beyond the tolerance (default 10 %):

* ``gbps`` drops (throughput is better-higher),
* ``p50_us`` or ``p99_us`` rises (latency is better-lower) — including
  from a zero baseline, where no finite ratio exists but the change is
  still reported and gated,
* the case is missing from the current run entirely.

``events_per_sec`` is wall-clock dependent (host load, hardware), so it
is reported for information but never gates.  A metric that is ``None``
on either side is skipped — e.g. GridFTP latency, which the workload
does not produce.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.bench import validate_bench

__all__ = ["Delta", "Comparison", "compare_bench", "compare_files"]

DEFAULT_TOLERANCE = 0.10

#: metric name -> True when higher values are better.
GATED_METRICS = {"gbps": True, "p50_us": False, "p99_us": False}
INFO_METRICS = ("events_per_sec",)


@dataclass
class Delta:
    """One metric's baseline/current pair and its verdict."""

    case: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    #: Signed relative change, positive = current above baseline.
    ratio: Optional[float]
    regressed: bool
    gated: bool

    def describe(self) -> str:
        if self.baseline is None or self.current is None:
            return f"{self.case}.{self.metric}: skipped (no data)"
        if self.ratio is None:
            pct = "from zero" if self.current != 0 else "n/a"
        else:
            pct = f"{self.ratio * 100:+.1f}%"
        flag = " REGRESSION" if self.regressed else ""
        return (
            f"{self.case}.{self.metric}: {self.baseline:.6g} -> "
            f"{self.current:.6g} ({pct}){flag}"
        )


@dataclass
class Comparison:
    tolerance: float
    deltas: List[Delta] = field(default_factory=list)
    missing_cases: List[str] = field(default_factory=list)
    new_cases: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing_cases

    def report(self) -> str:
        lines = [f"bench comparison (tolerance {self.tolerance * 100:.0f}%)"]
        for delta in self.deltas:
            lines.append("  " + delta.describe())
        for name in self.missing_cases:
            lines.append(f"  {name}: MISSING from current run (regression)")
        for name in self.new_cases:
            lines.append(f"  {name}: new case (not in baseline, not gated)")
        verdict = "OK" if self.ok else f"FAIL ({len(self.regressions)} metric(s)"
        if not self.ok:
            verdict += f", {len(self.missing_cases)} missing case(s))"
        lines.append(verdict)
        return "\n".join(lines)


def _relative_change(baseline: float, current: float) -> Optional[float]:
    if baseline == 0:
        return None
    return (current - baseline) / abs(baseline)


def compare_bench(
    baseline: dict,
    current: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    cases: Optional[Sequence[str]] = None,
) -> Comparison:
    """Compare two validated bench documents case by case.

    ``cases`` restricts the gate to the named baseline cases — the CI
    single-case legs run one case and would otherwise fail the
    missing-case check for everything they deliberately skipped.  Naming
    a case the baseline does not have is an error (a typo would
    otherwise gate nothing and pass vacuously).
    """
    validate_bench(baseline)
    validate_bench(current)
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    cmp = Comparison(tolerance=tolerance)
    base_results: Dict[str, dict] = baseline["results"]
    cur_results: Dict[str, dict] = current["results"]
    if cases is not None:
        unknown = sorted(set(cases) - set(base_results))
        if unknown:
            raise ValueError(f"unknown baseline case(s): {', '.join(unknown)}")
        base_results = {n: base_results[n] for n in cases}
        cur_results = {n: r for n, r in cur_results.items() if n in set(cases)}
    cmp.new_cases = sorted(set(cur_results) - set(base_results))
    for name in sorted(base_results):
        if name not in cur_results:
            cmp.missing_cases.append(name)
            continue
        base, cur = base_results[name], cur_results[name]
        for metric, higher_is_better in GATED_METRICS.items():
            b, c = base.get(metric), cur.get(metric)
            if b is None or c is None:
                cmp.deltas.append(Delta(name, metric, b, c, None, False, True))
                continue
            ratio = _relative_change(float(b), float(c))
            if ratio is None:
                # Zero baseline: no finite ratio exists, but a metric
                # appearing from nothing is a real change, not a skip —
                # a better-lower metric (latency) rising from 0 gates as
                # a regression; a better-higher one rising from 0 is an
                # improvement.  Masking this behind ``regressed = False``
                # once hid a latency metric that sprang into existence.
                regressed = float(c) != 0.0 and not higher_is_better
            elif higher_is_better:
                regressed = ratio < -tolerance
            else:
                regressed = ratio > tolerance
            cmp.deltas.append(
                Delta(name, metric, float(b), float(c), ratio, regressed, True)
            )
        for metric in INFO_METRICS:
            b, c = base.get(metric), cur.get(metric)
            ratio = (
                _relative_change(float(b), float(c))
                if b is not None and c is not None
                else None
            )
            cmp.deltas.append(
                Delta(
                    name,
                    metric,
                    None if b is None else float(b),
                    None if c is None else float(c),
                    ratio,
                    False,
                    False,
                )
            )
    return cmp


def compare_files(
    baseline_path: str,
    current_path: str,
    tolerance: float = DEFAULT_TOLERANCE,
    cases: Optional[Sequence[str]] = None,
) -> Comparison:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(current_path) as fh:
        current = json.load(fh)
    return compare_bench(baseline, current, tolerance=tolerance, cases=cases)
