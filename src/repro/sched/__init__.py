"""FTS-style multi-tenant transfer scheduler.

The fleet-scale front door over the single-transfer middleware: a
:class:`~repro.sched.broker.TransferBroker` accepts bulk *jobs* (many
files, priority, tenant, ordered source alternatives) and multiplexes
them onto a bounded pool of reused transfer sessions with weighted
per-tenant fair share, admission control, per-destination dedupe, and
``orderly`` multi-source failover guarded by circuit breakers.  Every
state transition is journaled, so a crashed broker recovers from its
write-ahead log with nothing lost and nothing transferred twice.

- :mod:`repro.sched.jobs` — the FTS-mirroring job/file state model
- :mod:`repro.sched.broker` — the scheduler itself (+ doors)
- :mod:`repro.sched.journal` — the replayable write-ahead journal
- :mod:`repro.sched.overload` — backpressure, load shedding, retry
  budgets, and brownout degradation under fleet-scale overload
- :mod:`repro.sched.spec` — job-mix spec format and synthetic generator
- :mod:`repro.sched.report` — deterministic JSONL job reports
- :mod:`repro.sched.runner` — one-call spec → testbed → result harness
  (including the crash-restart supervisor and the delivery audit)
"""

from repro.sched.broker import (
    BrokerConfig,
    RftpDoor,
    SchedulerConfig,
    TenantPolicy,
    TransferBroker,
)
from repro.sched.jobs import FileState, FileTask, Job, JobState, TransferSpec
from repro.sched.journal import (
    Journal,
    RecoveredState,
    replay,
    restore_jobs,
    snapshot_jobs,
)
from repro.sched.overload import OverloadConfig, OverloadController
from repro.sched.report import (
    report_lines,
    stable_report_lines,
    summarize,
    write_report,
)
from repro.sched.runner import (
    BrokerSupervisor,
    SchedResult,
    audit_delivery,
    quiescence_leaks,
    run_sched,
)
from repro.sched.spec import (
    load_spec,
    overload_spec,
    synthetic_spec,
    validate_spec,
)

__all__ = [
    "BrokerConfig",
    "BrokerSupervisor",
    "FileState",
    "FileTask",
    "Job",
    "JobState",
    "Journal",
    "OverloadConfig",
    "OverloadController",
    "RecoveredState",
    "RftpDoor",
    "SchedResult",
    "SchedulerConfig",
    "TenantPolicy",
    "TransferBroker",
    "TransferSpec",
    "audit_delivery",
    "load_spec",
    "overload_spec",
    "quiescence_leaks",
    "replay",
    "report_lines",
    "restore_jobs",
    "run_sched",
    "snapshot_jobs",
    "stable_report_lines",
    "summarize",
    "synthetic_spec",
    "validate_spec",
    "write_report",
]
