"""FTS-style multi-tenant transfer scheduler.

The fleet-scale front door over the single-transfer middleware: a
:class:`~repro.sched.broker.TransferBroker` accepts bulk *jobs* (many
files, priority, tenant, ordered source alternatives) and multiplexes
them onto a bounded pool of reused transfer sessions with weighted
per-tenant fair share, admission control, per-destination dedupe, and
``orderly`` multi-source failover guarded by circuit breakers.

- :mod:`repro.sched.jobs` — the FTS-mirroring job/file state model
- :mod:`repro.sched.broker` — the scheduler itself (+ doors)
- :mod:`repro.sched.spec` — job-mix spec format and synthetic generator
- :mod:`repro.sched.report` — deterministic JSONL job reports
- :mod:`repro.sched.runner` — one-call spec → testbed → result harness
"""

from repro.sched.broker import BrokerConfig, RftpDoor, TenantPolicy, TransferBroker
from repro.sched.jobs import FileState, FileTask, Job, JobState, TransferSpec
from repro.sched.report import report_lines, summarize, write_report
from repro.sched.runner import SchedResult, run_sched
from repro.sched.spec import load_spec, synthetic_spec, validate_spec

__all__ = [
    "BrokerConfig",
    "FileState",
    "FileTask",
    "Job",
    "JobState",
    "RftpDoor",
    "SchedResult",
    "TenantPolicy",
    "TransferBroker",
    "TransferSpec",
    "load_spec",
    "report_lines",
    "run_sched",
    "summarize",
    "synthetic_spec",
    "validate_spec",
    "write_report",
]
