"""Job and file state model for the transfer broker.

The model mirrors FTS: a *job* is a tenant's bulk submission of many
files; each file carries an ordered list of alternative sources and
walks SUBMITTED → READY → ACTIVE → FINISHED/FAILED/CANCELED with a
per-file retry count.  Everything here is plain bookkeeping — the sim
processes that move the states live in :mod:`repro.sched.broker` — so
the scheduler is testable as a deterministic state machine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["FileState", "JobState", "TransferSpec", "FileTask", "Job"]


class FileState(str, enum.Enum):
    """Lifecycle of one file within a job (FTS file states)."""

    SUBMITTED = "SUBMITTED"  #: accepted, waiting in the tenant queue
    READY = "READY"          #: picked by the dispatcher, awaiting a slot
    ACTIVE = "ACTIVE"        #: a transfer session is running
    FINISHED = "FINISHED"    #: delivered byte-exact
    FAILED = "FAILED"        #: retry budget exhausted across alternatives
    CANCELED = "CANCELED"    #: rejected at admission (or sibling cascade)

    @property
    def terminal(self) -> bool:
        return self in (FileState.FINISHED, FileState.FAILED, FileState.CANCELED)


class JobState(str, enum.Enum):
    """Lifecycle of a bulk submission (derived from its files)."""

    SUBMITTED = "SUBMITTED"
    ACTIVE = "ACTIVE"
    FINISHED = "FINISHED"  #: every file FINISHED
    FAILED = "FAILED"      #: at least one file FAILED, none pending
    CANCELED = "CANCELED"  #: rejected at admission

    @property
    def terminal(self) -> bool:
        return self in (JobState.FINISHED, JobState.FAILED, JobState.CANCELED)


@dataclass(frozen=True)
class TransferSpec:
    """One requested file: destination path, size, ordered alternatives.

    ``sources`` names broker endpoints (doors) in preference order — the
    FTS ``orderly`` selection strategy.  Empty means "any endpoint", i.e.
    the broker's full door list in its configured order.
    """

    path: str
    size: int
    sources: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"file {self.path!r}: size must be positive")
        if not self.path:
            raise ValueError("file needs a destination path")


@dataclass
class FileTask:
    """Mutable per-file scheduling state."""

    spec: TransferSpec
    job: "Job"
    index: int  #: position within the job, for stable reporting
    state: FileState = FileState.SUBMITTED
    #: Transfer attempts started (first try included).
    attempts: int = 0
    #: Cursor into the alternatives list (advances on failure — orderly).
    alt_cursor: int = 0
    #: Endpoint that carried the successful transfer, for the report.
    source_used: Optional[str] = None
    #: Final error string for FAILED/CANCELED files.
    error: Optional[str] = None
    submitted_at: float = 0.0
    #: First time the dispatcher picked the task (queue-wait anchor).
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: When this submission was a duplicate of an earlier in-flight one
    #: (same destination path), it rides along: the primary's outcome is
    #: mirrored here and no second transfer runs.
    duplicate_of: Optional["FileTask"] = None
    duplicates: List["FileTask"] = field(default_factory=list)
    #: Session id / door of the most recent attempt — journaled so crash
    #: recovery can re-attach an interrupted session via SESSION_RESUME.
    last_session: Optional[int] = None
    last_door: Optional[str] = None
    #: True when this file's outcome was carried across a broker restart
    #: (journal-replayed terminal state or a resumed/retried attempt).
    recovered: bool = False
    #: Block seq a post-crash SESSION_RESUME re-attached at (>0 means
    #: only the suffix moved after recovery).
    resumed_from: int = 0

    @property
    def path(self) -> str:
        return self.spec.path

    @property
    def size(self) -> int:
        return self.spec.size

    def resolve(self, state: FileState, now: float, error: Optional[str] = None,
                source_used: Optional[str] = None) -> None:
        """Move to a terminal state and cascade to attached duplicates."""
        assert state.terminal, state
        self.state = state
        self.finished_at = now
        self.error = error
        if source_used is not None:
            self.source_used = source_used
        for dup in self.duplicates:
            if dup.state.terminal:
                continue  # e.g. canceled with its own job before we resolved
            dup.state = state
            dup.finished_at = now
            dup.error = error
            dup.source_used = self.source_used
            dup.job._note_progress()
        self.job._note_progress()


@dataclass
class Job:
    """One bulk submission."""

    job_id: str
    tenant: str
    priority: int
    files: List[FileTask] = field(default_factory=list)
    state: JobState = JobState.SUBMITTED
    submitted_at: float = 0.0
    finished_at: Optional[float] = None
    #: Optional completion deadline, seconds after submission; past it
    #: the broker cancels whatever files remain (journaled terminal).
    deadline: Optional[float] = None
    #: True when the overload layer load-shed this submission whole —
    #: a cooperative rejection, not a failure: ``retry_after`` tells the
    #: client when to resubmit (the runner honours it).
    shed: bool = False
    shed_reason: Optional[str] = None
    #: Deterministic, jittered RETRY_AFTER hint, seconds (shed jobs).
    retry_after: Optional[float] = None
    #: True when this job was reconstructed from the journal.
    recovered: bool = False
    #: Succeeds (with the job) once every file is terminal; wired by the
    #: broker at submission so callers can ``yield job.done``.
    done: object = None

    @classmethod
    def build(
        cls,
        job_id: str,
        tenant: str,
        files: Sequence[TransferSpec],
        priority: int = 0,
    ) -> "Job":
        job = cls(job_id=job_id, tenant=tenant, priority=priority)
        job.files = [FileTask(spec=s, job=job, index=i) for i, s in enumerate(files)]
        return job

    @property
    def retries(self) -> int:
        """Transfer attempts beyond each file's first (job-level total)."""
        return sum(max(0, t.attempts - 1) for t in self.files)

    def _note_progress(self) -> None:
        if self.state.terminal:
            return
        states = [t.state for t in self.files]
        if all(s.terminal for s in states):
            if all(s is FileState.FINISHED for s in states):
                self.state = JobState.FINISHED
            elif any(s is FileState.FAILED for s in states):
                self.state = JobState.FAILED
            else:
                self.state = JobState.CANCELED
            if self.done is not None and not self.done.triggered:
                self.done.succeed(self)
        elif any(s is FileState.ACTIVE for s in states):
            self.state = JobState.ACTIVE
