"""Wire a job-mix spec onto a testbed and run it to completion.

Besides the happy path, the runner owns the durability harness:

- every run journals its state transitions (``journal_path`` mirrors the
  records to disk as flushed JSON lines);
- :class:`BrokerSupervisor` restarts a crashed broker from the journal
  (``faults.broker_crashes`` in the spec schedules the crashes), so a
  run survives its scheduler dying mid-flight;
- ``recover=<journal file>`` with no spec restarts a *previous* run from
  its journal — the spec is embedded in the journal's first record;
- ``audit=True`` swaps in a verifiable pattern source and a collecting
  sink, and :func:`audit_delivery` then asserts zero lost files, zero
  divergent duplicate bytes, and byte-identical content per finished
  file even across broker crashes and session resumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.io import CollectingSink, PatternSource, ZeroSource
from repro.apps.rftp import RftpServer
from repro.core import ProtocolConfig, RdmaMiddleware
from repro.sched.broker import (
    RftpDoor,
    SchedulerConfig,
    TenantPolicy,
    TransferBroker,
)
from repro.sched.jobs import FileState, Job, TransferSpec
from repro.sched.journal import Journal
from repro.sched.overload import OverloadConfig
from repro.sched.spec import validate_spec
from repro.testbeds import TESTBEDS, Testbed

__all__ = [
    "SchedResult", "BrokerSupervisor", "run_sched", "audit_delivery",
    "quiescence_leaks",
]

_PORT = 2811

#: FaultPlan fields a spec's ``faults`` object may set (scheduled and
#: probabilistic seams both; anything else in the object is an error so
#: a typo'd key fails loudly instead of silently doing nothing).
_FAULT_KEYS = {
    "seed", "write_fault_rate", "ctrl_drop_rate", "ctrl_delay_rate",
    "ctrl_delay_seconds", "link_flaps", "latency_spike_rate",
    "latency_spike_seconds", "payload_corrupt_rate", "sink_crashes",
    "source_crashes", "broker_crashes", "qp_kills", "heartbeat_drop_rate",
    "fallback_deny", "attempt_fault_rate", "attempt_fault_window",
}


class BrokerSupervisor:
    """Restarts a crashed broker from its journal.

    The process-supervisor role a real deployment gives systemd: when
    :meth:`crash` kills the current incarnation, a restart fires after
    ``restart_delay`` seconds and the next incarnation is built with
    :meth:`TransferBroker.recover` from the (surviving) journal.  With
    ``recover_path`` set, the journal takes a full durability round trip
    through that file first — recovery then sees exactly what would have
    reached disk, not in-process state.  Submissions arriving while the
    broker is down are queued and replayed, in order, on the new
    incarnation.
    """

    def __init__(
        self,
        engine: Any,
        doors: List[RftpDoor],
        config: Optional[SchedulerConfig] = None,
        tenants: Optional[Dict[str, TenantPolicy]] = None,
        journal: Optional[Journal] = None,
        seed: int = 0,
        restart_delay: float = 0.5,
        recover_path: Optional[str] = None,
        overload: Optional[OverloadConfig] = None,
    ) -> None:
        if restart_delay <= 0:
            raise ValueError("restart_delay must be positive")
        self.engine = engine
        self.doors = doors
        self.config = config
        self.tenants = tenants
        self.seed = seed
        self.restart_delay = restart_delay
        self.recover_path = recover_path
        self.overload = overload
        #: Chaos seam carried across incarnations: re-installed on every
        #: recovered broker so a retry storm survives its own crash.
        self.attempt_fault_hook = None
        self.broker = TransferBroker(
            engine, doors, config, tenants, journal=journal, seed=seed,
            overload=overload,
        )
        self.recoveries = 0
        self._pending: List[Tuple[Any, ...]] = []

    def submit(self, tenant: str, files: List[TransferSpec],
               priority: int = 0, job_id: Optional[str] = None,
               deadline: Optional[float] = None) -> Optional[Job]:
        """Submit through the current incarnation; while the broker is
        down, the submission queues for the next one (returns None)."""
        if self.broker._dead:
            self._pending.append((tenant, files, priority, job_id, deadline))
            return None
        return self.broker.submit(
            tenant, files, priority=priority, job_id=job_id,
            deadline=deadline,
        )

    def crash(self) -> None:
        """Kill the current incarnation and schedule its restart."""
        if self.broker._dead:
            return
        journal = self.broker.journal
        self.broker.crash()
        self.engine.process(self._restart(journal))

    def _restart(self, journal: Journal):
        yield self.engine.timeout(self.restart_delay)
        if self.recover_path is not None:
            # Durability round trip: recovery must see what reached the
            # file, not the dead incarnation's in-memory list.
            journal.close()
            journal.sync(self.recover_path)
            journal = Journal.load(self.recover_path, mirror=True)
        self.broker = TransferBroker.recover(
            self.engine, self.doors, journal,
            config=self.config, tenants=self.tenants, seed=self.seed,
            overload=self.overload,
        )
        self.broker.attempt_fault_hook = self.attempt_fault_hook
        self.recoveries += 1
        pending, self._pending = self._pending, []
        for tenant, files, priority, job_id, deadline in pending:
            self.broker.submit(
                tenant, files, priority=priority, job_id=job_id,
                deadline=deadline,
            )


@dataclass
class SchedResult:
    """One completed broker run."""

    jobs: List[Job]
    broker: TransferBroker
    testbed: Testbed
    header: Dict[str, Any]
    #: The run's journal (in-memory; mirrored to disk when asked).
    journal: Optional[Journal] = None
    #: Broker restarts the supervisor performed (crash recoveries).
    recoveries: int = 0
    #: True when the run ended through ``drain_at`` with a checkpoint.
    drained: bool = False
    #: Wired only under ``audit=True``.
    source: Any = None
    sink: Any = None
    block_size: int = 0
    audit_ok: Optional[bool] = None
    audit_problems: List[str] = field(default_factory=list)
    #: Bytes a block delivered more than once contributed beyond its
    #: first copy (identical-content overlap across a session resume).
    overlap_bytes: int = 0
    #: Bytes moved after crash recovery by resumed sessions (the suffix
    #: past each sink restart marker).
    recovered_suffix_bytes: int = 0
    #: The run's server (for quiescence leak audits of the sink side).
    server: Any = None
    #: Post-run quiescence problems (see :func:`quiescence_leaks`).
    leaks: List[str] = field(default_factory=list)
    #: Jobs (and their files) the overload layer load-shed whole.
    shed_jobs: int = 0
    shed_files: int = 0

    @property
    def all_finished(self) -> bool:
        return all(j.state.value == "FINISHED" for j in self.jobs)

    @property
    def unresolved(self) -> List[Job]:
        """Jobs that neither finished nor were cooperatively shed — the
        set an operator actually has to chase after an overload run."""
        return [
            j for j in self.jobs
            if j.state.value != "FINISHED" and not j.shed
        ]

    @property
    def all_resolved(self) -> bool:
        """Every job finished or was shed with a RETRY_AFTER hint (shed
        work is *reported*, not lost — that counts as resolved)."""
        return not self.unresolved


def _build_fault_plan(obj: Dict[str, Any]):
    from repro.faults.plan import FaultPlan

    unknown = set(obj) - _FAULT_KEYS
    if unknown:
        raise ValueError(f"unknown fault keys: {sorted(unknown)}")
    kwargs = dict(obj)
    for key in ("link_flaps", "qp_kills"):
        if key in kwargs:
            kwargs[key] = tuple(tuple(item) for item in kwargs[key])
    for key in ("sink_crashes", "source_crashes", "broker_crashes"):
        if key in kwargs:
            kwargs[key] = tuple(kwargs[key])
    return FaultPlan(**kwargs)


def audit_delivery(
    jobs: List[Job],
    sink: CollectingSink,
    source: PatternSource,
    block_size: int,
) -> Tuple[bool, List[str], int, int]:
    """Byte-exactness audit over a collecting sink's delivery log.

    For every FINISHED primary file, the blocks delivered under its
    successful session id must cover exactly ``0..nblocks-1`` with the
    expected pattern payloads and lengths.  A block may appear twice only
    when the session was resumed across a crash AND both copies are
    identical — divergent re-delivery is corruption.  Returns
    ``(ok, problems, overlap_bytes, recovered_suffix_bytes)``.
    """
    by_session: Dict[int, Dict[int, List[Tuple[Any, Any]]]] = {}
    for header, payload in sink.deliveries:
        by_session.setdefault(header.session_id, {}) \
            .setdefault(header.seq, []).append((header, payload))

    problems: List[str] = []
    overlap_bytes = 0
    recovered_suffix_bytes = 0
    for job in jobs:
        for task in job.files:
            if task.duplicate_of is not None:
                continue
            if task.state is not FileState.FINISHED:
                continue
            label = f"{job.job_id}:{task.path}"
            sid = task.last_session
            blocks = by_session.get(sid or -1)
            if blocks is None:
                problems.append(f"{label}: no deliveries for session {sid}")
                continue
            total_blocks = -(-task.size // block_size)
            if sorted(blocks) != list(range(total_blocks)):
                problems.append(
                    f"{label}: delivered seqs {sorted(blocks)} != "
                    f"0..{total_blocks - 1}"
                )
                continue
            delivered = 0
            for seq, copies in sorted(blocks.items()):
                header, payload = copies[0]
                expected_len = min(block_size, task.size - seq * block_size)
                if header.length != expected_len:
                    problems.append(
                        f"{label}: seq {seq} length {header.length} != "
                        f"{expected_len}"
                    )
                if payload != (source.tag, seq, expected_len):
                    problems.append(
                        f"{label}: seq {seq} payload corrupted ({payload!r})"
                    )
                for other_header, other_payload in copies[1:]:
                    if (other_header, other_payload) != (header, payload):
                        problems.append(
                            f"{label}: seq {seq} re-delivered with divergent "
                            f"content"
                        )
                    else:
                        overlap_bytes += header.length
                if len(copies) > 1 and not task.recovered:
                    problems.append(
                        f"{label}: seq {seq} delivered twice without a "
                        f"session resume"
                    )
                delivered += header.length
            if delivered != task.size:
                problems.append(
                    f"{label}: delivered {delivered} bytes != {task.size}"
                )
            if task.resumed_from > 0:
                recovered_suffix_bytes += max(
                    0, task.size - task.resumed_from * block_size
                )
    return not problems, problems, overlap_bytes, recovered_suffix_bytes


def quiescence_leaks(result: "SchedResult") -> List[str]:
    """Post-run leak audit: after a shed-heavy campaign every transient
    structure must be back at baseline.

    Shedding rejects work at admission, so nothing it touches may linger:
    broker worker slots, parked retry timers, tenant queues and stride
    bookkeeping, destination ownership, and — on the server side — sink
    session tables and reassembly parking must all be empty/terminal.
    Returns a list of problems (empty means quiescent).
    """
    leaks: List[str] = []
    broker = result.broker
    if broker._active:
        leaks.append(f"{broker._active} broker worker slots still active")
    if broker._outstanding:
        leaks.append(f"{broker._outstanding} primary files still outstanding")
    if broker._parked:
        leaks.append(f"{len(broker._parked)} retry timers still parked")
    for name, state in sorted(broker._tenants.items()):
        if state.queued or state.inflight or state.parked:
            leaks.append(
                f"tenant {name!r} not at baseline: queued={state.queued} "
                f"inflight={state.inflight} parked={state.parked}"
            )
    for path, task in sorted(broker._dest_owner.items()):
        if not task.state.terminal:
            leaks.append(
                f"dest owner for {path!r} non-terminal ({task.state.value})"
            )
    seen_pools: set = set()
    for name, door in sorted(broker.doors.items()):
        hp = getattr(door.link, "_host_pool", None)
        if hp is None or id(hp) in seen_pools:
            continue  # dedicated-QP door, or a pool already audited
        # Doors to the same (host, port) share one pool: audit it once.
        seen_pools.add(id(hp))
        if not hp.sessions.balanced:
            leaks.append(
                f"host pool via {name}: {hp.sessions.leased} channel "
                f"leases never returned"
            )
    server = result.server
    if server is not None:
        history_cap = server.config.sink_session_history
        for client_id, eng in sorted(server.middleware.sink_engines.items()):
            if eng.active_sessions():
                leaks.append(
                    f"sink engine {client_id}: {eng.active_sessions()} "
                    f"sessions never retired"
                )
            if len(eng._retired) > history_cap:
                leaks.append(
                    f"sink engine {client_id}: retired-session history "
                    f"{len(eng._retired)} exceeds cap {history_cap}"
                )
            parked = eng.reassembly.sessions_with_parked()
            if parked:
                leaks.append(
                    f"sink engine {client_id}: reassembly entries parked "
                    f"for sessions {parked}"
                )
    return leaks


def run_sched(
    spec: Optional[Dict[str, Any]] = None,
    config: Optional[ProtocolConfig] = None,
    horizon: Optional[float] = None,
    journal_path: Optional[str] = None,
    recover: Optional[str] = None,
    audit: bool = False,
    restart_delay: float = 0.5,
) -> SchedResult:
    """Run one job-mix spec; returns once the engine drains (or hits
    ``horizon``).  Deterministic: the same spec (and seed) produces the
    same schedule, the same job states, and the same report bytes.

    ``spec=None`` with ``recover=<journal file>`` restarts a previous run
    from its journal instead: jobs come back by replay (no submissions),
    and interrupted files continue.  ``journal_path`` mirrors a fresh
    run's journal to disk; ``recover`` together with a spec makes every
    in-run broker restart round-trip its journal through that file.
    """
    recovering = spec is None
    if recovering:
        if recover is None:
            raise ValueError("run_sched needs a spec or a journal to recover")
        journal = Journal.load(recover, mirror=True)
        spec = journal.spec()
        if spec is None:
            raise ValueError(
                f"journal {recover!r} has no embedded spec record"
            )
    else:
        journal = Journal(path=journal_path)
        journal.append("spec", spec=spec)
    validate_spec(spec)
    testbed_name = spec.get("testbed", "ani-wan")
    if testbed_name not in TESTBEDS:
        raise ValueError(f"unknown testbed {testbed_name!r}")
    seed = int(spec.get("seed", 0))
    testbed = TESTBEDS[testbed_name](seed=seed)
    engine = testbed.engine
    cfg = config or ProtocolConfig()
    if config is None and bool(spec.get("use_srq", False)):
        # The spec's connection-scaling switch only fills in when the
        # caller didn't hand us an explicit ProtocolConfig.
        cfg = replace(cfg, use_srq=True)

    injector = None
    if not recovering and spec.get("faults"):
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(_build_fault_plan(spec["faults"]))
        injector.arm_network(testbed)

    sink = CollectingSink(testbed.dst) if audit else None
    server = RftpServer(testbed, cfg, sink)
    server.start(_PORT)
    client_mw = RdmaMiddleware(testbed.src, testbed.src_dev, testbed.cm, cfg)
    if audit:
        source: Any = PatternSource(testbed.src, tag="sched")
    else:
        source = ZeroSource(testbed.src)

    n_doors = int(spec.get("doors", 1))
    door_sessions = int(spec.get("door_sessions", 4))
    doors = [
        RftpDoor(
            f"door-{i}",
            client_mw,
            testbed.dst_dev,
            _PORT,
            source,
            max_sessions=door_sessions,
            tcp_factory=testbed.tcp_connection,
            # Chaos kills land on door 0's connection set: the broker
            # must fail the mid-job transfers over to the other doors.
            fault_injector=injector if i == 0 else None,
        )
        for i in range(n_doors)
    ]
    broker_cfg = SchedulerConfig(
        max_active=int(spec.get("max_active", 8)),
        watchdog=bool(spec.get("watchdog", False)),
        checkpoint_compact=bool(spec.get("checkpoint_compact", False)),
    )
    tenants = {
        name: TenantPolicy(
            weight=float(t.get("weight", 1.0)),
            max_inflight=int(t.get("max_inflight", broker_cfg.max_active)),
            max_queued=int(t.get("max_queued", 100_000)),
        )
        for name, t in spec.get("tenants", {}).items()
    }
    overload_cfg = None
    if spec.get("overload"):
        overload_cfg = OverloadConfig.from_spec(spec["overload"])
    supervisor = BrokerSupervisor(
        engine, doors, broker_cfg, tenants,
        journal=None if recovering else journal,
        seed=seed, restart_delay=restart_delay,
        recover_path=None if recovering else recover,
        overload=overload_cfg,
    )
    if injector is not None:
        injector.arm_broker(supervisor)
        injector.arm_scheduler(supervisor)

    job_specs = spec["jobs"]
    drain_at = spec.get("drain_at")
    status = {"drained": False}

    def _main():
        for door in doors:
            yield door.open()
        if injector is not None:
            injector.arm_source(doors[0].link)
        if recovering:
            # Jobs come back by journal replay, not submission; replace
            # the supervisor's fresh (empty) incarnation.
            supervisor.broker = TransferBroker.recover(
                engine, doors, journal,
                config=broker_cfg, tenants=tenants, seed=seed,
                overload=overload_cfg,
            )
            supervisor.broker.attempt_fault_hook = \
                supervisor.attempt_fault_hook
            return
        for i, js in enumerate(job_specs):
            engine.process(_submit(i, js))

    resubmit_limit = int(spec.get("resubmit_limit", 0))

    def _submit(index: int, js: Dict[str, Any], attempt: int = 0):
        if attempt == 0:
            yield engine.timeout(float(js.get("submit_at", 0.0)))
        files = [
            TransferSpec(
                path=f["path"],
                size=int(f["size"]),
                sources=tuple(f.get("sources", ())),
            )
            for f in js["files"]
        ]
        base_id = js.get("job_id", f"job-{index + 1:04d}")
        job = supervisor.submit(
            js.get("tenant", "default"),
            files,
            priority=int(js.get("priority", 0)),
            job_id=base_id if attempt == 0 else f"{base_id}~r{attempt}",
            deadline=js.get("deadline"),
        )
        if job is not None and job.shed and attempt < resubmit_limit:
            # Cooperative client: honour the broker's RETRY_AFTER hint,
            # then resubmit under a fresh incarnation id (so recovery
            # dedupes each incarnation against its own journal record).
            yield engine.timeout(max(job.retry_after or 0.0, 1e-6))
            yield from _submit(index, js, attempt + 1)

    def _drain():
        yield engine.timeout(float(drain_at))
        if not supervisor.broker._dead:
            yield supervisor.broker.drain()
            status["drained"] = True

    engine.process(_main())
    if not recovering and drain_at is not None:
        # Absolute sim time, like ``broker_crashes`` — NOT relative to
        # door opening the way per-job ``submit_at`` delays are.
        engine.process(_drain())
    engine.run(until=horizon)

    broker = supervisor.broker
    header = {
        "testbed": testbed_name,
        "seed": seed,
        "max_active": broker_cfg.max_active,
        "doors": n_doors,
        "door_sessions": door_sessions,
        "tenants": {
            name: {"weight": t.policy.weight,
                   "max_inflight": t.policy.max_inflight,
                   "max_queued": t.policy.max_queued}
            for name, t in sorted(broker._tenants.items())
        },
        "faults": bool(injector is not None),
        "recovered": bool(recovering or supervisor.recoveries > 0),
        "drained": status["drained"],
        "overload": overload_cfg is not None,
        "resubmit_limit": resubmit_limit,
    }
    result = SchedResult(
        jobs=broker.jobs, broker=broker, testbed=testbed, header=header,
        journal=broker.journal, recoveries=supervisor.recoveries,
        drained=status["drained"], source=source, sink=sink,
        block_size=cfg.block_size, server=server,
        shed_jobs=sum(1 for j in broker.jobs if j.shed),
        shed_files=sum(len(j.files) for j in broker.jobs if j.shed),
    )
    result.leaks = quiescence_leaks(result)
    if audit and sink is not None:
        ok, problems, overlap, suffix = audit_delivery(
            broker.jobs, sink, source, cfg.block_size
        )
        result.audit_ok = ok
        result.audit_problems = problems
        result.overlap_bytes = overlap
        result.recovered_suffix_bytes = suffix
    return result
