"""Wire a job-mix spec onto a testbed and run it to completion."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.apps.io import ZeroSource
from repro.apps.rftp import RftpServer
from repro.core import ProtocolConfig, RdmaMiddleware
from repro.sched.broker import BrokerConfig, RftpDoor, TenantPolicy, TransferBroker
from repro.sched.jobs import Job, TransferSpec
from repro.sched.spec import validate_spec
from repro.testbeds import TESTBEDS, Testbed

__all__ = ["SchedResult", "run_sched"]

_PORT = 2811

#: FaultPlan fields a spec's ``faults`` object may set (scheduled and
#: probabilistic seams both; anything else in the object is an error so
#: a typo'd key fails loudly instead of silently doing nothing).
_FAULT_KEYS = {
    "seed", "write_fault_rate", "ctrl_drop_rate", "ctrl_delay_rate",
    "ctrl_delay_seconds", "link_flaps", "latency_spike_rate",
    "latency_spike_seconds", "payload_corrupt_rate", "sink_crashes",
    "source_crashes", "qp_kills", "heartbeat_drop_rate", "fallback_deny",
}


@dataclass
class SchedResult:
    """One completed broker run."""

    jobs: List[Job]
    broker: TransferBroker
    testbed: Testbed
    header: Dict[str, Any]

    @property
    def all_finished(self) -> bool:
        return all(j.state.value == "FINISHED" for j in self.jobs)


def _build_fault_plan(obj: Dict[str, Any]):
    from repro.faults.plan import FaultPlan

    unknown = set(obj) - _FAULT_KEYS
    if unknown:
        raise ValueError(f"unknown fault keys: {sorted(unknown)}")
    kwargs = dict(obj)
    for key in ("link_flaps", "qp_kills"):
        if key in kwargs:
            kwargs[key] = tuple(tuple(item) for item in kwargs[key])
    for key in ("sink_crashes", "source_crashes"):
        if key in kwargs:
            kwargs[key] = tuple(kwargs[key])
    return FaultPlan(**kwargs)


def run_sched(
    spec: Dict[str, Any],
    config: Optional[ProtocolConfig] = None,
    horizon: Optional[float] = None,
) -> SchedResult:
    """Run one job-mix spec; returns once the engine drains (or hits
    ``horizon``).  Deterministic: the same spec (and seed) produces the
    same schedule, the same job states, and the same report bytes.
    """
    validate_spec(spec)
    testbed_name = spec.get("testbed", "ani-wan")
    if testbed_name not in TESTBEDS:
        raise ValueError(f"unknown testbed {testbed_name!r}")
    seed = int(spec.get("seed", 0))
    testbed = TESTBEDS[testbed_name](seed=seed)
    engine = testbed.engine
    cfg = config or ProtocolConfig()

    injector = None
    if spec.get("faults"):
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(_build_fault_plan(spec["faults"]))
        injector.arm_network(testbed)

    server = RftpServer(testbed, cfg)
    server.start(_PORT)
    client_mw = RdmaMiddleware(testbed.src, testbed.src_dev, testbed.cm, cfg)
    source = ZeroSource(testbed.src)

    n_doors = int(spec.get("doors", 1))
    door_sessions = int(spec.get("door_sessions", 4))
    doors = [
        RftpDoor(
            f"door-{i}",
            client_mw,
            testbed.dst_dev,
            _PORT,
            source,
            max_sessions=door_sessions,
            tcp_factory=testbed.tcp_connection,
            # Chaos kills land on door 0's connection set: the broker
            # must fail the mid-job transfers over to the other doors.
            fault_injector=injector if i == 0 else None,
        )
        for i in range(n_doors)
    ]
    broker_cfg = BrokerConfig(max_active=int(spec.get("max_active", 8)))
    tenants = {
        name: TenantPolicy(
            weight=float(t.get("weight", 1.0)),
            max_inflight=int(t.get("max_inflight", broker_cfg.max_active)),
            max_queued=int(t.get("max_queued", 100_000)),
        )
        for name, t in spec.get("tenants", {}).items()
    }
    broker = TransferBroker(engine, doors, broker_cfg, tenants)

    job_specs = spec["jobs"]

    def _main():
        for door in doors:
            yield door.open()
        if injector is not None:
            injector.arm_source(doors[0].link)
        for i, js in enumerate(job_specs):
            engine.process(_submit(i, js))

    def _submit(index: int, js: Dict[str, Any]):
        delay = float(js.get("submit_at", 0.0))
        yield engine.timeout(delay)
        files = [
            TransferSpec(
                path=f["path"],
                size=int(f["size"]),
                sources=tuple(f.get("sources", ())),
            )
            for f in js["files"]
        ]
        broker.submit(
            js.get("tenant", "default"),
            files,
            priority=int(js.get("priority", 0)),
            job_id=js.get("job_id", f"job-{index + 1:04d}"),
        )

    engine.process(_main())
    engine.run(until=horizon)

    header = {
        "testbed": testbed_name,
        "seed": seed,
        "max_active": broker_cfg.max_active,
        "doors": n_doors,
        "door_sessions": door_sessions,
        "tenants": {
            name: {"weight": t.policy.weight,
                   "max_inflight": t.policy.max_inflight,
                   "max_queued": t.policy.max_queued}
            for name, t in sorted(broker._tenants.items())
        },
        "faults": bool(injector is not None),
    }
    return SchedResult(jobs=broker.jobs, broker=broker,
                       testbed=testbed, header=header)
