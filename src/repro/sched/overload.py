"""Overload control for the transfer broker: shed, budget, brown out.

The front door of a fleet-scale transfer service must stay up when
demand exceeds capacity.  PR 6-7 gave the broker fair share, admission
and crash durability; this module adds the three classic overload
defences, all deterministic and all journaled:

- **load shedding** — a hierarchy of token buckets (one global, one per
  tenant) meters job admission, and a bounded global submission queue
  caps how much work may wait.  A submission that would overflow either
  is rejected *whole* with a deterministic, jittered ``RETRY_AFTER``
  hint (cooperative backpressure: the runner honours the hint and
  resubmits later instead of hammering the door).  Priority buys an
  overdraft — high-priority jobs may dip the buckets below zero — and a
  job whose deadline cannot survive the backlog is shed immediately
  rather than admitted to die of old age in the queue.
- **retry budgets** — each tenant holds a budget of retries replenished
  by successes at a capped retry-to-success ratio.  A failure burst that
  exhausts the budget fails files immediately instead of parking ever
  more backoff timers: the metastable retry-storm amplifier is cut at
  the tenant boundary.
- **brownout** — high/low watermarks over active-session occupancy and
  pinned-pool occupancy drive a three-state FSM (NORMAL → BROWNOUT →
  RECOVERING, mirroring PR 4's breaker FSM).  While browned out the
  broker shrinks per-door session concurrency, suspends dedupe
  ride-alongs (duplicate submissions are shed instead of attached), and
  parks the lowest-weight tenants; recovery requires the load to stay
  below the low watermarks for a hysteresis dwell before re-promotion.

Everything is opt-in: a broker built without an :class:`OverloadConfig`
(or with the all-zero default) journals no new records and perturbs no
event, so the pre-existing bench anchors stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.jitter import jittered

__all__ = [
    "OverloadConfig",
    "OverloadController",
    "ShedDecision",
    "TokenBucket",
    "NORMAL",
    "BROWNOUT",
    "RECOVERING",
]

#: Brownout FSM states (ints so a gauge can export them directly).
NORMAL = 0
BROWNOUT = 1
RECOVERING = 2

_STATE_NAMES = {NORMAL: "normal", BROWNOUT: "brownout",
                RECOVERING: "recovering"}


@dataclass(frozen=True)
class OverloadConfig:
    """Overload-control knobs.  The default disables every mechanism."""

    #: Global bound on queued+parked primary files across all tenants;
    #: 0 disables the bound.
    max_queued_files: int = 0
    #: Global admission rate, primary files per second; 0 disables.
    global_rate: float = 0.0
    #: Global bucket depth (burst tolerance), files.
    global_burst: float = 64.0
    #: Per-tenant admission rate, primary files per second; 0 disables.
    tenant_rate: float = 0.0
    #: Per-tenant bucket depth, files.
    tenant_burst: float = 32.0
    #: Submissions with priority >= 1 may overdraw their buckets by this
    #: fraction of the bucket's burst (deadline/priority-aware shedding:
    #: important work keeps flowing a little longer under pressure).
    priority_overdraft: float = 0.5
    #: RETRY_AFTER floor, seconds.
    retry_after_base: float = 0.5
    #: RETRY_AFTER ceiling, seconds (before jitter).
    retry_after_cap: float = 30.0
    #: Jitter fraction in [0, 1]: the hint is stretched by a
    #: deterministic per-(job, shed-count) factor in [1, 1 + jitter] so
    #: a thundering herd of shed clients de-synchronises, replayably.
    retry_after_jitter: float = 0.5
    #: Retries a tenant earns per successful transfer; 0 disables the
    #: budget.  A capped retry-to-success ratio: once the budget is dry,
    #: failures go terminal immediately instead of parking a retry.
    retry_budget_ratio: float = 0.0
    #: Budget ceiling (and the initial allowance), retries.
    retry_budget_burst: float = 8.0
    #: Brownout entry watermark over active/max_active; 0 disables the
    #: session watermark.
    brownout_high: float = 0.0
    #: Brownout exit watermark (with :attr:`pool_low`, held for
    #: :attr:`brownout_hold` seconds before re-promotion).
    brownout_low: float = 0.5
    #: Brownout entry watermark over pinned-pool occupancy; > 1 disables
    #: the pool watermark.
    pool_high: float = 1.1
    #: Brownout exit watermark over pinned-pool occupancy.
    pool_low: float = 0.75
    #: Hysteresis dwell: seconds the load must stay below the low
    #: watermarks before RECOVERING re-promotes to NORMAL.
    brownout_hold: float = 2.0
    #: Per-door session-cap multiplier while browned out.
    brownout_session_factor: float = 0.5
    #: Lowest-weight tenants parked (queued work held, new submissions
    #: shed) while browned out.  Never parks every tenant.
    brownout_park_tenants: int = 1

    def __post_init__(self) -> None:
        if self.max_queued_files < 0:
            raise ValueError("max_queued_files must be >= 0")
        for name in ("global_rate", "tenant_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in ("global_burst", "tenant_burst"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.priority_overdraft < 0:
            raise ValueError("priority_overdraft must be >= 0")
        if self.retry_after_base <= 0:
            raise ValueError("retry_after_base must be positive")
        if self.retry_after_cap < self.retry_after_base:
            raise ValueError("retry_after_cap must be >= retry_after_base")
        if not 0.0 <= self.retry_after_jitter <= 1.0:
            raise ValueError("retry_after_jitter must be in [0, 1]")
        if self.retry_budget_ratio < 0:
            raise ValueError("retry_budget_ratio must be >= 0")
        if self.retry_budget_burst <= 0:
            raise ValueError("retry_budget_burst must be positive")
        if self.brownout_high < 0:
            raise ValueError("brownout_high must be >= 0")
        if self.brownout_high > 0 and not (
            0 <= self.brownout_low <= self.brownout_high
        ):
            raise ValueError("need 0 <= brownout_low <= brownout_high")
        if self.pool_high <= 1.0 and not (
            0 <= self.pool_low <= self.pool_high
        ):
            raise ValueError("need 0 <= pool_low <= pool_high")
        if self.brownout_hold < 0:
            raise ValueError("brownout_hold must be >= 0")
        if not 0.0 < self.brownout_session_factor <= 1.0:
            raise ValueError("brownout_session_factor must be in (0, 1]")
        if self.brownout_park_tenants < 0:
            raise ValueError("brownout_park_tenants must be >= 0")

    @property
    def brownout_enabled(self) -> bool:
        return self.brownout_high > 0 or self.pool_high <= 1.0

    @property
    def enabled(self) -> bool:
        """True when any mechanism is armed — an un-armed config builds
        no controller at all, keeping the idle broker byte-identical."""
        return bool(
            self.max_queued_files
            or self.global_rate
            or self.tenant_rate
            or self.retry_budget_ratio
            or self.brownout_enabled
        )

    _SPEC_KEYS = (
        "max_queued_files", "global_rate", "global_burst", "tenant_rate",
        "tenant_burst", "priority_overdraft", "retry_after_base",
        "retry_after_cap", "retry_after_jitter", "retry_budget_ratio",
        "retry_budget_burst", "brownout_high", "brownout_low", "pool_high",
        "pool_low", "brownout_hold", "brownout_session_factor",
        "brownout_park_tenants",
    )

    @classmethod
    def from_spec(cls, obj: Dict[str, Any]) -> "OverloadConfig":
        """Build from a spec's ``overload`` object; typo'd keys fail."""
        unknown = set(obj) - set(cls._SPEC_KEYS)
        if unknown:
            raise ValueError(f"unknown overload keys: {sorted(unknown)}")
        return cls(**obj)


class TokenBucket:
    """A lazily-refilled token bucket over simulated time.

    Pure bookkeeping: refill happens arithmetically on access from the
    caller-supplied clock, so metering admission costs zero simulation
    events (the determinism anchors of rate-limit-free runs hold).
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = float(now)

    def _refill(self, now: float) -> None:
        if now > self.stamp:
            self.tokens = min(self.burst,
                              self.tokens + (now - self.stamp) * self.rate)
            self.stamp = now

    def try_take(self, n: float, now: float, overdraft: float = 0.0) -> bool:
        """Take ``n`` tokens if the level (plus ``overdraft``) allows;
        an overdraft take may leave the level negative — the debt repays
        through refill before anyone else gets in."""
        self._refill(now)
        if self.tokens + overdraft >= n:
            self.tokens -= n
            return True
        return False

    def time_until(self, n: float, now: float) -> float:
        """Seconds until ``n`` tokens will be available (0 if already)."""
        self._refill(now)
        deficit = n - self.tokens
        if deficit <= 0:
            return 0.0
        if self.rate <= 0:
            return float("inf")
        return deficit / self.rate


@dataclass(frozen=True)
class ShedDecision:
    """Why a submission is being shed and when to come back."""

    reason: str
    retry_after: float


class OverloadController:
    """The broker's overload brain: admission meters, retry budgets,
    and the brownout FSM.  Owned by :class:`TransferBroker`; every
    method is pure bookkeeping on the engine clock (no events)."""

    def __init__(
        self,
        engine: Any,
        config: OverloadConfig,
        seed: int = 0,
    ) -> None:
        self.engine = engine
        self.config = config
        self.seed = int(seed)
        now = engine.now
        self._global_bucket = (
            TokenBucket(config.global_rate, config.global_burst, now)
            if config.global_rate > 0 else None
        )
        self._tenant_buckets: Dict[str, TokenBucket] = {}
        #: Tenant -> remaining retry allowance (success-replenished).
        self._retry_budget: Dict[str, float] = {}
        #: job_id -> times that id has been shed (jitter key component).
        self._shed_counts: Dict[str, int] = {}
        self.state = NORMAL
        #: Engine time the load first dropped below the low watermarks
        #: (hysteresis anchor while RECOVERING).
        self._calm_since: Optional[float] = None
        #: Tenants held out of dispatch while browned out.
        self._parked_tenants: Tuple[str, ...] = ()

        reg = engine.metrics
        self._m_shed_jobs = reg.counter("sched.overload.shed_jobs")
        self._m_shed_files = reg.counter("sched.overload.shed_files")
        self._m_retry_denied = reg.counter("sched.overload.retry_denied")
        self._m_brownout_entries = reg.counter(
            "sched.overload.brownout_entries"
        )
        self._m_brownout_exits = reg.counter("sched.overload.brownout_exits")
        self._m_retry_after = reg.histogram(
            "sched.overload.retry_after_seconds"
        )
        reg.gauge_fn("sched.overload.state", lambda: self.state)
        reg.gauge_fn(
            "sched.overload.parked_tenants",
            lambda: len(self._parked_tenants),
        )

    # -- admission / shedding ---------------------------------------------------
    def _tenant_bucket(self, tenant: str) -> Optional[TokenBucket]:
        cfg = self.config
        if cfg.tenant_rate <= 0:
            return None
        bucket = self._tenant_buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(cfg.tenant_rate, cfg.tenant_burst,
                                 self.engine.now)
            self._tenant_buckets[tenant] = bucket
        return bucket

    def retry_after(self, job_id: str, need: float) -> float:
        """The deterministic, jittered RETRY_AFTER hint for one shed.

        ``need`` is the mechanism's own estimate of when capacity frees
        (bucket deficit / backlog drain time); the hint doubles per
        prior shed of the same base job (resubmission incarnations
        ``<base>~rN`` share the count, so a job shed twice backs off
        4×), clamps to [base, cap], and stretches by a per-(job,
        shed-count) jittered factor so shed clients return
        de-synchronised instead of stampeding the refilled bucket
        together.  Keyed on the shed count, not the clock, so the hint
        replays identically across crash recovery.
        """
        cfg = self.config
        base_id = job_id.split("~r", 1)[0]
        count = self._shed_counts.get(base_id, 0) + 1
        self._shed_counts[base_id] = count
        if need == float("inf"):
            need = cfg.retry_after_cap
        need = max(cfg.retry_after_base, need) * (2.0 ** (count - 1))
        hint = min(cfg.retry_after_cap, need)
        hint = jittered(hint, cfg.retry_after_jitter,
                        self.seed, job_id, "shed", count)
        self._m_retry_after.observe(hint)
        return hint

    def admit(
        self,
        job_id: str,
        tenant: str,
        n_primaries: int,
        n_duplicates: int,
        total_backlog: int,
        priority: int,
        deadline: Optional[float],
    ) -> Optional[ShedDecision]:
        """Gate one submission.  Returns ``None`` to admit or a
        :class:`ShedDecision` to shed the job whole.  Buckets are only
        debited when every gate passes (shedding must not starve the
        next, admissible submission)."""
        cfg = self.config
        now = self.engine.now
        n = max(1, n_primaries)

        if tenant in self._parked_tenants:
            return ShedDecision(
                f"brownout: tenant {tenant!r} parked",
                self.retry_after(job_id, cfg.brownout_hold),
            )
        if self.state == BROWNOUT and n_duplicates > 0:
            # Ride-along suspension: attaching duplicates grows mirror
            # cascades exactly when state must shrink.  Shed them; the
            # primary (someone else's job) keeps transferring.
            return ShedDecision(
                "brownout: dedupe ride-alongs suspended",
                self.retry_after(job_id, cfg.brownout_hold),
            )
        if cfg.max_queued_files and total_backlog + n > cfg.max_queued_files:
            drain = (
                total_backlog / cfg.global_rate if cfg.global_rate > 0
                else cfg.retry_after_base * 2
            )
            return ShedDecision(
                f"queue bound: {total_backlog}+{n} > {cfg.max_queued_files} "
                f"queued files",
                self.retry_after(job_id, drain),
            )
        if deadline is not None and cfg.global_rate > 0:
            wait = total_backlog / cfg.global_rate
            if wait > deadline:
                # Deadline-aware: admitting work that must miss its
                # deadline behind the backlog only wastes capacity.
                return ShedDecision(
                    f"deadline infeasible: ~{wait:.1f}s backlog > "
                    f"{deadline}s deadline",
                    self.retry_after(job_id, wait),
                )

        gbucket = self._global_bucket
        tbucket = self._tenant_bucket(tenant)
        g_over = (
            cfg.priority_overdraft * cfg.global_burst if priority >= 1 else 0.0
        )
        t_over = (
            cfg.priority_overdraft * cfg.tenant_burst if priority >= 1 else 0.0
        )
        if tbucket is not None and tbucket.time_until(n, now) > 0 \
                and tbucket.tokens + t_over < n:
            return ShedDecision(
                f"tenant {tenant!r} rate limit",
                self.retry_after(job_id, tbucket.time_until(n, now)),
            )
        if gbucket is not None and not gbucket.try_take(n, now, g_over):
            return ShedDecision(
                "global rate limit",
                self.retry_after(job_id, gbucket.time_until(n, now)),
            )
        if tbucket is not None:
            tbucket.try_take(n, now, t_over)
        return None

    def note_shed(self, tenant: str, n_files: int) -> None:
        self._m_shed_jobs.add()
        self._m_shed_files.add(n_files)

    # -- retry budgets ----------------------------------------------------------
    def allow_retry(self, tenant: str) -> bool:
        """Spend one retry from the tenant's budget; False means the
        budget is dry and the failure must go terminal now."""
        cfg = self.config
        if cfg.retry_budget_ratio <= 0:
            return True
        budget = self._retry_budget.get(tenant)
        if budget is None:
            budget = cfg.retry_budget_burst
        if budget < 1.0:
            self._m_retry_denied.add()
            return False
        self._retry_budget[tenant] = budget - 1.0
        return True

    def note_success(self, tenant: str) -> None:
        """A finished transfer replenishes the tenant's retry budget at
        the configured retry-to-success ratio (capped)."""
        cfg = self.config
        if cfg.retry_budget_ratio <= 0:
            return
        budget = self._retry_budget.get(tenant, cfg.retry_budget_burst)
        self._retry_budget[tenant] = min(
            cfg.retry_budget_burst, budget + cfg.retry_budget_ratio
        )

    def retry_budget(self, tenant: str) -> float:
        return self._retry_budget.get(
            tenant, self.config.retry_budget_burst
        )

    # -- brownout FSM -----------------------------------------------------------
    def observe(
        self,
        active: int,
        max_active: int,
        pool_occupancy: float,
        tenant_weights: Dict[str, float],
    ) -> None:
        """One FSM step from the current load sample.  Called by the
        broker at dispatch and attempt-completion points — event-driven
        sampling, no timers of its own."""
        cfg = self.config
        if not cfg.brownout_enabled:
            return
        now = self.engine.now
        session_frac = active / max_active if max_active > 0 else 0.0
        hot = (
            (cfg.brownout_high > 0 and session_frac >= cfg.brownout_high)
            or (cfg.pool_high <= 1.0 and pool_occupancy >= cfg.pool_high)
        )
        calm = (
            (cfg.brownout_high <= 0 or session_frac <= cfg.brownout_low)
            and (cfg.pool_high > 1.0 or pool_occupancy <= cfg.pool_low)
        )
        if self.state == NORMAL:
            if hot:
                self._enter_brownout(tenant_weights, session_frac,
                                     pool_occupancy)
        elif self.state == BROWNOUT:
            if calm:
                self.state = RECOVERING
                self._calm_since = now
        else:  # RECOVERING
            if hot:
                self.state = BROWNOUT
                self._calm_since = None
            elif calm:
                if now - (self._calm_since or now) >= cfg.brownout_hold:
                    self._exit_brownout()
            else:
                # Between the watermarks: the dwell restarts when the
                # load next drops below low — strict hysteresis.
                self._calm_since = now

    def _enter_brownout(
        self,
        tenant_weights: Dict[str, float],
        session_frac: float,
        pool_occupancy: float,
    ) -> None:
        self.state = BROWNOUT
        self._calm_since = None
        self._m_brownout_entries.add()
        k = min(self.config.brownout_park_tenants,
                max(0, len(tenant_weights) - 1))
        if k > 0:
            ranked = sorted(tenant_weights, key=lambda n: (tenant_weights[n], n))
            self._parked_tenants = tuple(ranked[:k])
        self.engine.trace(
            "sched", "brownout_enter",
            sessions=round(session_frac, 6),
            pool=round(pool_occupancy, 6),
            parked=list(self._parked_tenants),
        )

    def _exit_brownout(self) -> None:
        self.state = NORMAL
        self._calm_since = None
        self._m_brownout_exits.add()
        unparked = list(self._parked_tenants)
        self._parked_tenants = ()
        self.engine.trace("sched", "brownout_exit", unparked=unparked)

    # -- brownout effects (queried by the broker) -------------------------------
    @property
    def state_name(self) -> str:
        return _STATE_NAMES[self.state]

    def tenant_parked(self, tenant: str) -> bool:
        return tenant in self._parked_tenants

    @property
    def parked_tenants(self) -> Tuple[str, ...]:
        return self._parked_tenants

    def door_session_cap(self, base: int) -> int:
        """The effective per-door session cap right now: shrunk while
        browned out (never below one — brownout degrades, halting is
        the failure mode it exists to avoid)."""
        if self.state != BROWNOUT:
            return base
        return max(1, int(base * self.config.brownout_session_factor))

    def suspend_ride_alongs(self) -> bool:
        return self.state == BROWNOUT
