"""Job-mix specifications: the input format of ``repro sched``.

A spec is a plain dict (JSON-serialisable) describing one broker run —
testbed, seed, broker knobs, doors, tenants, and the submission
schedule.  :func:`synthetic_spec` generates a deterministic mix from a
seed, used by ``repro sched --quick`` and the ``sched_10k`` bench case.

Format::

    {
      "testbed": "ani-wan",
      "seed": 0,
      "max_active": 8,
      "doors": 2,                  # connection sets to the server
      "door_sessions": 4,          # concurrent sessions per door
      "tenants": {
        "gold":   {"weight": 3.0, "max_inflight": 8, "max_queued": 100000},
        "bronze": {"weight": 1.0, "max_inflight": 8, "max_queued": 100000}
      },
      "jobs": [
        {"tenant": "gold", "priority": 0, "submit_at": 0.0,
         "files": [{"path": "/data/gold/f0", "size": 4194304,
                    "sources": ["door-0", "door-1"]}, ...]},
        ...
      ],
      "faults": {"source_crashes": [12.5], "seed": 0}   # optional
    }
"""

from __future__ import annotations

import json
import random
from typing import Any, Dict, List, Optional

__all__ = ["load_spec", "validate_spec", "synthetic_spec", "overload_spec"]

MiB = 1024 * 1024

#: Small-file palette for the synthetic mix (bytes).  Small on purpose:
#: the scheduler's value is amortising negotiation and multiplexing many
#: sessions, which only shows on runs of small files.
_SIZE_PALETTE = (1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB)


def load_spec(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        spec = json.load(fh)
    validate_spec(spec)
    return spec


def validate_spec(spec: Dict[str, Any]) -> None:
    if not isinstance(spec, dict):
        raise ValueError("spec must be a JSON object")
    jobs = spec.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        raise ValueError("spec needs a non-empty 'jobs' list")
    tenants = spec.get("tenants", {})
    if not isinstance(tenants, dict):
        raise ValueError("'tenants' must be an object")
    for i, job in enumerate(jobs):
        if not isinstance(job, dict):
            raise ValueError(f"jobs[{i}] must be an object")
        files = job.get("files")
        if not isinstance(files, list) or not files:
            raise ValueError(f"jobs[{i}] needs a non-empty 'files' list")
        for j, f in enumerate(files):
            if not isinstance(f, dict) or "path" not in f or "size" not in f:
                raise ValueError(f"jobs[{i}].files[{j}] needs 'path' and 'size'")
        deadline = job.get("deadline")
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise ValueError(f"jobs[{i}].deadline must be a positive number")
    doors = spec.get("doors", 1)
    if not isinstance(doors, int) or doors < 1:
        raise ValueError("'doors' must be a positive integer")
    if not isinstance(spec.get("watchdog", False), bool):
        raise ValueError("'watchdog' must be a boolean")
    if not isinstance(spec.get("checkpoint_compact", False), bool):
        raise ValueError("'checkpoint_compact' must be a boolean")
    if not isinstance(spec.get("use_srq", False), bool):
        raise ValueError("'use_srq' must be a boolean")
    drain_at = spec.get("drain_at")
    if drain_at is not None and (
        not isinstance(drain_at, (int, float)) or drain_at <= 0
    ):
        raise ValueError("'drain_at' must be a positive number")
    overload = spec.get("overload")
    if overload is not None:
        if not isinstance(overload, dict):
            raise ValueError("'overload' must be an object")
        from repro.sched.overload import OverloadConfig

        OverloadConfig.from_spec(overload)  # raises on bad keys/values
    resubmit = spec.get("resubmit_limit", 0)
    if not isinstance(resubmit, int) or resubmit < 0:
        raise ValueError("'resubmit_limit' must be a non-negative integer")


def synthetic_spec(
    seed: int = 0,
    total_files: int = 1000,
    tenants: Optional[Dict[str, float]] = None,
    testbed: str = "ani-wan",
    doors: int = 2,
    max_active: int = 8,
    files_per_job: int = 20,
) -> Dict[str, Any]:
    """A deterministic ≥2-tenant small-file job mix.

    ``tenants`` maps tenant name to fair-share weight (default
    ``{"gold": 3.0, "bronze": 1.0}`` — the 3:1 contention mix the tests
    assert on).  Files are split round-robin into jobs of
    ``files_per_job``; all jobs are submitted at t=0 so the tenants
    genuinely contend for the worker pool.
    """
    if total_files < 1:
        raise ValueError("total_files must be >= 1")
    weights = tenants or {"gold": 3.0, "bronze": 1.0}
    rng = random.Random(seed)
    door_names = [f"door-{i}" for i in range(doors)]
    names = sorted(weights)
    per_tenant = {name: total_files // len(names) for name in names}
    for i in range(total_files % len(names)):
        per_tenant[names[i]] += 1
    jobs: List[Dict[str, Any]] = []
    for name in names:
        count = per_tenant[name]
        files: List[Dict[str, Any]] = []
        for i in range(count):
            files.append({
                "path": f"/data/{name}/f{i:06d}",
                "size": rng.choice(_SIZE_PALETTE),
                "sources": door_names,
            })
        for start in range(0, count, files_per_job):
            jobs.append({
                "tenant": name,
                "priority": 0,
                "submit_at": 0.0,
                "files": files[start:start + files_per_job],
            })
    spec = {
        "testbed": testbed,
        "seed": seed,
        "max_active": max_active,
        "doors": doors,
        "door_sessions": 4,
        "tenants": {
            name: {"weight": w, "max_inflight": max_active, "max_queued": 10 ** 9}
            for name, w in weights.items()
        },
        "jobs": jobs,
    }
    validate_spec(spec)
    return spec


def overload_spec(
    seed: int = 0,
    total_files: int = 600,
    tenants: Optional[Dict[str, float]] = None,
    testbed: str = "ani-wan",
    doors: int = 2,
    max_active: int = 8,
    files_per_job: int = 20,
    base_rate: float = 40.0,
    spike: float = 10.0,
    spike_start: float = 4.0,
    spike_duration: float = 8.0,
    resubmit_limit: int = 2,
    overload: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """An open-loop arrival-spike mix with overload controls armed.

    Jobs arrive on a deterministic open-loop schedule: ``base_rate``
    files per second outside the spike window, ``base_rate * spike``
    inside it — the 10× burst the broker must shed its way through
    without collapsing goodput for admitted work.  Tenants alternate
    job-for-job; the heaviest-weight tenant submits at priority 1 so the
    priority-overdraft path is exercised.  ``overload`` overrides the
    armed :class:`~repro.sched.overload.OverloadConfig` knobs;
    ``resubmit_limit`` is how many times the runner honours a shed job's
    RETRY_AFTER hint before giving up.
    """
    if total_files < 1:
        raise ValueError("total_files must be >= 1")
    if base_rate <= 0 or spike < 1.0:
        raise ValueError("need base_rate > 0 and spike >= 1")
    weights = tenants or {"gold": 3.0, "bronze": 1.0}
    rng = random.Random(seed)
    door_names = [f"door-{i}" for i in range(doors)]
    names = sorted(weights)
    top = max(names, key=lambda n: (weights[n], n))
    counters = {name: 0 for name in names}
    jobs: List[Dict[str, Any]] = []
    t = 0.0
    n_jobs = max(1, -(-total_files // files_per_job))
    remaining = total_files
    for j in range(n_jobs):
        name = names[j % len(names)]
        count = min(files_per_job, remaining)
        remaining -= count
        files = []
        for _ in range(count):
            idx = counters[name]
            counters[name] += 1
            files.append({
                "path": f"/data/{name}/f{idx:06d}",
                "size": rng.choice(_SIZE_PALETTE),
                "sources": door_names,
            })
        jobs.append({
            "tenant": name,
            "priority": 1 if name == top else 0,
            "submit_at": round(t, 6),
            "files": files,
        })
        rate = base_rate
        if spike_start <= t < spike_start + spike_duration:
            rate = base_rate * spike
        t += files_per_job / rate
    controls = {
        "max_queued_files": 160,
        "global_rate": 46.0,
        "global_burst": 92.0,
        "tenant_rate": 36.0,
        "tenant_burst": 54.0,
        "retry_budget_ratio": 0.5,
        "retry_budget_burst": 8.0,
        "retry_after_base": 0.5,
        "retry_after_cap": 20.0,
    }
    if overload:
        controls.update(overload)
    spec = {
        "testbed": testbed,
        "seed": seed,
        "max_active": max_active,
        "doors": doors,
        "door_sessions": 4,
        "tenants": {
            name: {"weight": w, "max_inflight": max_active,
                   "max_queued": 10 ** 9}
            for name, w in weights.items()
        },
        "jobs": jobs,
        "overload": controls,
        "resubmit_limit": resubmit_limit,
    }
    validate_spec(spec)
    return spec
