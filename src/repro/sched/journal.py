"""Append-only write-ahead journal of broker state transitions.

Durability layer of the scheduler: every job/file state change the
:class:`~repro.sched.broker.TransferBroker` makes is appended here as a
plain JSON-serialisable record *before* the change is acted on, so the
full broker state is a pure function of the journal.  After a crash,
:meth:`TransferBroker.recover` replays the journal to reconstruct every
job — terminal files keep their outcome (no double transfer), queued
files are re-admitted idempotently (dedupe decisions replay in original
order), and files that were ACTIVE at crash time come back with the
session id and door of their interrupted attempt so the recovery loop
can re-attach them via SESSION_RESUME and move only the missing suffix.

Record kinds (every record carries the sim time ``t``):

``spec``
    The run's job-mix spec, written once by the runner so a journal file
    is self-contained (``repro sched --recover <journal>`` needs no
    ``--spec``).
``submit`` / ``admit`` / ``reject``
    A bulk submission's intent (tenant, priority, optional deadline, the
    full file list) followed by the admission decision.  Dedupe is NOT
    recorded — replay re-derives it from record order, which reproduces
    the original decisions exactly.
``attempt``
    One transfer attempt started: file, door, session id, attempt count.
``attempt_fail``
    The attempt died with a typed error; carries the advanced
    alternatives cursor so orderly failover resumes where it left off.
``shed``
    The overload layer rejected the submission whole (load shedding):
    carries the shed reason and the deterministic RETRY_AFTER hint, so
    recovery replays the cooperative-backpressure decision exactly —
    a shed job stays shed, with the same hint, after a crash.
``finish`` / ``file_failed`` / ``cancel``
    Terminal file transitions (job state is derived, never journaled).
``checkpoint``
    Written by :meth:`TransferBroker.drain` once in-flight work hit
    zero; carries a state snapshot that replay cross-checks, making a
    clean restart-from-checkpoint distinguishable from crash recovery.
    Also carries a *full* job snapshot (:func:`snapshot_jobs`), which is
    what lets :meth:`Journal.compact` truncate the replayed prefix —
    the in-memory record list stays bounded on long-lived brokers.
``recover``
    Boundary marker appended by the *new* incarnation at replay time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sched.jobs import FileState, FileTask, Job, JobState, TransferSpec

__all__ = [
    "Journal",
    "RecoveredState",
    "replay",
    "snapshot_jobs",
    "restore_jobs",
]

SCHEMA = "repro.sched.journal/1"


class Journal:
    """In-memory record log with an optional always-flushed file mirror.

    ``append`` is a list append (no simulation events, no I/O unless a
    ``path`` is given), so journaling never perturbs the simulated
    schedule — the determinism anchors hold with it always on.
    """

    def __init__(self, path: Optional[str] = None,
                 records: Optional[List[Dict[str, Any]]] = None) -> None:
        self.records: List[Dict[str, Any]] = list(records or [])
        self.path = path
        self._fh = None
        if path is not None:
            self._fh = open(path, "a", encoding="utf-8")

    def append(self, kind: str, **fields: Any) -> Dict[str, Any]:
        rec = {"kind": kind, **fields}
        self.records.append(rec)
        if self._fh is not None:
            self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
            self._fh.flush()
        return rec

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def sync(self, path: str) -> None:
        """Write the full record log to ``path`` (one JSON line each)."""
        with open(path, "w", encoding="utf-8") as fh:
            for rec in self.records:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: str, mirror: bool = False) -> "Journal":
        """Read a journal file back; ``mirror`` keeps appending to it."""
        records = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return cls(path=path if mirror else None, records=records)

    def spec(self) -> Optional[Dict[str, Any]]:
        """The run spec embedded by the runner, if any."""
        for rec in self.records:
            if rec["kind"] == "spec":
                return rec["spec"]
        return None

    def compact(self) -> int:
        """Truncate the replayed prefix behind the newest checkpoint
        that carries a full job snapshot.  Returns the record count
        dropped.  Replay of the compacted journal restores from the
        snapshot and is state-identical to replaying the full log, so
        the in-memory list (and the file mirror, when attached) stays
        bounded however long the broker lives."""
        idx = None
        for i in range(len(self.records) - 1, -1, -1):
            rec = self.records[i]
            if rec["kind"] == "checkpoint" and rec.get("snapshot") is not None:
                idx = i
                break
        if idx is None:
            return 0
        head = [r for r in self.records[:idx] if r["kind"] == "spec"]
        dropped = idx - len(head)
        if dropped <= 0:
            return 0
        self.records = head + self.records[idx:]
        if self.path is not None and self._fh is not None:
            # Rewrite the mirror so the on-disk log matches the
            # compacted list, then keep appending to it.
            self._fh.close()
            self.sync(self.path)
            self._fh = open(self.path, "a", encoding="utf-8")
        return dropped

    def replay(self) -> "RecoveredState":
        return replay(self.records)


@dataclass
class RecoveredState:
    """What a journal replay reconstructs."""

    #: Every journaled job, original submission order, states replayed.
    jobs: List[Job] = field(default_factory=list)
    #: Primary tasks that were ACTIVE at the journal's end — candidates
    #: for SESSION_RESUME re-attachment (session id and door are on the
    #: task's ``last_session`` / ``last_door``).
    resume: List[FileTask] = field(default_factory=list)
    #: True when the journal ends at a drain checkpoint (clean restart)
    #: rather than mid-flight (crash recovery).
    clean: bool = False


def _job_snapshot(jobs: List[Job]) -> Dict[str, str]:
    return {job.job_id: job.state.value for job in jobs}


def snapshot_jobs(jobs: List[Job]) -> List[Dict[str, Any]]:
    """Full JSON-serialisable snapshot of the job table, written into
    checkpoint records so :meth:`Journal.compact` can drop the prefix.

    ``duplicate_of`` pointers are serialised as ``[job_id, index]``
    references and re-wired on restore, preserving the dedupe cascade.
    """
    out: List[Dict[str, Any]] = []
    for job in jobs:
        files = []
        for task in job.files:
            dup = task.duplicate_of
            files.append({
                "path": task.spec.path,
                "size": task.spec.size,
                "sources": list(task.spec.sources),
                "state": task.state.value,
                "attempts": task.attempts,
                "alt_cursor": task.alt_cursor,
                "source_used": task.source_used,
                "error": task.error,
                "submitted_at": task.submitted_at,
                "started_at": task.started_at,
                "finished_at": task.finished_at,
                "duplicate_of": (
                    [dup.job.job_id, dup.index] if dup is not None else None
                ),
                "last_session": task.last_session,
                "last_door": task.last_door,
                "recovered": task.recovered,
                "resumed_from": task.resumed_from,
            })
        out.append({
            "job_id": job.job_id,
            "tenant": job.tenant,
            "priority": job.priority,
            "state": job.state.value,
            "submitted_at": job.submitted_at,
            "finished_at": job.finished_at,
            "deadline": job.deadline,
            "shed": job.shed,
            "shed_reason": job.shed_reason,
            "retry_after": job.retry_after,
            "recovered": job.recovered,
            "files": files,
        })
    return out


def restore_jobs(snapshot: List[Dict[str, Any]]) -> List[Job]:
    """Rebuild the job table from a checkpoint snapshot (two passes:
    construct every job, then re-wire the duplicate cascades)."""
    jobs: List[Job] = []
    by_id: Dict[str, Job] = {}
    for jrec in snapshot:
        specs = [
            TransferSpec(f["path"], int(f["size"]), tuple(f["sources"]))
            for f in jrec["files"]
        ]
        job = Job.build(jrec["job_id"], jrec["tenant"], specs,
                        int(jrec["priority"]))
        job.state = JobState(jrec["state"])
        job.submitted_at = float(jrec["submitted_at"])
        job.finished_at = jrec["finished_at"]
        job.deadline = jrec["deadline"]
        job.shed = bool(jrec.get("shed", False))
        job.shed_reason = jrec.get("shed_reason")
        job.retry_after = jrec.get("retry_after")
        job.recovered = bool(jrec.get("recovered", False))
        for task, frec in zip(job.files, jrec["files"]):
            task.state = FileState(frec["state"])
            task.attempts = int(frec["attempts"])
            task.alt_cursor = int(frec["alt_cursor"])
            task.source_used = frec["source_used"]
            task.error = frec["error"]
            task.submitted_at = float(frec["submitted_at"])
            task.started_at = frec["started_at"]
            task.finished_at = frec["finished_at"]
            task.last_session = frec["last_session"]
            task.last_door = frec["last_door"]
            task.recovered = bool(frec.get("recovered", False))
            task.resumed_from = int(frec.get("resumed_from", 0))
        jobs.append(job)
        by_id[job.job_id] = job
    for job, jrec in zip(jobs, snapshot):
        for task, frec in zip(job.files, jrec["files"]):
            ref = frec["duplicate_of"]
            if ref is not None:
                owner = by_id[ref[0]].files[int(ref[1])]
                task.duplicate_of = owner
                owner.duplicates.append(task)
    return jobs


def replay(records: List[Dict[str, Any]]) -> RecoveredState:
    """Rebuild job/file state by applying records in order.

    Pure bookkeeping: no engine, no events.  Raises ``ValueError`` when a
    checkpoint snapshot disagrees with the replayed state (a corrupted or
    truncated journal).
    """
    jobs_by_id: Dict[str, Job] = {}
    order: List[Job] = []
    pending: Dict[str, Job] = {}  # submitted, admission not yet replayed
    dest_owner: Dict[str, FileTask] = {}
    clean = False

    for rec in records:
        kind = rec["kind"]
        if kind in ("spec", "recover"):
            continue
        t = float(rec.get("t", 0.0))
        if kind == "submit":
            specs = [
                TransferSpec(f["path"], int(f["size"]),
                             tuple(f.get("sources", ())))
                for f in rec["files"]
            ]
            job = Job.build(rec["job_id"], rec["tenant"], specs,
                            int(rec.get("priority", 0)))
            job.submitted_at = t
            job.deadline = rec.get("deadline")
            for task in job.files:
                task.submitted_at = t
            jobs_by_id[job.job_id] = job
            order.append(job)
            pending[job.job_id] = job
            continue
        if kind == "reject":
            job = pending.pop(rec["job_id"])
            job.state = JobState.CANCELED
            job.finished_at = t
            for task in job.files:
                task.state = FileState.CANCELED
                task.finished_at = t
                task.error = rec.get("reason")
            continue
        if kind == "shed":
            # Load-shed whole: replays exactly like the broker decided
            # it — same reason, same RETRY_AFTER hint — so a shed job
            # stays shed (with an identical report line) after a crash.
            job = pending.pop(rec["job_id"])
            job.state = JobState.CANCELED
            job.finished_at = t
            job.shed = True
            job.shed_reason = rec.get("reason")
            job.retry_after = rec.get("retry_after")
            for task in job.files:
                task.state = FileState.CANCELED
                task.finished_at = t
                task.error = f"shed: {rec.get('reason')}"
            continue
        if kind == "admit":
            job = pending.pop(rec["job_id"])
            for task in job.files:
                owner = dest_owner.get(task.path)
                if owner is not None and not owner.state.terminal:
                    task.duplicate_of = owner
                    owner.duplicates.append(task)
                    continue
                dest_owner[task.path] = task
            continue
        if kind == "checkpoint":
            full = rec.get("snapshot")
            if full is not None and not order:
                # Compacted journal: this checkpoint is the first
                # meaningful record — the prefix was truncated behind
                # its full snapshot.  Restore the table wholesale.
                for job in restore_jobs(full):
                    jobs_by_id[job.job_id] = job
                    order.append(job)
                    for task in job.files:
                        if task.duplicate_of is not None:
                            continue
                        owner = dest_owner.get(task.path)
                        if owner is None or owner.state.terminal:
                            dest_owner[task.path] = task
            snapshot = rec.get("state", {}).get("jobs")
            if snapshot is not None and snapshot != _job_snapshot(order):
                raise ValueError(
                    "journal checkpoint snapshot disagrees with replayed "
                    "state (corrupted or truncated journal)"
                )
            clean = True
            continue
        # Per-file transition records from here on.
        clean = False
        task = jobs_by_id[rec["job_id"]].files[rec["index"]]
        if kind == "attempt":
            task.attempts = int(rec["attempts"])
            task.state = FileState.ACTIVE
            if task.started_at is None:
                task.started_at = t
            task.last_session = rec["session"]
            task.last_door = rec["door"]
            task.job._note_progress()
        elif kind == "attempt_fail":
            task.alt_cursor = int(rec["alt_cursor"])
            task.state = FileState.SUBMITTED
        elif kind == "finish":
            if rec.get("resumed_from"):
                task.resumed_from = int(rec["resumed_from"])
                task.recovered = True
            task.resolve(FileState.FINISHED, t, source_used=rec["door"])
        elif kind == "file_failed":
            task.resolve(FileState.FAILED, t, error=rec.get("error"))
        elif kind == "cancel":
            task.resolve(FileState.CANCELED, t, error=rec.get("reason"))
        else:
            raise ValueError(f"unknown journal record kind {kind!r}")

    resume: List[FileTask] = []
    for job in order:
        if job.state.terminal and job.finished_at is None:
            job.finished_at = max(
                (task.finished_at or 0.0) for task in job.files
            )
        for task in job.files:
            if task.duplicate_of is None and task.state is FileState.ACTIVE:
                resume.append(task)
            elif task.state is FileState.READY:
                task.state = FileState.SUBMITTED
    return RecoveredState(jobs=order, resume=resume, clean=clean)
