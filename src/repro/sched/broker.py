"""The multi-tenant transfer broker (FTS-style scheduler front door).

A :class:`TransferBroker` accepts bulk :class:`~repro.sched.jobs.Job`
submissions and multiplexes their files onto a bounded pool of transfer
sessions across one or more *doors* — pre-opened
:class:`~repro.core.source_link.SourceLink` connection sets to
alternative destinations.  The pieces:

- **worker pool**: at most ``max_active`` concurrent sessions overall,
  and at most ``max_sessions`` per door (the link's pool and credit
  ledger are shared, so per-door concurrency is what the middleware
  already supports via multi-session links);
- **dedupe**: a second submission for a destination path already queued
  or in flight attaches to the primary and mirrors its outcome instead
  of transferring twice;
- **fair share**: stride scheduling over tenants — each dispatch charges
  the tenant ``1/weight``, the runnable tenant with the lowest
  accumulated pass goes next — with per-tenant in-flight caps and
  admission control (a submission that would overflow the tenant's queue
  is rejected whole, files CANCELED);
- **orderly failover**: on a typed
  :class:`~repro.core.errors.TransferError` the file's alternatives
  cursor advances and the next admissible door is tried, skipping doors
  whose broker-level circuit breaker is OPEN or whose data channels are
  all quarantined (PR 4's :class:`~repro.core.health.ChannelBreaker`);
- **session reuse**: transfers run with ``reuse_negotiation=True``, so
  after a door's first session the per-file cost is one SESSION_REQ
  round trip instead of three — the difference between 1×RTT and 3×RTT
  per small file on the WAN;
- **durability**: every state transition is appended to a
  :class:`~repro.sched.journal.Journal` before it is acted on, so
  :meth:`TransferBroker.recover` can reconstruct the whole job table
  after a crash — FINISHED files are never re-transferred, queued files
  re-admit idempotently, and files ACTIVE at crash time re-attach via
  SESSION_RESUME under their journaled session id (only the suffix past
  the sink's restart marker moves);
- **watchdog / deadlines / drain**: an opt-in per-file progress watchdog
  kills attempts that stall without erroring (bounded by a multiple of
  the link's adaptive RTO), retries back off exponentially with
  deterministic seeded jitter, per-job deadlines cancel leftovers, and
  :meth:`TransferBroker.drain` stops admissions, lets in-flight work
  finish and writes a clean journal checkpoint.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import (
    InjectedAttemptFault,
    StuckTransfer,
    TransferCanceled,
    TransferError,
)
from repro.core.health import BreakerState, ChannelBreaker
from repro.core.jitter import jitter_fraction, jittered
from repro.core.middleware import allocate_session_id
from repro.sched.jobs import FileState, FileTask, Job, JobState, TransferSpec
from repro.sched.journal import Journal, replay
from repro.sched.overload import (
    RECOVERING,
    OverloadConfig,
    OverloadController,
)
from repro.sim.events import Event

__all__ = [
    "TenantPolicy",
    "SchedulerConfig",
    "BrokerConfig",
    "RftpDoor",
    "TransferBroker",
]


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant scheduling contract."""

    #: Fair-share weight: a weight-3 tenant gets 3× the dispatch slots of
    #: a weight-1 tenant while both have work queued.
    weight: float = 1.0
    #: Concurrent transfers this tenant may hold (admission: queue).
    max_inflight: int = 8
    #: Queued (not yet dispatched) files beyond which a new submission is
    #: rejected whole (admission: reject).
    max_queued: int = 100_000

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_queued < 0:
            raise ValueError("max_queued must be >= 0")


@dataclass(frozen=True)
class SchedulerConfig:
    """Broker-wide knobs."""

    #: Global concurrent-session ceiling (the worker pool size).
    max_active: int = 8
    #: Transfer attempts per file (first try included) before FAILED.
    max_attempts: int = 4
    #: Base retry delay, seconds (attempt 1's backoff).
    retry_backoff: float = 0.5
    #: Multiplier applied per prior attempt (capped exponential).
    retry_backoff_factor: float = 2.0
    #: Ceiling for the exponential backoff, seconds (before jitter).
    retry_backoff_cap: float = 8.0
    #: Jitter fraction in [0, 1]: the delay is scaled by a deterministic
    #: per-(job, file, attempt) factor in [1, 1 + retry_jitter], derived
    #: from the run seed — replayable, yet retries de-synchronise.
    retry_jitter: float = 0.25
    #: Wait before re-queuing a file that found no admissible door.
    blocked_retry: float = 0.25
    #: Consecutive failures that trip a door's breaker OPEN.
    breaker_failures: int = 2
    #: Door-breaker quarantine, seconds.
    breaker_cooldown: float = 2.0
    #: Enable the per-file progress watchdog.  Off by default: its poll
    #: timers extend the drained engine clock, which would shift the
    #: bit-identical bench/report anchors of runs that never stall.
    watchdog: bool = False
    #: A stalled attempt is killed after this multiple of the link's
    #: adaptive RTO with zero delivered-byte progress.
    watchdog_rto_multiplier: float = 16.0
    #: Floor for the watchdog poll interval, seconds.
    watchdog_min_interval: float = 0.25
    #: Compact the journal at each drain checkpoint: the replayed prefix
    #: is truncated behind a full state snapshot, bounding the in-memory
    #: record list on long-lived brokers.  Off by default — tests that
    #: inspect the raw record history expect the full log.
    checkpoint_compact: bool = False

    def __post_init__(self) -> None:
        if self.max_active < 1:
            raise ValueError("max_active must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.retry_backoff < 0 or self.blocked_retry <= 0:
            raise ValueError("retry timings must be positive")
        if self.retry_backoff_factor < 1.0:
            raise ValueError("retry_backoff_factor must be >= 1")
        if self.retry_backoff_cap < self.retry_backoff:
            raise ValueError("retry_backoff_cap must be >= retry_backoff")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError("retry_jitter must be in [0, 1]")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.breaker_cooldown <= 0:
            raise ValueError("breaker_cooldown must be positive")
        if self.watchdog_rto_multiplier <= 0:
            raise ValueError("watchdog_rto_multiplier must be positive")
        if self.watchdog_min_interval <= 0:
            raise ValueError("watchdog_min_interval must be positive")


#: Historical name, kept for callers of the PR 6 API.
BrokerConfig = SchedulerConfig


def _retry_jitter_fraction(seed: int, job_id: str, path: str,
                           attempt: int) -> float:
    """Deterministic per-task jitter in [0, 1) — a thin view over the
    shared :func:`repro.core.jitter.jitter_fraction` (same digest key,
    bit-identical schedules), kept under the PR 7 name for callers."""
    return jitter_fraction(seed, job_id, path, attempt)


class RftpDoor:
    """One alternative destination: a named, pre-opened connection set.

    Wraps a client middleware plus the :class:`SourceLink` it opened to
    one server endpoint.  The broker treats doors as the units of
    ``orderly`` failover — a file's ``sources`` list names them in
    preference order.
    """

    def __init__(
        self,
        name: str,
        middleware: Any,
        remote_dev: Any,
        port: int,
        data_source: Any,
        max_sessions: int = 4,
        tcp_factory: Any = None,
        fault_injector: Any = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.name = name
        self.middleware = middleware
        self.remote_dev = remote_dev
        self.port = port
        self.data_source = data_source
        self.max_sessions = max_sessions
        self.tcp_factory = tcp_factory
        self.fault_injector = fault_injector
        self.link = None
        self.active = 0
        #: Broker-level breaker over whole-transfer outcomes on this
        #: door (distinct from the link's per-QP channel breakers).
        self.breaker: Optional[ChannelBreaker] = None

    def open(self):
        """Process event resolving to the door's link (idempotent)."""
        mw = self.middleware

        def _open():
            if self.link is None:
                self.link = yield mw.open_link(
                    self.remote_dev,
                    self.port,
                    fault_injector=self.fault_injector,
                    tcp_factory=self.tcp_factory,
                )
                hp = getattr(self.link, "_host_pool", None)
                if hp is not None:
                    # Pooled link: the session cap is the host pool's real
                    # lease capacity, not the configured constant.  Every
                    # door on this (host, port) shares that one pool, so
                    # admissible() below also checks live availability.
                    self.max_sessions = hp.sessions.capacity
            return self.link

        return mw.engine.process(_open())

    def channels_quarantined(self, now: float) -> bool:
        """True when every live data channel's breaker is OPEN — the
        scheduler-level signal to prefer another door right now."""
        if self.link is None:
            return False
        breakers = [
            self.link._breakers.get(qp.qp_num) for qp in self.link.data.qps
        ]
        if not breakers:
            return True  # no live channel at all
        return all(
            b is not None
            and b.state is BreakerState.OPEN
            and now < b.open_until
            for b in breakers
        )

    def admissible(self, now: float, session_cap: Optional[int] = None) -> bool:
        cap = self.max_sessions if session_cap is None else session_cap
        if self.link is None or self.active >= cap:
            return False
        hp = getattr(self.link, "_host_pool", None)
        if hp is not None and hp.sessions.available <= 0:
            # Doors to the same (host, port) share one host pool; the
            # per-door cap alone could oversubscribe it and trip the
            # synchronous lease-capacity error inside transfer().
            return False
        if self.breaker is not None and not self.breaker.peek_admit(now):
            return False
        return not self.channels_quarantined(now)

    @property
    def pool_occupancy(self) -> float:
        """Pinned-pool pressure on this door's link, in [0, 1] — one of
        the two brownout watermark inputs."""
        if self.link is None:
            return 0.0
        return self.link.pool.occupancy

    @property
    def session_load(self) -> int:
        """Live middleware sessions on this door's link."""
        if self.link is None:
            return 0
        return self.link.session_load

    def transfer(self, task: FileTask, session_id: Optional[int] = None):
        """Process event for one file transfer through this door."""
        assert self.link is not None, "door not opened"
        return self.middleware.transfer(
            self.remote_dev,
            self.port,
            self.data_source,
            task.size,
            link=self.link,
            reuse_negotiation=True,
            session_id=session_id,
        )

    def resume(self, task: FileTask, session_id: int):
        """Process event re-attaching an interrupted session (recovery):
        the sink replies with its restart marker and only the missing
        suffix is read and sent."""
        assert self.link is not None, "door not opened"
        return self.middleware.resume(
            self.remote_dev,
            self.port,
            self.data_source,
            task.size,
            session_id,
            link=self.link,
        )


@dataclass
class _TenantState:
    policy: TenantPolicy
    #: Stride-scheduling accumulated pass; lowest runnable goes next.
    pass_value: float = 0.0
    #: Min-heap of (-priority, fifo_seq, task).
    queue: List[Tuple[int, int, FileTask]] = field(default_factory=list)
    inflight: int = 0
    #: Files currently waiting in a retry/blocked backoff timer.
    parked: int = 0

    @property
    def queued(self) -> int:
        return len(self.queue)


class TransferBroker:
    """Accepts jobs, schedules their files across the doors.

    ``journal`` (default: a fresh in-memory :class:`Journal`) receives
    every state transition; ``seed`` feeds the deterministic retry
    jitter.  Use :meth:`recover` instead of the constructor to build an
    incarnation that continues a journaled predecessor.
    """

    def __init__(
        self,
        engine: Any,
        doors: Sequence[RftpDoor],
        config: Optional[SchedulerConfig] = None,
        tenants: Optional[Dict[str, TenantPolicy]] = None,
        journal: Optional[Journal] = None,
        seed: int = 0,
        overload: Optional[OverloadConfig] = None,
    ) -> None:
        if not doors:
            raise ValueError("broker needs at least one door")
        names = [d.name for d in doors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate door names: {names}")
        self.engine = engine
        self.config = config or SchedulerConfig()
        self.journal = journal if journal is not None else Journal()
        self.seed = int(seed)
        self.overload_config = overload
        #: Built only when a mechanism is armed: an idle broker runs the
        #: exact PR 7 code paths (bit-identical anchors).
        self.overload: Optional[OverloadController] = (
            OverloadController(engine, overload, seed=seed)
            if overload is not None and overload.enabled else None
        )
        #: Retry-storm injection seam: a hook returning True fails the
        #: next attempt before any transfer traffic (see
        #: :meth:`repro.faults.FaultInjector.arm_scheduler`).
        self.attempt_fault_hook: Optional[Callable[[float], bool]] = None
        self.doors: Dict[str, RftpDoor] = {d.name: d for d in doors}
        for door in doors:
            door.breaker = ChannelBreaker(
                0,
                self.config.breaker_failures,
                lambda: self.config.breaker_cooldown,
            )
        self._tenants: Dict[str, _TenantState] = {}
        for name, policy in (tenants or {}).items():
            self._tenants[name] = _TenantState(policy=policy)
        self.jobs: List[Job] = []
        #: job_id -> Job, for resubmission dedupe: a submit reusing a
        #: live (or journaled) id returns the existing incarnation.
        self._jobs_by_id: Dict[str, Job] = {}
        self.recovered = False
        self._fifo = itertools.count()
        self._job_ids = itertools.count(1)
        #: Destination path -> live (non-terminal) primary task, for dedupe.
        self._dest_owner: Dict[str, FileTask] = {}
        self._active = 0
        #: High-water mark of concurrent active transfers over the
        #: broker's lifetime (the sessions-per-host capacity metric).
        self.peak_active = 0
        self._outstanding = 0  #: non-terminal primary tasks
        self._loop_running = False
        self._wake: Optional[Event] = None
        #: Crash flag: a dead incarnation journals nothing and touches no
        #: bookkeeping — its in-flight processes wake up and fall through.
        self._dead = False
        self._draining = False
        self._drain_wake: Optional[Event] = None
        self._recovering = False
        #: A brownout-recheck timer is in flight (hysteresis dwell).
        self._recheck_pending = False
        #: Task -> (backoff timer, tenant state) while parked, so a
        #: cancel can unpark immediately instead of leaking the file in
        #: the timer until it fires.
        #: Keyed by ``id(task)`` — FileTask is a mutable dataclass and
        #: deliberately unhashable; identity is the right key anyway.
        self._parked: Dict[int, Tuple[Any, _TenantState]] = {}

        reg = engine.metrics
        self._m_jobs_submitted = reg.counter("sched.jobs_submitted")
        self._m_jobs_rejected = reg.counter("sched.jobs_rejected")
        self._m_dedup_hits = reg.counter("sched.dedup_hits")
        self._m_blocked = reg.counter("sched.dispatch_blocked")
        self._m_watchdog_kills = reg.counter("sched.watchdog.kills")
        self._m_deadline_cancels = reg.counter("sched.deadline_cancels")
        self._m_rec_jobs = reg.counter("sched.recovery.jobs_replayed")
        self._m_rec_files = reg.counter("sched.recovery.files_replayed")
        self._m_rec_requeued = reg.counter("sched.recovery.requeued")
        self._m_rec_resumed = reg.counter("sched.recovery.resumed")
        self._m_rec_resume_failed = reg.counter("sched.recovery.resume_failed")
        self._per_tenant_metrics: Dict[str, dict] = {}
        reg.gauge_fn("sched.active_transfers", lambda: self._active)
        reg.gauge_fn("sched.outstanding_files", lambda: self._outstanding)

    # -- per-tenant plumbing -----------------------------------------------------
    def _tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(policy=TenantPolicy())
            self._tenants[name] = state
        return state

    def _metrics(self, tenant: str) -> dict:
        m = self._per_tenant_metrics.get(tenant)
        if m is None:
            reg = self.engine.metrics
            state = self._tenant(tenant)
            m = {
                "files_finished": reg.counter("sched.files_finished", tenant=tenant),
                "files_failed": reg.counter("sched.files_failed", tenant=tenant),
                "files_canceled": reg.counter("sched.files_canceled", tenant=tenant),
                "retries": reg.counter("sched.retries", tenant=tenant),
                "bytes_finished": reg.counter("sched.bytes_finished", tenant=tenant),
                "queue_wait": reg.histogram("sched.queue_wait_seconds", tenant=tenant),
                "latency": reg.histogram("sched.file_latency_seconds", tenant=tenant),
            }
            reg.gauge_fn(
                "sched.inflight", lambda s=state: s.inflight, tenant=tenant
            )
            reg.gauge_fn(
                "sched.queued", lambda s=state: s.queued, tenant=tenant
            )
            self._per_tenant_metrics[tenant] = m
        return m

    def _journal_rec(self, kind: str, **fields: Any) -> None:
        if not self._dead:  # a crashed process writes nothing
            self.journal.append(kind, **fields)

    # -- submission --------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        files: Sequence[TransferSpec],
        priority: int = 0,
        job_id: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Job:
        """Accept (or reject) one bulk submission.  Returns the job with
        its ``done`` event wired; a rejected job comes back already
        CANCELED with the event triggered.  ``deadline`` (seconds after
        submission): past it, files still pending are canceled and the
        job lands in a journaled terminal state."""
        if not files:
            raise ValueError("a job needs at least one file")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive")
        if job_id is None:
            job_id = f"job-{next(self._job_ids)}"
        existing = self._jobs_by_id.get(job_id)
        if existing is not None:
            # Resubmission dedupe: the id already has an incarnation in
            # this broker (live, or replayed out of the journal after a
            # crash) — return it instead of creating a twin, so a client
            # retrying across a recovery boundary cannot double-submit.
            self.engine.trace(
                "sched", "job_resubmit_dedup", job=job_id, tenant=tenant
            )
            return existing
        job = Job.build(job_id, tenant, files, priority)
        now = self.engine.now
        job.submitted_at = now
        job.deadline = deadline
        job.done = Event(self.engine)
        self.jobs.append(job)
        self._jobs_by_id[job_id] = job
        self._m_jobs_submitted.add()
        metrics = self._metrics(tenant)
        state = self._tenant(tenant)
        self._journal_rec(
            "submit", t=now, job_id=job_id, tenant=tenant, priority=priority,
            deadline=deadline,
            files=[{"path": s.path, "size": s.size,
                    "sources": list(s.sources)} for s in files],
        )

        primaries = [
            t for t in job.files
            if self._dest_owner.get(t.path) is None
            or self._dest_owner[t.path].state.terminal
        ]
        backlog = state.queued + state.parked
        if self._draining:
            return self._reject_job(
                job, metrics, "broker draining: admissions closed"
            )
        if self.overload is not None:
            decision = self.overload.admit(
                job_id, tenant,
                n_primaries=len(primaries),
                n_duplicates=len(job.files) - len(primaries),
                total_backlog=self._total_backlog(),
                priority=priority, deadline=deadline,
            )
            if decision is not None:
                return self._shed_job(job, metrics, decision)
        if backlog + len(primaries) > state.policy.max_queued:
            # Admission control: reject the submission whole rather than
            # accept a prefix the tenant cannot distinguish.
            return self._reject_job(
                job, metrics,
                f"tenant {tenant!r} queue full "
                f"({backlog}+{len(primaries)} > {state.policy.max_queued})",
            )

        self._journal_rec("admit", t=now, job_id=job_id)
        for task in job.files:
            task.submitted_at = now
            owner = self._dest_owner.get(task.path)
            if owner is not None and not owner.state.terminal:
                # Duplicate submission for an in-flight destination: ride
                # along on the primary instead of transferring twice.
                task.duplicate_of = owner
                owner.duplicates.append(task)
                self._m_dedup_hits.add()
                continue
            self._dest_owner[task.path] = task
            self._outstanding += 1
            heapq.heappush(
                state.queue, (-job.priority, next(self._fifo), task)
            )
        job._note_progress()  # all-duplicate jobs may already be terminal
        if deadline is not None and not job.state.terminal:
            self.engine.process(self._deadline_watch(job, deadline))
        self.engine.trace(
            "sched", "job_submitted", job=job_id, tenant=tenant,
            files=len(job.files), priority=job.priority,
        )
        self._kick()
        return job

    def _total_backlog(self) -> int:
        """Queued + parked primary files across every tenant (the
        global bound the overload queue cap applies to)."""
        return sum(s.queued + s.parked for s in self._tenants.values())

    def _shed_job(self, job: Job, metrics: dict, decision: Any) -> Job:
        """Load-shed a submission whole: journaled as a ``shed`` record
        carrying the reason and the RETRY_AFTER hint, files CANCELED,
        and the job marked ``shed`` so the runner can cooperatively
        resubmit after the hint instead of retrying blind."""
        now = self.engine.now
        self.overload.note_shed(job.tenant, len(job.files))
        metrics["files_canceled"].add(len(job.files))
        self._journal_rec(
            "shed", t=now, job_id=job.job_id, reason=decision.reason,
            retry_after=decision.retry_after,
        )
        job.state = JobState.CANCELED
        job.shed = True
        job.shed_reason = decision.reason
        job.retry_after = decision.retry_after
        for task in job.files:
            task.state = FileState.CANCELED
            task.submitted_at = now
            task.finished_at = now
            task.error = f"shed: {decision.reason}"
        job.finished_at = now
        job.done.succeed(job)
        self.engine.trace(
            "sched", "job_shed", job=job.job_id, tenant=job.tenant,
            files=len(job.files), reason=decision.reason,
            retry_after=round(decision.retry_after, 6),
        )
        return job

    def _reject_job(self, job: Job, metrics: dict, reason: str) -> Job:
        now = self.engine.now
        self._m_jobs_rejected.add()
        metrics["files_canceled"].add(len(job.files))
        self._journal_rec("reject", t=now, job_id=job.job_id, reason=reason)
        job.state = JobState.CANCELED
        for task in job.files:
            task.state = FileState.CANCELED
            task.submitted_at = now
            task.finished_at = now
            task.error = reason
        job.finished_at = now
        job.done.succeed(job)
        self.engine.trace(
            "sched", "job_rejected", job=job.job_id, tenant=job.tenant,
            files=len(job.files),
        )
        return job

    # -- cancellation / deadlines ------------------------------------------------
    def cancel_job(self, job: Job, reason: str = "canceled") -> bool:
        """Cancel every non-terminal file of ``job`` NOW: queued files
        leave the queue, parked files are unparked (their backoff timers
        cancelled), ACTIVE sessions are aborted with a typed
        :class:`TransferCanceled`.  Every cancellation is journaled."""
        if self._dead or job.state.terminal:
            return False
        now = self.engine.now
        metrics = self._metrics(job.tenant)
        affected = {id(job): job}  # Job is a mutable dataclass: key by id
        for task in job.files:
            if task.state.terminal:
                continue
            if task.duplicate_of is not None:
                owner = task.duplicate_of
                if not owner.state.terminal and task in owner.duplicates:
                    # Detach from the primary's cascade; the primary (in
                    # some other job) keeps transferring.
                    owner.duplicates.remove(task)
                metrics["files_canceled"].add()
                self._journal_rec("cancel", t=now, job_id=job.job_id,
                                  index=task.index, reason=reason)
                task.state = FileState.CANCELED
                task.finished_at = now
                task.error = reason
                continue
            was_active = task.state is FileState.ACTIVE
            self._unpark(task)
            self._outstanding -= 1
            metrics["files_canceled"].add()
            self._journal_rec("cancel", t=now, job_id=job.job_id,
                              index=task.index, reason=reason)
            for dup in task.duplicates:
                affected[id(dup.job)] = dup.job
            task.resolve(FileState.CANCELED, now, error=reason)
            if was_active and task.last_session is not None:
                door = self.doors.get(task.last_door or "")
                if door is not None and door.link is not None:
                    door.link.abort_session(
                        task.last_session,
                        TransferCanceled(task.last_session, reason),
                    )
        job._note_progress()
        # Purge the canceled entries from the tenant's heap now.  The
        # dispatch loop skips terminal entries lazily, but it only runs
        # while work is outstanding — a cancellation that empties the
        # broker would otherwise strand the stale entries in the queue
        # (flagged by the quiescence audit).
        state = self._tenants.get(job.tenant)
        if state is not None and any(e[2].state.terminal for e in state.queue):
            state.queue = [e for e in state.queue if not e[2].state.terminal]
            heapq.heapify(state.queue)
        for j in affected.values():
            self._finish_job(j)
        self.engine.trace(
            "sched", "job_canceled", job=job.job_id, reason=reason
        )
        return True

    def _deadline_watch(self, job: Job, delay: float):
        yield self.engine.timeout(delay)
        if self._dead or job.state.terminal:
            return
        self._m_deadline_cancels.add()
        self.engine.trace("sched", "deadline_exceeded", job=job.job_id)
        self.cancel_job(job, reason=f"deadline exceeded after {delay}s")

    # -- dispatch ----------------------------------------------------------------
    def _kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed(None)
        if (
            not self._loop_running
            and self._outstanding > 0
            and not (self._dead or self._draining or self._recovering)
        ):
            self._loop_running = True
            self.engine.process(self._dispatch_loop())

    def _runnable_tenant(self) -> Optional[str]:
        """The stride pick: lowest pass among tenants with queued work
        and spare in-flight capacity (name breaks ties, deterministic)."""
        best: Optional[str] = None
        ctrl = self.overload
        for name in sorted(self._tenants):
            state = self._tenants[name]
            if not state.queue or state.inflight >= state.policy.max_inflight:
                continue
            if ctrl is not None and ctrl.tenant_parked(name):
                # Brownout: lowest-weight tenants sit out dispatch; their
                # queued work holds (and re-enters) rather than cancels.
                continue
            if best is None or state.pass_value < self._tenants[best].pass_value:
                best = name
        return best

    def _pick_door(self, task: FileTask) -> Optional[RftpDoor]:
        """First admissible door from the task's alternatives, walking
        ``orderly`` from the failure cursor."""
        names = task.spec.sources or tuple(self.doors)
        now = self.engine.now
        ctrl = self.overload
        n = len(names)
        for i in range(n):
            name = names[(task.alt_cursor + i) % n]
            door = self.doors.get(name)
            if door is None:
                continue
            cap = (
                ctrl.door_session_cap(door.max_sessions)
                if ctrl is not None else None
            )
            # Only pass the brownout cap when one is in force: doors are
            # duck-typed (tests stub them) and the base signature works
            # everywhere.
            admissible = (
                door.admissible(now) if cap is None
                else door.admissible(now, session_cap=cap)
            )
            if admissible:
                hp = getattr(door.link, "_host_pool", None)
                if hp is not None:
                    # Dispatched-but-unfinished tasks on EVERY door
                    # sharing this host pool each hold (or are about to
                    # take, synchronously at transfer start) one channel
                    # lease.  door.active is bumped at dispatch, before
                    # the task's process first runs, so this aggregate
                    # cannot race the way the pool's own live lease
                    # count can — per-door caps alone oversubscribe the
                    # shared pool and trip the lease-capacity error.
                    inflight = sum(
                        d.active for d in self.doors.values()
                        if getattr(d.link, "_host_pool", None) is hp
                    )
                    if inflight >= hp.sessions.capacity:
                        admissible = False
            if admissible:
                if i:
                    task.alt_cursor = (task.alt_cursor + i) % n
                return door
        return None

    # -- brownout sampling -------------------------------------------------------
    def _observe_overload(self) -> None:
        """Feed the brownout FSM one load sample (event-driven: called
        at dispatch and completion points, never from its own timer
        except the hysteresis recheck below)."""
        ctrl = self.overload
        if ctrl is None or not ctrl.config.brownout_enabled:
            return
        occupancy = max(
            (d.pool_occupancy for d in self.doors.values()), default=0.0
        )
        ctrl.observe(
            self._active, self.config.max_active, occupancy,
            {n: s.policy.weight for n, s in self._tenants.items()},
        )
        if ctrl.state == RECOVERING and not self._recheck_pending:
            # The exit dwell needs one more sample after `brownout_hold`
            # quiet seconds; without this timer a fully-parked broker
            # would never observe again and never re-promote.
            self._recheck_pending = True
            self.engine.process(
                self._brownout_recheck(ctrl.config.brownout_hold)
            )

    def _brownout_recheck(self, delay: float):
        yield self.engine.timeout(max(delay, 1e-3))
        self._recheck_pending = False
        if self._dead:
            return
        self._observe_overload()
        self._kick()

    def _dispatch_loop(self):
        while self._outstanding > 0 and not (self._dead or self._draining):
            while (
                self._active < self.config.max_active
                and not (self._dead or self._draining)
            ):
                self._observe_overload()
                tenant_name = self._runnable_tenant()
                if tenant_name is None:
                    break
                state = self._tenants[tenant_name]
                _neg_prio, _seq, task = heapq.heappop(state.queue)
                if task.state.terminal:
                    continue  # canceled while queued; entry is stale
                door = self._pick_door(task)
                if door is None:
                    # Every alternative is quarantined or saturated: park
                    # the file and retry shortly, without burning a slot
                    # or charging the tenant's stride pass.
                    self._m_blocked.add()
                    self._park(task, self.config.blocked_retry, state)
                    continue
                state.pass_value += 1.0 / state.policy.weight
                state.inflight += 1
                self._active += 1
                if self._active > self.peak_active:
                    self.peak_active = self._active
                door.active += 1
                task.state = FileState.READY
                self.engine.process(self._run_task(task, state, door))
            self._wake = Event(self.engine)
            if self._outstanding == 0 or self._dead or self._draining:
                break
            yield self._wake
        self._loop_running = False

    # -- parking (retry / blocked backoff) ---------------------------------------
    def _park(self, task: FileTask, delay: float, state: _TenantState) -> None:
        state.parked += 1
        timer = self.engine.timeout(delay)
        self._parked[id(task)] = (timer, state)
        self.engine.process(self._requeue_later(task, timer, state))

    def _unpark(self, task: FileTask) -> bool:
        """Remove a parked task NOW (job canceled / broker action); its
        backoff timer is cancelled and the waiter process never requeues."""
        entry = self._parked.pop(id(task), None)
        if entry is None:
            return False
        timer, state = entry
        timer.cancel()
        state.parked -= 1
        return True

    def _requeue_later(self, task: FileTask, timer: Any, state: _TenantState):
        yield timer
        if self._dead:
            return
        if self._parked.pop(id(task), None) is None:
            return  # unparked while waiting (cancel won the race)
        state.parked -= 1
        if task.state.terminal:
            return
        task.state = FileState.SUBMITTED
        heapq.heappush(
            state.queue, (-task.job.priority, next(self._fifo), task)
        )
        self._kick()

    def _retry_delay(self, task: FileTask) -> float:
        """Capped exponential backoff with deterministic seeded jitter."""
        cfg = self.config
        base = cfg.retry_backoff * (
            cfg.retry_backoff_factor ** max(0, task.attempts - 1)
        )
        delay = min(base, cfg.retry_backoff_cap)
        # Shared helper, same digest key as PR 7's private function —
        # backoff schedules stay bit-identical.
        return jittered(delay, cfg.retry_jitter, self.seed,
                        task.job.job_id, task.path, task.attempts)

    # -- the attempt -------------------------------------------------------------
    def _run_task(self, task: FileTask, state: _TenantState, door: RftpDoor):
        metrics = self._metrics(task.job.tenant)
        now = self.engine.now
        if task.state.terminal or self._dead:
            # Canceled (or the broker died) between dispatch and start.
            state.inflight -= 1
            self._active -= 1
            door.active -= 1
            self._kick()
            return
        if task.started_at is None:
            task.started_at = now
            metrics["queue_wait"].observe(now - task.submitted_at)
        task.state = FileState.ACTIVE
        task.job._note_progress()
        task.attempts += 1
        if task.attempts > 1:
            metrics["retries"].add()
        session_id = allocate_session_id()
        task.last_session = session_id
        task.last_door = door.name
        self._journal_rec(
            "attempt", t=now, job_id=task.job.job_id, index=task.index,
            door=door.name, session=session_id, attempts=task.attempts,
        )
        if self.config.watchdog:
            self.engine.process(self._watchdog(task, door, session_id))
        error: Optional[TransferError] = None
        if self.attempt_fault_hook is not None \
                and self.attempt_fault_hook(now):
            # Retry-storm seam: the attempt dies at the broker boundary
            # before any transfer traffic — the cheapest, fastest failure
            # there is, which is exactly what makes storms metastable.
            error = InjectedAttemptFault(
                session_id, "injected broker-attempt fault"
            )
        else:
            try:
                yield door.transfer(task, session_id=session_id)
            except TransferError as exc:
                error = exc
        if self._dead:
            return  # the crash owns the state now; recovery will replay
        now = self.engine.now
        state.inflight -= 1
        self._active -= 1
        door.active -= 1
        self._observe_overload()
        if error is not None and task.state.terminal:
            # cancel_job/deadline aborted the session under us and
            # already journaled the terminal state.
            self._notify_drain()
            self._kick()
            return
        if error is None:
            door.breaker.record_success()
            if self.overload is not None:
                self.overload.note_success(task.job.tenant)
            self._outstanding -= 1
            metrics["files_finished"].add()
            metrics["bytes_finished"].add(task.size)
            metrics["latency"].observe(now - task.submitted_at)
            self._journal_rec(
                "finish", t=now, job_id=task.job.job_id, index=task.index,
                door=door.name,
            )
            task.resolve(FileState.FINISHED, now, source_used=door.name)
            self._finish_job(task.job)
            for dup in task.duplicates:
                self._finish_job(dup.job)
            self.engine.trace(
                "sched", "file_finished", job=task.job.job_id,
                path=task.path, door=door.name, attempts=task.attempts,
            )
        else:
            door.breaker.record_failure(now)
            task.alt_cursor += 1  # orderly: next alternative first
            self._journal_rec(
                "attempt_fail", t=now, job_id=task.job.job_id,
                index=task.index, alt_cursor=task.alt_cursor,
                attempts=task.attempts, error=type(error).__name__,
            )
            self.engine.trace(
                "sched", "file_attempt_failed", job=task.job.job_id,
                path=task.path, door=door.name, attempts=task.attempts,
                error=type(error).__name__,
            )
            budget_ok = (
                self.overload is None
                or self.overload.allow_retry(task.job.tenant)
            )
            if task.attempts >= self.config.max_attempts or not budget_ok:
                reason = f"{type(error).__name__}: {error}"
                if not budget_ok:
                    # Retry budget dry: the tenant's failure burst must
                    # not amplify into a parked-retry storm — fail NOW.
                    reason += " (retry budget exhausted)"
                    self.engine.trace(
                        "sched", "retry_budget_denied",
                        job=task.job.job_id, path=task.path,
                        tenant=task.job.tenant,
                    )
                self._outstanding -= 1
                metrics["files_failed"].add()
                self._journal_rec(
                    "file_failed", t=now, job_id=task.job.job_id,
                    index=task.index, error=reason,
                )
                task.resolve(FileState.FAILED, now, error=reason)
                self._finish_job(task.job)
                for dup in task.duplicates:
                    self._finish_job(dup.job)
            else:
                self._park(task, self._retry_delay(task), state)
        self._notify_drain()
        self._kick()

    def _watchdog(self, task: FileTask, door: RftpDoor, session_id: int):
        """Kill an attempt that stops making delivered-byte progress.

        Polls the link-level job at a cadence bounded below by
        ``watchdog_min_interval`` and scaled by the adaptive RTO; two
        consecutive polls with an identical progress vector (restart
        marker, completed blocks, fallback blocks, start seq) abort the
        session with :class:`StuckTransfer` — the failure then flows
        through the normal retry path (journal, alternatives cursor,
        backoff) instead of wedging a worker slot forever."""
        cfg = self.config
        link = door.link
        last = None
        while not self._dead:
            rto = cfg.watchdog_min_interval
            if link is not None and link.health is not None:
                rto = link.health.rtt.rto
            interval = max(
                cfg.watchdog_min_interval, cfg.watchdog_rto_multiplier * rto
            )
            yield self.engine.timeout(interval)
            if (
                self._dead
                or task.state is not FileState.ACTIVE
                or task.last_session != session_id
                or link is None
            ):
                return
            job = link.jobs.get(session_id)
            if job is None:
                return  # attempt settled between polls
            progress = (
                job.start_seq, job.marker, job.completed_blocks,
                job.fallback_blocks, job.started_at is not None,
            )
            if progress == last:
                self._m_watchdog_kills.add()
                self.engine.trace(
                    "sched", "watchdog_kill", job=task.job.job_id,
                    path=task.path, session=session_id, interval=interval,
                )
                link.abort_session(session_id, StuckTransfer(
                    session_id,
                    f"no delivered-byte progress within {interval:.3f}s",
                ))
                return
            last = progress

    # -- crash / drain / recovery ------------------------------------------------
    def crash(self) -> None:
        """Kill this broker incarnation: every door's link crashes (live
        sessions die with ``EndpointCrashed``, volatile source state is
        lost) and the incarnation stops journaling and touching state —
        a crash writes nothing, by definition.  The journal object
        survives for :meth:`recover`."""
        if self._dead:
            return
        self._dead = True
        self.engine.trace("sched", "broker_crash")
        for door in self.doors.values():
            if door.link is not None:
                door.link.crash()

    def drain(self):
        """Graceful shutdown: stop admissions and dispatch, let in-flight
        transfers finish, then write a clean journal checkpoint.  Process
        event resolving to the journal.  Queued/parked files stay
        SUBMITTED in the journal — a later ``recover`` continues them."""
        self._draining = True
        self.engine.trace("sched", "drain_begin", active=self._active)

        def _wait():
            while self._active > 0:
                self._drain_wake = Event(self.engine)
                yield self._drain_wake
            self._checkpoint()
            self.engine.trace("sched", "drain_done")
            return self.journal

        return self.engine.process(_wait())

    def _notify_drain(self) -> None:
        if (
            self._draining
            and self._active == 0
            and self._drain_wake is not None
            and not self._drain_wake.triggered
        ):
            self._drain_wake.succeed(None)

    def _checkpoint(self) -> None:
        from repro.sched.journal import snapshot_jobs

        counts = {"finished": 0, "failed": 0, "canceled": 0, "pending": 0}
        for job in self.jobs:
            for task in job.files:
                key = task.state.value.lower()
                counts[key if key in counts else "pending"] += 1
        self._journal_rec(
            "checkpoint", t=self.engine.now, clean=True,
            state={
                "jobs": {job.job_id: job.state.value for job in self.jobs},
                "files": counts,
            },
            snapshot=snapshot_jobs(self.jobs),
        )
        if self.config.checkpoint_compact and not self._dead:
            self.journal.compact()

    @classmethod
    def recover(
        cls,
        engine: Any,
        doors: Sequence[RftpDoor],
        journal: Journal,
        config: Optional[SchedulerConfig] = None,
        tenants: Optional[Dict[str, TenantPolicy]] = None,
        seed: int = 0,
        overload: Optional[OverloadConfig] = None,
    ) -> "TransferBroker":
        """Build a new incarnation from a journal replay.

        Terminal files keep their journaled outcome (FINISHED files are
        never re-transferred), SUBMITTED/READY files re-enter the queue
        in original order (dedupe decisions replay exactly), and files
        ACTIVE at the journal's end are re-attached sequentially via
        SESSION_RESUME on their journaled door/session — only the suffix
        past the sink's restart marker moves.  Dispatch is held until the
        resume pass completes (resume flushes the link's shared credit
        ledger, so it must not race fresh sessions)."""
        state = replay(journal.records)
        broker = cls(engine, doors, config, tenants,
                     journal=journal, seed=seed, overload=overload)
        broker.recovered = True
        if broker.overload is not None:
            # Per-base-id shed counts survive the crash: a job shed
            # before the crash keeps doubling its RETRY_AFTER after it,
            # and replayed hints stay byte-identical.
            for rec in journal.records:
                if rec.get("kind") == "shed":
                    base = str(rec["job_id"]).split("~r", 1)[0]
                    counts = broker.overload._shed_counts
                    counts[base] = counts.get(base, 0) + 1
        for door in broker.doors.values():
            door.active = 0  # the dead incarnation's slots are gone
        now = engine.now
        overdue: List[Job] = []
        for job in state.jobs:
            job.recovered = True
            job.done = Event(engine)
            broker.jobs.append(job)
            broker._jobs_by_id[job.job_id] = job
            broker._m_rec_jobs.add()
            broker._m_rec_files.add(len(job.files))
            if job.state.terminal:
                job.done.succeed(job)
                continue
            tstate = broker._tenant(job.tenant)
            broker._metrics(job.tenant)
            for task in job.files:
                if task.duplicate_of is not None or task.state.terminal:
                    continue
                broker._dest_owner[task.path] = task
                broker._outstanding += 1
                if task.state is FileState.ACTIVE:
                    continue  # the resume pass owns these
                task.recovered = True
                heapq.heappush(
                    tstate.queue, (-job.priority, next(broker._fifo), task)
                )
                broker._m_rec_requeued.add()
            if job.deadline is not None:
                remaining = job.submitted_at + job.deadline - now
                if remaining <= 0:
                    overdue.append(job)
                else:
                    engine.process(broker._deadline_watch(job, remaining))
        broker._journal_rec(
            "recover", t=now,
            mode="checkpoint" if state.clean else "crash",
            resumed=len(state.resume),
        )
        engine.trace(
            "sched", "broker_recover",
            mode="checkpoint" if state.clean else "crash",
            jobs=len(state.jobs), resume=len(state.resume),
        )
        for job in overdue:
            broker._m_deadline_cancels.add()
            broker.cancel_job(
                job, reason=f"deadline exceeded after {job.deadline}s"
            )
        if state.resume:
            broker._recovering = True
            engine.process(broker._recovery_loop(state.resume))
        else:
            broker._kick()
        return broker

    def _recovery_loop(self, resume_tasks: List[FileTask]):
        """Re-attach interrupted sessions one at a time (resume flushes
        the shared credit ledger — see ``SourceLink.resume`` — so the
        pass is serialised and dispatch is held until it finishes)."""
        cfg = self.config
        for task in resume_tasks:
            if self._dead:
                return
            if task.state.terminal:
                continue  # e.g. an overdue deadline canceled it above
            job = task.job
            state = self._tenant(job.tenant)
            metrics = self._metrics(job.tenant)
            door = self.doors.get(task.last_door or "")
            session_id = task.last_session
            task.recovered = True
            error: Optional[TransferError] = None
            outcome = None
            if door is None or door.link is None or session_id is None:
                error = TransferError(
                    session_id or 0, "no door to resume on"
                )
            else:
                if door.link.data.alive_count == 0:
                    yield door.middleware.reopen_channel(
                        door.link, door.remote_dev, door.port
                    )
                state.inflight += 1
                self._active += 1
                if self._active > self.peak_active:
                    self.peak_active = self._active
                door.active += 1
                if cfg.watchdog:
                    self.engine.process(
                        self._watchdog(task, door, session_id)
                    )
                try:
                    outcome = yield door.resume(task, session_id)
                except TransferError as exc:
                    error = exc
                if self._dead:
                    return
                state.inflight -= 1
                self._active -= 1
                door.active -= 1
            now = self.engine.now
            if task.state.terminal:  # canceled while the resume ran
                self._notify_drain()
                continue
            if error is None:
                self._m_rec_resumed.add()
                task.resumed_from = getattr(outcome, "resumed_from", 0)
                door.breaker.record_success()
                self._outstanding -= 1
                metrics["files_finished"].add()
                metrics["bytes_finished"].add(task.size)
                metrics["latency"].observe(now - task.submitted_at)
                self._journal_rec(
                    "finish", t=now, job_id=job.job_id, index=task.index,
                    door=door.name, resumed_from=task.resumed_from,
                )
                task.resolve(FileState.FINISHED, now, source_used=door.name)
                self._finish_job(job)
                for dup in task.duplicates:
                    self._finish_job(dup.job)
                self.engine.trace(
                    "sched", "file_resumed", job=job.job_id, path=task.path,
                    session=session_id, resumed_from=task.resumed_from,
                )
            else:
                self._m_rec_resume_failed.add()
                task.alt_cursor += 1
                self._journal_rec(
                    "attempt_fail", t=now, job_id=job.job_id,
                    index=task.index, alt_cursor=task.alt_cursor,
                    attempts=task.attempts, error=type(error).__name__,
                )
                self.engine.trace(
                    "sched", "resume_failed", job=job.job_id,
                    path=task.path, session=session_id,
                    error=type(error).__name__,
                )
                if task.attempts >= cfg.max_attempts:
                    self._outstanding -= 1
                    metrics["files_failed"].add()
                    self._journal_rec(
                        "file_failed", t=now, job_id=job.job_id,
                        index=task.index,
                        error=f"{type(error).__name__}: {error}",
                    )
                    task.resolve(
                        FileState.FAILED, now,
                        error=f"{type(error).__name__}: {error}",
                    )
                    self._finish_job(job)
                    for dup in task.duplicates:
                        self._finish_job(dup.job)
                else:
                    # Fall back to a fresh attempt through dispatch.
                    task.state = FileState.SUBMITTED
                    heapq.heappush(
                        state.queue,
                        (-job.priority, next(self._fifo), task),
                    )
            self._notify_drain()
        self._recovering = False
        self._kick()

    def _finish_job(self, job: Job) -> None:
        if job.state.terminal and job.finished_at is None:
            job.finished_at = self.engine.now
            self.engine.trace(
                "sched", "job_done", job=job.job_id, state=job.state.value
            )
