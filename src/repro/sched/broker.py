"""The multi-tenant transfer broker (FTS-style scheduler front door).

A :class:`TransferBroker` accepts bulk :class:`~repro.sched.jobs.Job`
submissions and multiplexes their files onto a bounded pool of transfer
sessions across one or more *doors* — pre-opened
:class:`~repro.core.source_link.SourceLink` connection sets to
alternative destinations.  The pieces:

- **worker pool**: at most ``max_active`` concurrent sessions overall,
  and at most ``max_sessions`` per door (the link's pool and credit
  ledger are shared, so per-door concurrency is what the middleware
  already supports via multi-session links);
- **dedupe**: a second submission for a destination path already queued
  or in flight attaches to the primary and mirrors its outcome instead
  of transferring twice;
- **fair share**: stride scheduling over tenants — each dispatch charges
  the tenant ``1/weight``, the runnable tenant with the lowest
  accumulated pass goes next — with per-tenant in-flight caps and
  admission control (a submission that would overflow the tenant's queue
  is rejected whole, files CANCELED);
- **orderly failover**: on a typed
  :class:`~repro.core.errors.TransferError` the file's alternatives
  cursor advances and the next admissible door is tried, skipping doors
  whose broker-level circuit breaker is OPEN or whose data channels are
  all quarantined (PR 4's :class:`~repro.core.health.ChannelBreaker`);
- **session reuse**: transfers run with ``reuse_negotiation=True``, so
  after a door's first session the per-file cost is one SESSION_REQ
  round trip instead of three — the difference between 1×RTT and 3×RTT
  per small file on the WAN.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import TransferError
from repro.core.health import BreakerState, ChannelBreaker
from repro.sched.jobs import FileState, FileTask, Job, JobState, TransferSpec
from repro.sim.events import Event

__all__ = ["TenantPolicy", "BrokerConfig", "RftpDoor", "TransferBroker"]


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant scheduling contract."""

    #: Fair-share weight: a weight-3 tenant gets 3× the dispatch slots of
    #: a weight-1 tenant while both have work queued.
    weight: float = 1.0
    #: Concurrent transfers this tenant may hold (admission: queue).
    max_inflight: int = 8
    #: Queued (not yet dispatched) files beyond which a new submission is
    #: rejected whole (admission: reject).
    max_queued: int = 100_000

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_queued < 0:
            raise ValueError("max_queued must be >= 0")


@dataclass(frozen=True)
class BrokerConfig:
    """Broker-wide knobs."""

    #: Global concurrent-session ceiling (the worker pool size).
    max_active: int = 8
    #: Transfer attempts per file (first try included) before FAILED.
    max_attempts: int = 4
    #: Wait before re-queuing a file whose attempt failed.
    retry_backoff: float = 0.5
    #: Wait before re-queuing a file that found no admissible door.
    blocked_retry: float = 0.25
    #: Consecutive failures that trip a door's breaker OPEN.
    breaker_failures: int = 2
    #: Door-breaker quarantine, seconds.
    breaker_cooldown: float = 2.0

    def __post_init__(self) -> None:
        if self.max_active < 1:
            raise ValueError("max_active must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.retry_backoff < 0 or self.blocked_retry <= 0:
            raise ValueError("retry timings must be positive")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.breaker_cooldown <= 0:
            raise ValueError("breaker_cooldown must be positive")


class RftpDoor:
    """One alternative destination: a named, pre-opened connection set.

    Wraps a client middleware plus the :class:`SourceLink` it opened to
    one server endpoint.  The broker treats doors as the units of
    ``orderly`` failover — a file's ``sources`` list names them in
    preference order.
    """

    def __init__(
        self,
        name: str,
        middleware: Any,
        remote_dev: Any,
        port: int,
        data_source: Any,
        max_sessions: int = 4,
        tcp_factory: Any = None,
        fault_injector: Any = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.name = name
        self.middleware = middleware
        self.remote_dev = remote_dev
        self.port = port
        self.data_source = data_source
        self.max_sessions = max_sessions
        self.tcp_factory = tcp_factory
        self.fault_injector = fault_injector
        self.link = None
        self.active = 0
        #: Broker-level breaker over whole-transfer outcomes on this
        #: door (distinct from the link's per-QP channel breakers).
        self.breaker: Optional[ChannelBreaker] = None

    def open(self):
        """Process event resolving to the door's link (idempotent)."""
        mw = self.middleware

        def _open():
            if self.link is None:
                self.link = yield mw.open_link(
                    self.remote_dev,
                    self.port,
                    fault_injector=self.fault_injector,
                    tcp_factory=self.tcp_factory,
                )
            return self.link

        return mw.engine.process(_open())

    def channels_quarantined(self, now: float) -> bool:
        """True when every live data channel's breaker is OPEN — the
        scheduler-level signal to prefer another door right now."""
        if self.link is None:
            return False
        breakers = [
            self.link._breakers.get(qp.qp_num) for qp in self.link.data.qps
        ]
        if not breakers:
            return True  # no live channel at all
        return all(
            b is not None
            and b.state is BreakerState.OPEN
            and now < b.open_until
            for b in breakers
        )

    def admissible(self, now: float) -> bool:
        if self.link is None or self.active >= self.max_sessions:
            return False
        if self.breaker is not None and not self.breaker.peek_admit(now):
            return False
        return not self.channels_quarantined(now)

    def transfer(self, task: FileTask):
        """Process event for one file transfer through this door."""
        assert self.link is not None, "door not opened"
        return self.middleware.transfer(
            self.remote_dev,
            self.port,
            self.data_source,
            task.size,
            link=self.link,
            reuse_negotiation=True,
        )


@dataclass
class _TenantState:
    policy: TenantPolicy
    #: Stride-scheduling accumulated pass; lowest runnable goes next.
    pass_value: float = 0.0
    #: Min-heap of (-priority, fifo_seq, task).
    queue: List[Tuple[int, int, FileTask]] = field(default_factory=list)
    inflight: int = 0
    #: Files currently waiting in a retry/blocked backoff timer.
    parked: int = 0

    @property
    def queued(self) -> int:
        return len(self.queue)


class TransferBroker:
    """Accepts jobs, schedules their files across the doors."""

    def __init__(
        self,
        engine: Any,
        doors: Sequence[RftpDoor],
        config: Optional[BrokerConfig] = None,
        tenants: Optional[Dict[str, TenantPolicy]] = None,
    ) -> None:
        if not doors:
            raise ValueError("broker needs at least one door")
        names = [d.name for d in doors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate door names: {names}")
        self.engine = engine
        self.config = config or BrokerConfig()
        self.doors: Dict[str, RftpDoor] = {d.name: d for d in doors}
        for door in doors:
            door.breaker = ChannelBreaker(
                0,
                self.config.breaker_failures,
                lambda: self.config.breaker_cooldown,
            )
        self._tenants: Dict[str, _TenantState] = {}
        for name, policy in (tenants or {}).items():
            self._tenants[name] = _TenantState(policy=policy)
        self.jobs: List[Job] = []
        self._fifo = itertools.count()
        self._job_ids = itertools.count(1)
        #: Destination path -> live (non-terminal) primary task, for dedupe.
        self._dest_owner: Dict[str, FileTask] = {}
        self._active = 0
        self._outstanding = 0  #: non-terminal primary tasks
        self._loop_running = False
        self._wake: Optional[Event] = None

        reg = engine.metrics
        self._m_jobs_submitted = reg.counter("sched.jobs_submitted")
        self._m_jobs_rejected = reg.counter("sched.jobs_rejected")
        self._m_dedup_hits = reg.counter("sched.dedup_hits")
        self._m_blocked = reg.counter("sched.dispatch_blocked")
        self._per_tenant_metrics: Dict[str, dict] = {}
        reg.gauge_fn("sched.active_transfers", lambda: self._active)
        reg.gauge_fn("sched.outstanding_files", lambda: self._outstanding)

    # -- per-tenant plumbing -----------------------------------------------------
    def _tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(policy=TenantPolicy())
            self._tenants[name] = state
        return state

    def _metrics(self, tenant: str) -> dict:
        m = self._per_tenant_metrics.get(tenant)
        if m is None:
            reg = self.engine.metrics
            state = self._tenant(tenant)
            m = {
                "files_finished": reg.counter("sched.files_finished", tenant=tenant),
                "files_failed": reg.counter("sched.files_failed", tenant=tenant),
                "files_canceled": reg.counter("sched.files_canceled", tenant=tenant),
                "retries": reg.counter("sched.retries", tenant=tenant),
                "bytes_finished": reg.counter("sched.bytes_finished", tenant=tenant),
                "queue_wait": reg.histogram("sched.queue_wait_seconds", tenant=tenant),
                "latency": reg.histogram("sched.file_latency_seconds", tenant=tenant),
            }
            reg.gauge_fn(
                "sched.inflight", lambda s=state: s.inflight, tenant=tenant
            )
            reg.gauge_fn(
                "sched.queued", lambda s=state: s.queued, tenant=tenant
            )
            self._per_tenant_metrics[tenant] = m
        return m

    # -- submission --------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        files: Sequence[TransferSpec],
        priority: int = 0,
        job_id: Optional[str] = None,
    ) -> Job:
        """Accept (or reject) one bulk submission.  Returns the job with
        its ``done`` event wired; a rejected job comes back already
        CANCELED with the event triggered."""
        if not files:
            raise ValueError("a job needs at least one file")
        if job_id is None:
            job_id = f"job-{next(self._job_ids)}"
        job = Job.build(job_id, tenant, files, priority)
        now = self.engine.now
        job.submitted_at = now
        job.done = Event(self.engine)
        self.jobs.append(job)
        self._m_jobs_submitted.add()
        metrics = self._metrics(tenant)
        state = self._tenant(tenant)

        primaries = [
            t for t in job.files
            if self._dest_owner.get(t.path) is None
            or self._dest_owner[t.path].state.terminal
        ]
        backlog = state.queued + state.parked
        if backlog + len(primaries) > state.policy.max_queued:
            # Admission control: reject the submission whole rather than
            # accept a prefix the tenant cannot distinguish.
            self._m_jobs_rejected.add()
            metrics["files_canceled"].add(len(job.files))
            job.state = JobState.CANCELED
            for task in job.files:
                task.state = FileState.CANCELED
                task.submitted_at = now
                task.finished_at = now
                task.error = (
                    f"tenant {tenant!r} queue full "
                    f"({backlog}+{len(primaries)} > {state.policy.max_queued})"
                )
            job.finished_at = now
            job.done.succeed(job)
            self.engine.trace(
                "sched", "job_rejected", job=job_id, tenant=tenant,
                files=len(job.files),
            )
            return job

        for task in job.files:
            task.submitted_at = now
            owner = self._dest_owner.get(task.path)
            if owner is not None and not owner.state.terminal:
                # Duplicate submission for an in-flight destination: ride
                # along on the primary instead of transferring twice.
                task.duplicate_of = owner
                owner.duplicates.append(task)
                self._m_dedup_hits.add()
                continue
            self._dest_owner[task.path] = task
            self._outstanding += 1
            heapq.heappush(
                state.queue, (-job.priority, next(self._fifo), task)
            )
        job._note_progress()  # all-duplicate jobs may already be terminal
        self.engine.trace(
            "sched", "job_submitted", job=job_id, tenant=tenant,
            files=len(job.files), priority=job.priority,
        )
        self._kick()
        return job

    # -- dispatch ----------------------------------------------------------------
    def _kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed(None)
        if not self._loop_running and self._outstanding > 0:
            self._loop_running = True
            self.engine.process(self._dispatch_loop())

    def _runnable_tenant(self) -> Optional[str]:
        """The stride pick: lowest pass among tenants with queued work
        and spare in-flight capacity (name breaks ties, deterministic)."""
        best: Optional[str] = None
        for name in sorted(self._tenants):
            state = self._tenants[name]
            if not state.queue or state.inflight >= state.policy.max_inflight:
                continue
            if best is None or state.pass_value < self._tenants[best].pass_value:
                best = name
        return best

    def _pick_door(self, task: FileTask) -> Optional[RftpDoor]:
        """First admissible door from the task's alternatives, walking
        ``orderly`` from the failure cursor."""
        names = task.spec.sources or tuple(self.doors)
        now = self.engine.now
        n = len(names)
        for i in range(n):
            name = names[(task.alt_cursor + i) % n]
            door = self.doors.get(name)
            if door is not None and door.admissible(now):
                if i:
                    task.alt_cursor = (task.alt_cursor + i) % n
                return door
        return None

    def _dispatch_loop(self):
        while self._outstanding > 0:
            while self._active < self.config.max_active:
                tenant_name = self._runnable_tenant()
                if tenant_name is None:
                    break
                state = self._tenants[tenant_name]
                _neg_prio, _seq, task = heapq.heappop(state.queue)
                door = self._pick_door(task)
                if door is None:
                    # Every alternative is quarantined or saturated: park
                    # the file and retry shortly, without burning a slot
                    # or charging the tenant's stride pass.
                    self._m_blocked.add()
                    state.parked += 1
                    self.engine.process(self._requeue_later(
                        task, self.config.blocked_retry, parked=state
                    ))
                    continue
                state.pass_value += 1.0 / state.policy.weight
                state.inflight += 1
                self._active += 1
                door.active += 1
                task.state = FileState.READY
                self.engine.process(self._run_task(task, state, door))
            self._wake = Event(self.engine)
            if self._outstanding == 0:
                break
            yield self._wake
        self._loop_running = False

    def _requeue_later(self, task: FileTask, delay: float, parked=None):
        yield self.engine.timeout(delay)
        if parked is not None:
            parked.parked -= 1
        if task.state.terminal:
            return
        task.state = FileState.SUBMITTED
        state = self._tenant(task.job.tenant)
        heapq.heappush(
            state.queue, (-task.job.priority, next(self._fifo), task)
        )
        self._kick()

    def _run_task(self, task: FileTask, state: _TenantState, door: RftpDoor):
        metrics = self._metrics(task.job.tenant)
        now = self.engine.now
        if task.started_at is None:
            task.started_at = now
            metrics["queue_wait"].observe(now - task.submitted_at)
        task.state = FileState.ACTIVE
        task.job._note_progress()
        task.attempts += 1
        if task.attempts > 1:
            metrics["retries"].add()
        error: Optional[TransferError] = None
        try:
            yield door.transfer(task)
        except TransferError as exc:
            error = exc
        now = self.engine.now
        state.inflight -= 1
        self._active -= 1
        door.active -= 1
        if error is None:
            door.breaker.record_success()
            self._outstanding -= 1
            metrics["files_finished"].add()
            metrics["bytes_finished"].add(task.size)
            metrics["latency"].observe(now - task.submitted_at)
            task.resolve(FileState.FINISHED, now, source_used=door.name)
            self._finish_job(task.job)
            for dup in task.duplicates:
                self._finish_job(dup.job)
            self.engine.trace(
                "sched", "file_finished", job=task.job.job_id,
                path=task.path, door=door.name, attempts=task.attempts,
            )
        else:
            door.breaker.record_failure(now)
            task.alt_cursor += 1  # orderly: next alternative first
            self.engine.trace(
                "sched", "file_attempt_failed", job=task.job.job_id,
                path=task.path, door=door.name, attempts=task.attempts,
                error=type(error).__name__,
            )
            if task.attempts >= self.config.max_attempts:
                self._outstanding -= 1
                metrics["files_failed"].add()
                task.resolve(
                    FileState.FAILED, now,
                    error=f"{type(error).__name__}: {error}",
                )
                self._finish_job(task.job)
                for dup in task.duplicates:
                    self._finish_job(dup.job)
            else:
                state.parked += 1
                self.engine.process(self._requeue_later(
                    task, self.config.retry_backoff, parked=state
                ))
        self._kick()

    def _finish_job(self, job: Job) -> None:
        if job.state.terminal and job.finished_at is None:
            job.finished_at = self.engine.now
            self.engine.trace(
                "sched", "job_done", job=job.job_id, state=job.state.value
            )
