"""JSONL job reports.

One header line, one line per job, one line per file, one summary line —
sorted keys, no wall-clock timestamps, no raw session ids — so the same
seed produces a byte-identical report (the determinism contract
``repro sched`` and the replay test both gate on).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.sched.jobs import Job

__all__ = ["report_lines", "stable_report_lines", "write_report", "summarize"]

SCHEMA = "repro.sched.report/3"


def _round(x: float) -> float:
    return round(float(x), 9)


def summarize(jobs: Iterable[Job], engine: Any) -> Dict[str, Any]:
    """Per-tenant goodput/state rollup plus the determinism anchors."""
    tenants: Dict[str, Dict[str, Any]] = {}
    for job in jobs:
        t = tenants.setdefault(job.tenant, {
            "jobs": 0, "files": 0, "finished": 0, "failed": 0,
            "canceled": 0, "retries": 0, "bytes_finished": 0,
            "shed_jobs": 0, "shed_files": 0,
            "last_finish": 0.0,
        })
        t["jobs"] += 1
        t["files"] += len(job.files)
        t["retries"] += job.retries
        if job.shed:
            t["shed_jobs"] += 1
            t["shed_files"] += len(job.files)
        for task in job.files:
            if task.state.value == "FINISHED":
                t["finished"] += 1
                t["bytes_finished"] += task.size
                if task.finished_at is not None:
                    t["last_finish"] = max(t["last_finish"], task.finished_at)
            elif task.state.value == "FAILED":
                t["failed"] += 1
            elif task.state.value == "CANCELED":
                t["canceled"] += 1
    for t in tenants.values():
        span = t.pop("last_finish")
        t["goodput_gbps"] = _round(
            t["bytes_finished"] * 8.0 / span / 1e9 if span > 0 else 0.0
        )
    return {
        "kind": "summary",
        "tenants": {k: tenants[k] for k in sorted(tenants)},
        "sim_time": _round(engine.now),
        "events": engine.events_processed,
    }


def report_lines(jobs: List[Job], engine: Any, header: Dict[str, Any]) -> List[str]:
    """Render the full report (header, jobs, files, summary)."""
    records: List[Dict[str, Any]] = []
    records.append({"kind": "header", "schema": SCHEMA, **header})
    for job in jobs:
        records.append({
            "kind": "job",
            "job_id": job.job_id,
            "tenant": job.tenant,
            "priority": job.priority,
            "state": job.state.value,
            "files": len(job.files),
            "retries": job.retries,
            "shed": job.shed,
            "shed_reason": job.shed_reason,
            "retry_after": (
                _round(job.retry_after) if job.retry_after is not None
                else None
            ),
            "submitted_at": _round(job.submitted_at),
            "finished_at": (
                _round(job.finished_at) if job.finished_at is not None else None
            ),
        })
        for task in job.files:
            records.append({
                "kind": "file",
                "job_id": job.job_id,
                "index": task.index,
                "path": task.path,
                "size": task.size,
                "state": task.state.value,
                "attempts": task.attempts,
                "source_used": task.source_used,
                "duplicate": task.duplicate_of is not None,
                "recovered": task.recovered,
                "resumed_from": task.resumed_from,
                "error": task.error,
                "queue_wait": (
                    _round(task.started_at - task.submitted_at)
                    if task.started_at is not None else None
                ),
                "finished_at": (
                    _round(task.finished_at)
                    if task.finished_at is not None else None
                ),
            })
    records.append(summarize(jobs, engine))
    return [json.dumps(r, sort_keys=True) for r in records]


def stable_report_lines(jobs: List[Job]) -> List[str]:
    """Outcome-only report: what a run *achieved*, with every field that
    legitimately shifts under crash/recovery timing stripped.

    A run crashed at any journaled point and recovered must produce
    byte-identical stable lines to the uncrashed run (modulo the
    ``recovered`` flag): the same jobs reach the same terminal states,
    the same files land from the same submissions, nothing is lost and
    nothing transfers twice.  Timing fields (queue waits, finish times),
    attempt counts, and door choices are excluded — a crash changes
    *when* and *through which door*, never *whether*.
    """
    records: List[Dict[str, Any]] = []
    for job in jobs:
        records.append({
            "kind": "job",
            "job_id": job.job_id,
            "tenant": job.tenant,
            "priority": job.priority,
            "state": job.state.value,
            "files": len(job.files),
            "shed": job.shed,
        })
        for task in job.files:
            records.append({
                "kind": "file",
                "job_id": job.job_id,
                "index": task.index,
                "path": task.path,
                "size": task.size,
                "state": task.state.value,
                "duplicate": task.duplicate_of is not None,
            })
    totals = {"jobs": 0, "files": 0, "finished": 0, "failed": 0,
              "canceled": 0, "bytes_finished": 0}
    for job in jobs:
        totals["jobs"] += 1
        totals["files"] += len(job.files)
        for task in job.files:
            if task.state.value == "FINISHED":
                totals["finished"] += 1
                totals["bytes_finished"] += task.size
            elif task.state.value == "FAILED":
                totals["failed"] += 1
            elif task.state.value == "CANCELED":
                totals["canceled"] += 1
    records.append({"kind": "summary", **totals})
    return [json.dumps(r, sort_keys=True) for r in records]


def write_report(path: str, jobs: List[Job], engine: Any,
                 header: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        for line in report_lines(jobs, engine, header):
            fh.write(line + "\n")
