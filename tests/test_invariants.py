"""Cross-cutting invariants, hypothesis-driven."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.credits import CreditGranter
from repro.core.blocks import SinkBlockState
from repro.core.pool import BlockPool
from repro.network import Link, Path
from repro.sim import Engine
from tests.conftest import make_fabric


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=10_000_000), min_size=1, max_size=20
    ),
    rates=st.lists(
        st.floats(min_value=1.0, max_value=100.0), min_size=1, max_size=3
    ),
)
def test_path_never_beats_bottleneck(sizes, rates):
    """Physics: N transfers through a path finish no sooner than the
    bottleneck link needs to serialise all their bytes."""
    engine = Engine()
    links = [Link(engine, gbps) for gbps in rates]
    path = Path(engine, links)

    def send(env, nbytes):
        yield from path.transmit(nbytes)

    for nbytes in sizes:
        engine.process(send(engine, nbytes))
    engine.run()
    min_time = sum(sizes) / path.bottleneck_bytes_per_second
    assert engine.now >= min_time * (1 - 1e-9)


@settings(max_examples=30, deadline=None)
@given(
    pool_size=st.integers(min_value=2, max_value=24),
    ratio=st.integers(min_value=1, max_value=4),
    events=st.lists(
        st.sampled_from(["initial", "done", "request", "freed"]),
        min_size=1,
        max_size=60,
    ),
)
def test_granter_conserves_blocks(pool_size, ratio, events):
    """Under any event sequence: every block is FREE or WAITING, the
    outstanding-credit count equals the advertised-block count, and the
    granter never over-issues."""
    f = make_fabric()
    pd = f.dev_b.alloc_pd()
    pool = BlockPool.build_sink(f.b, pd, pool_size, 4096)
    granter = CreditGranter(pool, grant_ratio=ratio, proactive=True)
    outstanding = []  # credits the "source" currently holds

    for event in events:
        if event == "initial":
            outstanding += granter.initial_grant(2)
        elif event == "done":
            if outstanding:
                # Source consumed a credit: land a block, make it READY,
                # then immediately consume + free it (fast sink).
                credit = outstanding.pop(0)
                block = pool.by_id(credit.block_id)
                from repro.core.messages import BlockHeader

                block.finish(BlockHeader(1, 0, 0, 64), None)
                block.consume()
                pool.put_free_blk(block)
                outstanding += granter.on_block_done()
                outstanding += granter.on_block_freed()
        elif event == "request":
            outstanding += granter.on_request()
        elif event == "freed":
            outstanding += granter.on_block_freed()

        states = [b.state for b in pool.blocks.values()]
        assert all(
            s in (SinkBlockState.FREE, SinkBlockState.WAITING) for s in states
        )
        advertised = sum(1 for s in states if s is SinkBlockState.WAITING)
        assert advertised == len(outstanding)
        assert advertised + pool.free_count == pool_size
        # No credit ever duplicated.
        ids = [c.block_id for c in outstanding]
        assert len(ids) == len(set(ids))


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    block=st.sampled_from([4096, 65536, 1 << 20]),
)
def test_qp_completion_count_matches_posts(n, block):
    """Every signalled WRITE yields exactly one completion, in order."""
    f = make_fabric()
    qa, _ = f.qp_pair(max_send_wr=64)
    _, buf, mr = f.remote_mr(size=2 << 20)
    from repro.verbs import Opcode, SendWR

    def pump(env):
        for i in range(n):
            while qa.send_room == 0:
                yield env.timeout(1e-6)
            qa.post_send(
                SendWR(
                    opcode=Opcode.RDMA_WRITE,
                    length=block,
                    wr_id=i,
                    remote_addr=buf.addr,
                    rkey=mr.rkey,
                )
            )
        while qa.send_outstanding:
            yield env.timeout(1e-6)

    f.engine.process(pump(f.engine))
    f.engine.run()
    wcs = qa.send_cq.poll_nocost(max_entries=n + 10)
    assert [wc.wr_id for wc in wcs] == list(range(n))
    assert all(wc.ok for wc in wcs)
    assert qa.send_outstanding == 0


@settings(max_examples=20, deadline=None)
@given(
    chunks=st.lists(
        st.integers(min_value=1, max_value=1 << 20), min_size=1, max_size=15
    )
)
def test_pipe_tcp_delivers_exact_byte_counts(chunks):
    """Pipe-mode TCP: any send pattern is received byte-exact."""
    from repro.network import back_to_back
    from repro.tcp import TcpConnection, TcpMode
    from tests.conftest import make_host

    engine = Engine()
    src = make_host(engine, "s", nic_gbps=10)
    dst = make_host(engine, "d", nic_gbps=10)
    duplex = back_to_back(engine, 10.0, rtt=1e-4)
    conn = TcpConnection(
        engine, src, dst, TcpMode.PIPE, path=duplex, sndbuf=4 << 20, rcvbuf=4 << 20
    )
    total = sum(chunks)

    def sender(env):
        thread = src.thread("s")
        for c in chunks:
            yield from conn.send(thread, c)

    def receiver(env):
        thread = dst.thread("r")
        yield from conn.recv(thread, total)
        return env.now

    engine.process(sender(engine))
    p = engine.process(receiver(engine))
    engine.run()
    assert p.ok
    assert conn.unread_bytes == pytest.approx(0.0, abs=1e-3)
    assert conn.bytes_delivered.total == pytest.approx(total, abs=1e-3)
