"""Data sources and sinks: costs and bookkeeping."""

import pytest

from repro.apps.io import (
    CollectingSink,
    DiskSink,
    DiskSource,
    NullSink,
    PatternSource,
    ZeroSource,
)
from tests.conftest import make_host


def _run(engine, gen):
    p = engine.process(gen)
    engine.run()
    assert p.ok
    return p.value


def test_zero_source_charges_memset(engine):
    host = make_host(engine)
    src = ZeroSource(host)
    thread = host.thread("loader")
    _run(engine, src.read(thread, 1 << 20, 0))
    expected = (
        host.spec.syscall_seconds + (1 << 20) * host.spec.memset_ns_per_byte * 1e-9
    )
    assert host.cpu.busy_seconds() == pytest.approx(expected)
    assert src.bytes_read == 1 << 20


def test_pattern_source_payload_identifies_block(engine):
    host = make_host(engine)
    src = PatternSource(host, tag="t")
    payload = _run(engine, src.read(host.thread("l"), 4096, 7))
    assert payload == ("t", 7, 4096)


def test_null_sink_per_op_cost_only(engine):
    host = make_host(engine)
    sink = NullSink(host)
    thread = host.thread("writer")
    _run(engine, sink.write(thread, 1 << 20))
    assert host.cpu.busy_seconds() == pytest.approx(host.spec.syscall_seconds)
    assert sink.bytes_written == 1 << 20


def test_collecting_sink_records(engine):
    host = make_host(engine)
    sink = CollectingSink(host)
    _run(engine, sink.write(host.thread("w"), 10, "hdr", "payload"))
    assert sink.deliveries == [("hdr", "payload")]


def test_disk_source_sink_roundtrip(engine):
    host = make_host(engine)
    host.add_disk()
    src = DiskSource(host, direct=True)
    sink = DiskSink(host, direct=True)
    payload = _run(engine, src.read(host.thread("r"), 8192, 3))
    assert payload == ("disk", 3, 8192)
    _run(engine, sink.write(host.thread("w"), 8192))
    assert host.disk.bytes_written.total == 8192
    assert host.disk.bytes_read.total == 8192


def test_disk_requires_disk(engine):
    host = make_host(engine)
    with pytest.raises(RuntimeError):
        DiskSink(host)
    with pytest.raises(RuntimeError):
        DiskSource(host)


def test_posix_sink_costs_more_cpu_than_direct(engine):
    host = make_host(engine)
    host.add_disk()
    direct = DiskSink(host, direct=True)
    _run(engine, direct.write(host.thread("w1"), 64 << 20))
    direct_cpu = host.cpu.busy_seconds()
    host.cpu.reset_accounting()
    posix = DiskSink(host, direct=False)
    _run(engine, posix.write(host.thread("w2"), 64 << 20))
    posix_cpu = host.cpu.busy_seconds()
    assert posix_cpu > direct_cpu * 5
