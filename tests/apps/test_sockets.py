"""Socket-over-RDMA middlewares: the Figure 1 / §II overhead ordering."""

import pytest

from repro.apps.rftp import run_rftp
from repro.apps.sockets import socket_transfer
from repro.core import ProtocolConfig
from repro.testbeds import roce_lan

TOTAL = 256 << 20


def test_mode_validation():
    with pytest.raises(ValueError):
        socket_transfer(roce_lan(), TOTAL, "magic")
    with pytest.raises(ValueError):
        socket_transfer(roce_lan(), 0, "sdp")


def test_ipoib_pays_full_tcp_costs():
    r = socket_transfer(roce_lan(), TOTAL, "ipoib")
    # App thread pinned; kernel work on top — and nowhere near 40G.
    assert r.gbps < 15.0
    assert r.client_cpu_pct > 100.0


def test_sdp_beats_ipoib_but_not_native():
    ipoib = socket_transfer(roce_lan(), TOTAL, "ipoib")
    sdp = socket_transfer(roce_lan(), TOTAL, "sdp")
    native = run_rftp(
        roce_lan(),
        TOTAL,
        ProtocolConfig(
            block_size=1 << 20, num_channels=4, source_blocks=16, sink_blocks=16
        ),
    )
    # Bandwidth ordering: native verbs > SDP > IPoIB  (§II, ref [15]).
    assert native.gbps > 2 * sdp.gbps
    assert sdp.gbps > ipoib.gbps
    # CPU ordering per host: IPoIB > SDP (kernel bypass) > native wins
    # overall by moving 4x the data for less CPU.
    assert ipoib.client_cpu_pct > sdp.client_cpu_pct
    assert ipoib.server_cpu_pct > sdp.server_cpu_pct


def test_sdp_has_no_kernel_per_byte_charge():
    tb = roce_lan()
    socket_transfer(tb, TOTAL, "sdp")
    assert tb.src.cpu.busy_seconds("kernel") == 0.0


def test_ipoib_charges_kernel_on_both_hosts():
    tb = roce_lan()
    socket_transfer(tb, TOTAL, "ipoib")
    assert tb.src.cpu.busy_seconds("kernel") > 0.0
    assert tb.dst.cpu.busy_seconds("kernel") > 0.0
