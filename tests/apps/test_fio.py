"""The fio-style RDMA I/O engine: the §III-B findings as assertions."""

import pytest

from repro.apps.fio import FioJob, FioResult, run_fio
from repro.testbeds import infiniband_lan, roce_lan


def job(**kw):
    base = dict(block_size=128 * 1024, iodepth=16, total_blocks=400)
    base.update(kw)
    return FioJob(**base)


def test_job_validation():
    with pytest.raises(ValueError):
        FioJob(semantics="atomic")
    with pytest.raises(ValueError):
        FioJob(iodepth=0)
    with pytest.raises(ValueError):
        FioJob(block_size=0)
    with pytest.raises(ValueError):
        FioJob(total_blocks=0)


def test_write_saturates_at_high_depth():
    r = run_fio(roce_lan(), job(semantics="write"))
    assert r.gbps > 0.9 * 40.0
    assert r.dst_cpu_pct == pytest.approx(0.0)  # one-sided


def test_low_iodepth_underutilises():
    """§III-B: 'I/O depth should be set to a relatively large number'."""
    deep = run_fio(roce_lan(), job(semantics="write", iodepth=16))
    shallow = run_fio(roce_lan(), job(semantics="write", iodepth=1, total_blocks=100))
    assert shallow.gbps < 0.5 * deep.gbps


def test_send_recv_costs_both_ends():
    """Figs 3/4: SEND/RECV CPU ≫ WRITE CPU; bandwidth comparable."""
    wr = run_fio(roce_lan(), job(semantics="write"))
    sr = run_fio(roce_lan(), job(semantics="send"))
    assert sr.gbps == pytest.approx(wr.gbps, rel=0.05)
    assert sr.dst_cpu_pct > 5 * max(wr.dst_cpu_pct, 0.1)
    assert sr.total_cpu_pct > 1.5 * wr.total_cpu_pct


def test_read_trails_write_at_small_blocks():
    wr = run_fio(roce_lan(), job(semantics="write", block_size=16 * 1024))
    rd = run_fio(roce_lan(), job(semantics="read", block_size=16 * 1024))
    assert wr.gbps > 1.5 * rd.gbps


def test_read_catches_up_at_large_blocks():
    wr = run_fio(roce_lan(), job(semantics="write", block_size=4 << 20, total_blocks=120))
    rd = run_fio(roce_lan(), job(semantics="read", block_size=4 << 20, total_blocks=120))
    assert rd.gbps > 0.9 * wr.gbps


def test_cpu_falls_as_block_size_rises():
    small = run_fio(roce_lan(), job(semantics="write", block_size=16 * 1024))
    large = run_fio(roce_lan(), job(semantics="write", block_size=1 << 20, total_blocks=150))
    assert large.src_cpu_pct < small.src_cpu_pct


def test_ib_cheaper_cpu_than_roce():
    """§V-C2: libibverbs overhead is lower on InfiniBand."""
    roce = run_fio(roce_lan(), job(semantics="write"))
    ib = run_fio(infiniband_lan(), job(semantics="write"))
    assert ib.src_cpu_pct < roce.src_cpu_pct


def test_ib_bandwidth_pcie_capped():
    r = run_fio(infiniband_lan(), job(semantics="write", block_size=1 << 20, total_blocks=200))
    assert 0.85 * 25.6 < r.gbps <= 25.6


def test_latency_percentiles_ordered():
    r = run_fio(roce_lan(), job(semantics="write"))
    assert r.lat_p50_us <= r.lat_p99_us
    assert r.lat_mean_us > 0
    assert isinstance(r, FioResult)
    assert r.bytes == r.job.total_blocks * r.job.block_size


def test_busy_poll_burns_cpu_for_latency():
    """Busy polling trades CPU for completion latency (§III-B trade-off)."""
    event_mode = run_fio(roce_lan(), job(semantics="write", iodepth=4, total_blocks=300))
    poll_mode = run_fio(
        roce_lan(),
        job(semantics="write", iodepth=4, total_blocks=300, busy_poll=True),
    )
    assert poll_mode.gbps == pytest.approx(event_mode.gbps, rel=0.1)
    assert poll_mode.src_cpu_pct > 2 * event_mode.src_cpu_pct
    assert poll_mode.lat_mean_us <= event_mode.lat_mean_us * 1.1
