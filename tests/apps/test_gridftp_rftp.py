"""GridFTP baseline and RFTP application behaviour."""

import pytest

from repro.apps.gridftp import GridFtpPair, run_gridftp
from repro.apps.io import CollectingSink, DiskSink, PatternSource
from repro.apps.rftp import RftpClient, RftpServer, run_rftp
from repro.core import ProtocolConfig
from repro.testbeds import ani_wan, roce_lan


def cfg(**over):
    base = dict(
        block_size=1 << 20,
        num_channels=2,
        source_blocks=8,
        sink_blocks=8,
    )
    base.update(over)
    return ProtocolConfig(**base)


# -- GridFTP -------------------------------------------------------------------------
def test_gridftp_lan_is_cpu_capped():
    """The strace finding: one app thread pins one core; goodput well
    below the 40G wire."""
    g = run_gridftp(roce_lan(), 1 << 30, streams=4, block_size=1 << 20)
    assert g.gbps < 20.0
    assert g.client_app_cpu_pct > 90.0  # the single thread is pinned
    assert g.client_app_cpu_pct <= 100.5
    assert g.client_cpu_pct > 100.0  # plus kernel work on other cores


def test_gridftp_lan_streams_do_not_help():
    """More TCP streams cannot fix a single-threaded CPU bottleneck."""
    one = run_gridftp(roce_lan(), 512 << 20, streams=1)
    eight = run_gridftp(roce_lan(), 512 << 20, streams=8)
    assert eight.gbps < one.gbps * 1.2


def test_gridftp_wan_single_stream_underutilises():
    g = run_gridftp(ani_wan(), 8 << 30, streams=1, block_size=4 << 20)
    assert g.gbps < 8.0


def test_gridftp_wan_parallel_streams_recover():
    """Averaged over seeds: the parallel aggregate rides out losses that
    a single cubic flow pays for in full."""
    ones, eights = [], []
    for seed in range(3):
        one = run_gridftp(ani_wan(seed=seed), 8 << 30, streams=1, block_size=4 << 20)
        eight = run_gridftp(
            ani_wan(seed=seed + 10), 8 << 30, streams=8, block_size=4 << 20
        )
        ones.append(one.gbps)
        eights.append(eight.gbps)
        assert eight.losses >= 1
    assert sum(eights) / 3 > (sum(ones) / 3) * 1.05


def test_gridftp_validation():
    with pytest.raises(ValueError):
        GridFtpPair(roce_lan(), streams=0)
    with pytest.raises(ValueError):
        GridFtpPair(roce_lan(), block_size=100)
    pair = GridFtpPair(roce_lan(), streams=1)
    with pytest.raises(ValueError):
        pair.start(0)


# -- RFTP ----------------------------------------------------------------------------
def test_rftp_saturates_roce_lan():
    r = run_rftp(roce_lan(), 512 << 20, cfg())
    assert r.gbps > 0.9 * 40.0


def test_rftp_beats_gridftp_everywhere():
    """The headline comparison of Figures 8-10."""
    rftp = run_rftp(roce_lan(), 512 << 20, cfg())
    grid = run_gridftp(roce_lan(), 512 << 20, streams=8)
    assert rftp.gbps > 2 * grid.gbps
    assert rftp.client_cpu_pct < grid.client_cpu_pct


def test_rftp_wan_near_line_rate():
    c = cfg(block_size=4 << 20, source_blocks=48, sink_blocks=48, num_channels=4)
    r = run_rftp(ani_wan(), 8 << 30, c)
    assert r.gbps > 9.0


def test_rftp_delivers_correct_data():
    tb = roce_lan()
    sink = CollectingSink(tb.dst)
    source = PatternSource(tb.src)
    r = run_rftp(tb, 64 << 20, cfg(), source=source, sink=sink)
    assert sink.bytes_written == 64 << 20
    assert [h.seq for h, _ in sink.deliveries] == list(range(r.outcome.blocks))


def test_rftp_memory_to_disk_matches_memory_to_memory():
    """Figure 11: direct-I/O disk writes keep up with /dev/null."""
    wan_cfg = cfg(
        block_size=4 << 20,
        source_blocks=48,
        sink_blocks=48,
        writer_threads=4,  # RFTP overlaps RAID lanes with several writers
    )
    mem = run_rftp(ani_wan(), 2 << 30, wan_cfg)
    tb = ani_wan()
    disk = run_rftp(
        tb,
        2 << 30,
        wan_cfg,
        sink=DiskSink(tb.dst, direct=True),
    )
    assert disk.gbps == pytest.approx(mem.gbps, rel=0.1)
    assert disk.server_cpu_pct >= mem.server_cpu_pct


def test_rftp_client_server_objects():
    tb = roce_lan()
    server = RftpServer(tb, cfg())
    server.start(2811)
    client = RftpClient(tb, cfg())
    done = client.put(8 << 20, 2811)
    tb.engine.run()
    assert done.ok
    assert done.value.bytes == 8 << 20


def test_rftp_larger_blocks_lower_cpu():
    small = run_rftp(roce_lan(), 256 << 20, cfg(block_size=256 * 1024))
    large = run_rftp(roce_lan(), 256 << 20, cfg(block_size=4 << 20))
    assert large.client_cpu_pct < small.client_cpu_pct


def test_rftp_put_many_sequential():
    tb = roce_lan()
    client_cfg = cfg()
    server = RftpServer(tb, client_cfg)
    server.start(2811)
    client = RftpClient(tb, client_cfg)
    done = client.put_many([4 << 20, 8 << 20, 2 << 20])
    tb.engine.run()
    assert done.ok
    outcomes = done.value
    assert [o.bytes for o in outcomes] == [4 << 20, 8 << 20, 2 << 20]
    assert len({o.session_id for o in outcomes}) == 3


def test_rftp_put_many_concurrent():
    tb = roce_lan()
    client_cfg = cfg()
    sink = CollectingSink(tb.dst)
    server = RftpServer(tb, client_cfg, sink=sink)
    server.start(2811)
    client = RftpClient(tb, client_cfg)
    done = client.put_many([8 << 20] * 3, concurrent=True)
    tb.engine.run()
    assert done.ok
    assert sink.bytes_written == 24 << 20
    # Each session delivered in order.
    for o in done.value:
        seqs = [h.seq for h, _ in sink.deliveries if h.session_id == o.session_id]
        assert seqs == list(range(o.blocks))


def test_rftp_put_many_validation():
    client = RftpClient(roce_lan(), cfg())
    import pytest as _pytest

    with _pytest.raises(ValueError):
        client.put_many([])
