"""Experiment drivers: fast units (renderers, selectors, Table I) and
synthetic-data shape checks.  The full figure runs live in benchmarks/.
"""

import pytest

from repro.experiments import (
    ablations,
    fig3_fig4_semantics,
    fig8_fig9_lan_ftp,
    fig10_wan_ftp,
    fig11_disk,
    table1_testbeds,
)


def test_table1_roundtrip():
    rows = table1_testbeds.run()
    table1_testbeds.check(rows)
    text = table1_testbeds.render(rows).render()
    assert "roce-lan" in text and "49" in text


def test_fig34_selector_raises_on_missing():
    with pytest.raises(KeyError):
        fig3_fig4_semantics._at([], "write", 4096, 1)


def _fig34_point(**over):
    base = dict(
        semantics="write", block_size=4096, iodepth=16,
        gbps=10.0, cpu_pct=50.0, lat_us=10.0,
    )
    base.update(over)
    return fig3_fig4_semantics.Point(**base)


def test_fig34_check_rejects_wrong_ordering():
    """check() must actually catch a world where READ beats WRITE."""
    pts = []
    for depth in (1, 16):
        for sem in fig3_fig4_semantics.SEMANTICS:
            for bs in fig3_fig4_semantics.BLOCK_SIZES:
                gbps = 39.0 if sem == "read" else 10.0  # inverted world
                pts.append(
                    _fig34_point(semantics=sem, block_size=bs, iodepth=depth, gbps=gbps)
                )
    with pytest.raises(AssertionError):
        fig3_fig4_semantics.check(pts, line_rate_gbps=40.0)


def test_fig89_selector():
    p = fig8_fig9_lan_ftp.Point("rftp", 1 << 20, 8, 39.0, 80.0, 2.0)
    assert fig8_fig9_lan_ftp._sel([p], "rftp", 1 << 20, 8) is p
    with pytest.raises(KeyError):
        fig8_fig9_lan_ftp._sel([p], "gridftp", 1 << 20, 8)


def test_fig89_check_rejects_gridftp_win():
    pts = []
    for streams in fig8_fig9_lan_ftp.STREAMS:
        for bs in fig8_fig9_lan_ftp.BLOCK_SIZES:
            pts.append(fig8_fig9_lan_ftp.Point("gridftp", bs, streams, 39.0, 120.0, 110.0))
            pts.append(fig8_fig9_lan_ftp.Point("rftp", bs, streams, 10.0, 80.0, 3.0))
    with pytest.raises(AssertionError):
        fig8_fig9_lan_ftp.check(pts, bare_metal_gbps=40.0)


def test_fig10_check_rejects_slow_rftp():
    pts = [
        fig10_wan_ftp.Point("gridftp", 1, 6.0, 90.0, 80.0, 5),
        fig10_wan_ftp.Point("rftp", 1, 5.0, 20.0, 1.0),
        fig10_wan_ftp.Point("gridftp", 8, 8.0, 100.0, 85.0, 30),
        fig10_wan_ftp.Point("rftp", 8, 9.5, 20.0, 1.0),
    ]
    with pytest.raises(AssertionError):
        fig10_wan_ftp.check(pts)


def test_fig10_check_accepts_paper_shape():
    pts = [
        fig10_wan_ftp.Point("gridftp", 1, 6.5, 90.0, 80.0, 15),
        fig10_wan_ftp.Point("rftp", 1, 9.6, 19.0, 0.5),
        fig10_wan_ftp.Point("gridftp", 8, 7.4, 100.0, 85.0, 90),
        fig10_wan_ftp.Point("rftp", 8, 9.6, 18.0, 0.5),
    ]
    fig10_wan_ftp.check(pts)
    assert "rftp" in fig10_wan_ftp.render(pts).render()


def test_fig11_check_rejects_slow_disk():
    pts = [
        fig11_disk.Point("memory", 9.3, 17.0, 0.5),
        fig11_disk.Point("disk-direct", 5.0, 15.0, 1.0),
        fig11_disk.Point("disk-posix", 9.0, 16.0, 25.0),
    ]
    with pytest.raises(AssertionError):
        fig11_disk.check(pts)


def test_ablation_render():
    rows = [ablations.Row("a", 1.0, "x=1"), ablations.Row("b", 2.0)]
    text = ablations.render_rows(rows, "t").render()
    assert "a" in text and "2.00" in text


def test_iodepth_check_rejects_nonmonotone():
    rows = [
        ablations.Row("iodepth=1", 30.0),
        ablations.Row("iodepth=2", 10.0),
        ablations.Row("iodepth=64", 39.9),
    ]
    with pytest.raises(AssertionError):
        ablations.check_iodepth_sweep(rows)


def test_credit_ablation_check_parses_details():
    rows = [
        ablations.Row("proactive, grant x2 (paper)", 9.3, "mr_requests=300"),
        ablations.Row("proactive, grant x1 (linear ramp)", 8.7, "mr_requests=250"),
        ablations.Row("on-demand (Tian et al. style)", 1.0, "mr_requests=512"),
    ]
    ablations.check_credit_ablation(rows)
    rows[2] = ablations.Row("on-demand (Tian et al. style)", 9.4, "mr_requests=512")
    with pytest.raises(AssertionError):
        ablations.check_credit_ablation(rows)


def test_recovery_ablation_check():
    rows = [
        ablations.Row("write fault rate 0%", 4.2, "resends=0 faults=0"),
        ablations.Row("write fault rate 2%", 3.9, "resends=3 faults=3"),
        ablations.Row("write fault rate 10%", 3.4, "resends=11 faults=11"),
    ]
    ablations.check_recovery_ablation(rows)
    # A faulty run with zero re-sends means the injector never fired.
    rows[1] = ablations.Row("write fault rate 2%", 3.9, "resends=0 faults=0")
    with pytest.raises(AssertionError):
        ablations.check_recovery_ablation(rows)
    # Goodput collapse under faults fails the overhead bound.
    rows[1] = ablations.Row("write fault rate 2%", 3.9, "resends=3 faults=3")
    rows[2] = ablations.Row("write fault rate 10%", 0.4, "resends=11 faults=11")
    with pytest.raises(AssertionError):
        ablations.check_recovery_ablation(rows)
