"""Boundary behaviour of the numpy-free percentile helper."""

from __future__ import annotations

import math

import pytest

from repro.obs.stats import exact_percentile, mean


def test_q0_is_the_minimum_and_q100_the_maximum():
    values = [5.0, 1.0, 9.0, 3.0]
    assert exact_percentile(values, 0) == 1.0
    assert exact_percentile(values, 100) == 9.0


def test_q100_with_single_element():
    assert exact_percentile([7.5], 100) == 7.5
    assert exact_percentile([7.5], 0) == 7.5
    assert exact_percentile([7.5], 37.2) == 7.5


def test_interior_percentile_interpolates_linearly():
    assert exact_percentile([0.0, 10.0], 50) == 5.0
    assert exact_percentile([0.0, 1.0, 2.0, 3.0], 25) == 0.75


@pytest.mark.parametrize("q", [-0.001, -5, 100.001, 990, float("nan")])
def test_out_of_range_q_raises(q):
    with pytest.raises(ValueError, match=r"\[0, 100\]"):
        exact_percentile([1.0, 2.0, 3.0], q)


def test_empty_sequence_is_nan_not_an_error():
    assert math.isnan(exact_percentile([], 50))
    assert math.isnan(mean([]))
