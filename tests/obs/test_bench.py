"""Benchmark harness + regression gate.

The full quick suite runs once here (it is the acceptance criterion for
``python -m repro bench --quick``); the comparison tests then work on
synthetic documents so they stay fast.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs.bench import (
    BENCH_CASES,
    bench_filename,
    run_bench,
    validate_bench,
    write_bench,
)
from repro.obs.compare import compare_bench, compare_files


def _doc(**overrides):
    base = {
        "schema": 1,
        "kind": "repro-bench",
        "date": "2026-08-05",
        "mode": "quick",
        "results": {
            "case_a": {
                "gbps": 10.0, "p50_us": 100.0, "p99_us": 200.0,
                "events_per_sec": 1e5, "sim_time": 1.0, "events": 1000,
            },
            "case_b": {
                "gbps": 2.0, "p50_us": None, "p99_us": None,
                "events_per_sec": 5e4, "sim_time": 2.0, "events": 500,
            },
        },
    }
    base.update(overrides)
    return base


def test_quick_suite_produces_schema_valid_document(tmp_path):
    doc = run_bench("quick", date="2026-08-05")
    validate_bench(doc)
    assert set(doc["results"]) == {c.name for c in BENCH_CASES}
    for name, result in doc["results"].items():
        if name == "sim_kernel":
            # Kernel microbenchmark: no data plane, so no throughput.
            assert result["gbps"] is None
        else:
            assert result["gbps"] is not None and result["gbps"] > 0, name
        assert result["events"] > 0 and result["sim_time"] > 0, name
        assert result["events_per_sec"] > 0, name
    # GridFTP reports no per-block latency — null, never NaN.
    assert doc["results"]["gridftp_ani_wan"]["p50_us"] is None
    assert doc["results"]["rftp_roce_lan"]["p99_us"] > 0
    path = tmp_path / bench_filename(doc["date"])
    write_bench(doc, str(path))
    reloaded = json.loads(path.read_text())
    validate_bench(reloaded)
    assert reloaded["date"] == "2026-08-05"


def test_single_case_selection_and_unknown_case():
    doc = run_bench("quick", only=["fio_write_roce"], date="2026-08-05")
    assert list(doc["results"]) == ["fio_write_roce"]
    with pytest.raises(ValueError, match="unknown bench case"):
        run_bench("quick", only=["nope"], date="2026-08-05")
    with pytest.raises(ValueError, match="mode"):
        run_bench("warp", date="2026-08-05")


def test_validate_rejects_malformed_documents():
    with pytest.raises(ValueError):
        validate_bench(_doc(kind="other"))
    with pytest.raises(ValueError):
        validate_bench(_doc(schema=99))
    with pytest.raises(ValueError):
        validate_bench(_doc(results={}))
    bad = _doc()
    del bad["results"]["case_a"]["gbps"]
    with pytest.raises(ValueError, match="missing key"):
        validate_bench(bad)
    bad = _doc()
    bad["results"]["case_a"]["p50_us"] = float("nan")
    with pytest.raises(ValueError, match="NaN"):
        validate_bench(bad)
    bad = _doc()
    del bad["date"]
    with pytest.raises(ValueError, match="date"):
        validate_bench(bad)


def test_identical_documents_pass_the_gate():
    doc = _doc()
    cmp = compare_bench(doc, doc)
    assert cmp.ok
    assert not cmp.regressions
    assert "OK" in cmp.report()


def test_twenty_percent_gbps_regression_fails():
    base, cur = _doc(), _doc()
    cur["results"]["case_a"]["gbps"] *= 0.8
    cmp = compare_bench(base, cur, tolerance=0.10)
    assert not cmp.ok
    assert [(d.case, d.metric) for d in cmp.regressions] == [("case_a", "gbps")]
    assert "REGRESSION" in cmp.report()


def test_latency_gate_is_higher_is_worse():
    base, cur = _doc(), _doc()
    cur["results"]["case_a"]["p99_us"] *= 1.25
    assert not compare_bench(base, cur).ok
    # Latency *improvement* of any size is fine.
    cur = _doc()
    cur["results"]["case_a"]["p99_us"] *= 0.5
    assert compare_bench(base, cur).ok


def test_within_tolerance_changes_pass():
    base, cur = _doc(), _doc()
    cur["results"]["case_a"]["gbps"] *= 0.95
    cur["results"]["case_a"]["p50_us"] *= 1.05
    assert compare_bench(base, cur, tolerance=0.10).ok


def test_events_per_sec_is_informational_only():
    base, cur = _doc(), _doc()
    cur["results"]["case_a"]["events_per_sec"] *= 0.1  # wall-clock noise
    assert compare_bench(base, cur).ok


def test_missing_case_is_a_regression_and_new_case_is_not():
    base, cur = _doc(), _doc()
    del cur["results"]["case_b"]
    cur["results"]["case_c"] = copy.deepcopy(base["results"]["case_a"])
    cmp = compare_bench(base, cur)
    assert cmp.missing_cases == ["case_b"]
    assert cmp.new_cases == ["case_c"]
    assert not cmp.ok


def test_case_filter_limits_the_gate_to_named_cases():
    base, cur = _doc(), _doc()
    # case_b missing AND case_a regressed — but the filter only sees case_a.
    del cur["results"]["case_b"]
    cur["results"]["case_a"]["gbps"] *= 0.5
    cmp = compare_bench(base, cur, cases=["case_a"])
    assert cmp.missing_cases == []
    assert [(d.case, d.metric) for d in cmp.regressions] == [("case_a", "gbps")]
    # Filtering to the intact case passes despite the other regression.
    cur = _doc()
    cur["results"]["case_a"]["gbps"] *= 0.5
    assert compare_bench(base, cur, cases=["case_b"]).ok
    with pytest.raises(ValueError, match="unknown baseline case"):
        compare_bench(base, cur, cases=["nope"])


def test_zero_baseline_latency_rise_is_gated_not_masked():
    # A better-lower metric springing from 0 has no finite ratio, but it
    # is a real regression — the old ``ratio is None -> pass`` masked it.
    base, cur = _doc(), _doc()
    base["results"]["case_a"]["p99_us"] = 0.0
    cmp = compare_bench(base, cur)
    assert not cmp.ok
    regressed = [(d.case, d.metric) for d in cmp.regressions]
    assert ("case_a", "p99_us") in regressed
    delta = next(d for d in cmp.deltas if d.metric == "p99_us"
                 and d.case == "case_a")
    assert delta.ratio is None
    assert "from zero" in delta.describe()


def test_zero_baseline_gbps_rise_is_an_improvement():
    base, cur = _doc(), _doc()
    base["results"]["case_a"]["gbps"] = 0.0
    assert compare_bench(base, cur).ok


def test_zero_baseline_zero_current_is_no_change():
    base, cur = _doc(), _doc()
    base["results"]["case_a"]["p99_us"] = 0.0
    cur["results"]["case_a"]["p99_us"] = 0.0
    assert compare_bench(base, cur).ok


def test_none_metrics_are_skipped_not_regressions():
    base, cur = _doc(), _doc()
    cur["results"]["case_a"]["p50_us"] = None  # lost the measurement
    assert compare_bench(base, cur).ok


def test_compare_files_round_trip(tmp_path):
    base, cur = _doc(), _doc()
    cur["results"]["case_a"]["gbps"] *= 0.5
    bp, cp = tmp_path / "base.json", tmp_path / "cur.json"
    bp.write_text(json.dumps(base))
    cp.write_text(json.dumps(cur))
    cmp = compare_files(str(bp), str(cp))
    assert not cmp.ok


def test_committed_baseline_is_schema_valid():
    import pathlib

    baseline = (
        pathlib.Path(__file__).resolve().parents[2]
        / "benchmarks" / "BENCH_baseline.json"
    )
    doc = json.loads(baseline.read_text())
    validate_bench(doc)
    assert doc["mode"] == "quick"
    assert set(doc["results"]) == {c.name for c in BENCH_CASES}
