"""The sweep runner's contract: deterministic, shard-count-invariant output."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.sweep import (
    QUICK_SPEC,
    expand_points,
    point_key,
    run_sweep,
    validate_spec,
    write_jsonl,
)

#: Small enough to run in-process several times; two axes so the merge
#: order actually has something to sort.
TINY_SPEC = {
    "runner": "rftp",
    "testbed": "roce-lan",
    "base": {"bytes": "8M", "seed": 0},
    "axes": {"channels": [2, 1], "block_size": ["2M"]},
}


def _render(spec, records):
    buf = io.StringIO()
    write_jsonl(spec, records, buf)
    return buf.getvalue()


# -- spec validation ---------------------------------------------------------
def test_validate_rejects_bad_specs():
    with pytest.raises(ValueError, match="runner"):
        validate_spec({"runner": "nope", "axes": {"a": [1]}})
    with pytest.raises(ValueError, match="axes"):
        validate_spec({"runner": "rftp", "base": {"bytes": 1}, "axes": {}})
    with pytest.raises(ValueError, match="non-empty list"):
        validate_spec({"runner": "rftp", "base": {"bytes": 1},
                       "axes": {"channels": []}})
    with pytest.raises(ValueError, match="bytes"):
        validate_spec({"runner": "rftp", "axes": {"channels": [1]}})
    validate_spec(QUICK_SPEC)


def test_expand_points_is_deterministic_and_coerces_sizes():
    points = expand_points(TINY_SPEC)
    assert len(points) == 2
    # Size strings resolve to byte counts so the canonical key never
    # depends on spelling; axis values keep their spec order.
    assert all(p["bytes"] == 8 * 1024 * 1024 for p in points)
    assert all(p["block_size"] == 2 * 1024 * 1024 for p in points)
    assert [p["channels"] for p in points] == [2, 1]
    assert expand_points(TINY_SPEC) == points


def test_point_key_is_order_insensitive():
    assert point_key({"a": 1, "b": 2}) == point_key({"b": 2, "a": 1})


# -- determinism across worker counts ----------------------------------------
def test_sweep_output_identical_across_jobs_and_repeats():
    inline = _render(TINY_SPEC, run_sweep(TINY_SPEC, jobs=0))
    again = _render(TINY_SPEC, run_sweep(TINY_SPEC, jobs=1))
    sharded = _render(TINY_SPEC, run_sweep(TINY_SPEC, jobs=2))
    assert inline == again == sharded
    lines = inline.splitlines()
    header = json.loads(lines[0])
    assert header["kind"] == "repro-sweep"
    assert header["points"] == 2
    records = [json.loads(line) for line in lines[1:]]
    # Merge order is the canonical key order, not submission order.
    keys = [point_key(r["params"]) for r in records]
    assert keys == sorted(keys)
    for record in records:
        assert record["result"]["gbps"] > 0
        assert "wall" not in record["result"]


# -- CLI ---------------------------------------------------------------------
def test_cli_sweep_roundtrip(tmp_path):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(TINY_SPEC))
    out_a = tmp_path / "a.jsonl"
    out_b = tmp_path / "b.jsonl"
    assert main(["sweep", "--spec", str(spec_path), "--jobs", "2",
                 "--out", str(out_a)]) == 0
    assert main(["sweep", "--spec", str(spec_path),
                 "--out", str(out_b)]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()


def test_cli_sweep_requires_spec_or_quick(capsys):
    assert main(["sweep"]) == 2
    assert "need --spec or --quick" in capsys.readouterr().err
