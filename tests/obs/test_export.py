"""JSONL export + runtime collection, including the acceptance check
that a chaos run's registry snapshot covers the pool, credit, reassembly,
and per-QP channel counters."""

from __future__ import annotations

import json

import pytest

from repro.obs import runtime
from repro.obs.export import metrics_lines, trace_lines, write_metrics_jsonl, write_trace_jsonl
from repro.sim.engine import Engine
from repro.sim.trace import Tracer


@pytest.fixture(autouse=True)
def _clean_runtime():
    yield
    runtime.stop_collection()
    runtime.install_tracer_factory(None)


def test_collection_window_tracks_engines_in_order():
    before = Engine()
    runtime.start_collection()
    first, second = Engine(), Engine()
    runtime.stop_collection()
    after = Engine()
    assert before is not None and after is not None
    # stop_collection released the engines; a new window starts empty.
    assert runtime.collected_engines() == []
    runtime.start_collection()
    third = Engine()
    assert runtime.collected_engines() == [third]
    assert first is not second


def test_collection_holds_engines_after_caller_drops_them():
    # Sweep commands (ablations) discard each testbed as soon as its run
    # finishes; the exporter must still see every engine.
    runtime.start_collection()
    for _ in range(3):
        Engine()
    assert len(runtime.collected_engines()) == 3


def test_tracer_factory_attaches_to_new_engines():
    assert Engine().tracer is None
    runtime.install_tracer_factory(lambda: Tracer(categories={"qp"}))
    engine = Engine()
    assert isinstance(engine.tracer, Tracer)
    assert engine.tracer.categories == {"qp"}
    runtime.install_tracer_factory(None)
    assert Engine().tracer is None


def test_metrics_lines_round_trip(tmp_path):
    e1, e2 = Engine(), Engine()
    e1.metrics.counter("c", i=0).add(5)
    e2.metrics.gauge("g").set(1.5)
    lines = [json.loads(l) for l in metrics_lines([e1, e2])]
    headers = [r for r in lines if r["record"] == "engine"]
    metrics = [r for r in lines if r["record"] == "metric"]
    assert [h["run"] for h in headers] == [0, 1]
    assert headers[0]["metrics"] == 1
    assert metrics[0] == {
        "record": "metric", "run": 0, "metric": "c", "kind": "counter",
        "labels": {"i": 0}, "value": 5.0, "count": 1,
    }
    path = tmp_path / "m.jsonl"
    n = write_metrics_jsonl(str(path), [e1, e2])
    assert n == 4
    assert len(path.read_text().splitlines()) == 4


def test_trace_lines_skip_tracerless_and_coerce_fields(tmp_path):
    plain = Engine()
    traced = Engine()
    traced.tracer = Tracer()
    traced.trace("qp", "send", nbytes=4096, obj=object())
    lines = [json.loads(l) for l in trace_lines([plain, traced])]
    assert [r["record"] for r in lines] == ["tracer", "trace"]
    assert lines[0]["run"] == 1 and lines[0]["emitted"] == 1
    rec = lines[1]
    assert rec["category"] == "qp" and rec["fields"]["nbytes"] == 4096
    assert isinstance(rec["fields"]["obj"], str)
    path = tmp_path / "t.jsonl"
    assert write_trace_jsonl(str(path), [plain, traced]) == 2


def test_chaos_snapshot_covers_all_subsystems():
    from repro.faults import FaultPlan, run_chaos

    runtime.start_collection()
    result = run_chaos(
        "roce-lan",
        total_bytes=32 * 1024 * 1024,
        plan=FaultPlan(seed=3, write_fault_rate=0.05),
    )
    engines = runtime.collected_engines()
    runtime.stop_collection()
    assert result.completed
    assert len(engines) == 1
    names = {rec["metric"] for rec in engines[0].metrics.snapshot()}
    # pool, credits, reassembly, and per-QP channel counters — the
    # acceptance surface for `chaos --metrics-out`.
    assert {"pool.blocks", "pool.free_blocks", "pool.block_returns"} <= names
    assert {"credits.granted_total", "credits.received_total",
            "credits.balance"} <= names
    assert {"reassembly.duplicates", "reassembly.parked"} <= names
    assert "data.qp_blocks_posted" in names
    assert {"qp.bytes_sent", "qp.rnr_naks"} <= names
    # Faults actually drove the resend counter family.
    per_qp = engines[0].metrics.family("data.qp_blocks_posted")
    assert sum(m.total for m in per_qp) > 0
