"""Unit tests for the label-aware metrics registry."""

from __future__ import annotations

import math

import pytest

from repro.obs.registry import (
    CallbackGauge,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)


def test_counter_get_or_create_identity():
    reg = MetricsRegistry()
    a = reg.counter("x.bytes", link="fwd")
    b = reg.counter("x.bytes", link="fwd")
    assert a is b
    a.add(10)
    b.add(5)
    assert a.total == 15
    assert a.count == 2
    assert a.value == 15


def test_labels_partition_families():
    reg = MetricsRegistry()
    reg.counter("x.bytes", link="fwd").add(1)
    reg.counter("x.bytes", link="rev").add(2)
    assert len(reg.family("x.bytes")) == 2
    assert reg.label_values("x.bytes", "link") == {"fwd": 1, "rev": 2}
    # Label order in the call never matters.
    assert reg.counter("y", a=1, b=2) is reg.counter("y", b=2, a=1)


def test_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")
    with pytest.raises(TypeError):
        reg.gauge_fn("x", lambda: 0.0)


def test_counter_matches_monitor_counter_contract():
    from repro.sim.monitor import Counter

    plain, metric = Counter("n"), MetricsRegistry().counter("n")
    for c in (plain, metric):
        c.add(100)
        c.add()
    assert plain.total == metric.total == 101
    assert plain.count == metric.count == 2


def test_gauge_set_max_and_add():
    g = MetricsRegistry().gauge("peak")
    g.set_max(5)
    g.set_max(3)
    assert g.value == 5
    g.add(2)
    assert g.value == 7
    g.set(1)
    assert g.value == 1


def test_callback_gauge_reads_live_and_survives_errors():
    reg = MetricsRegistry()
    state = {"v": 1}
    g = reg.gauge_fn("depth", lambda: state["v"])
    assert g.value == 1
    state["v"] = 7
    assert g.value == 7
    bad = reg.gauge_fn("boom", lambda: 1 / 0)
    assert math.isnan(bad.value)


def test_histogram_summary_and_empty_nan():
    h = MetricsRegistry().histogram("lat")
    assert math.isnan(h.percentile(50))
    assert h.summary()["count"] == 0
    assert math.isnan(h.summary()["p99"])
    for v in (1.0, 2.0, 3.0, 4.0):
        h.observe(v)
    s = h.summary()
    assert s["count"] == 4
    assert s["mean"] == 2.5
    # The streaming histogram is bucketed: the p50 lies between the
    # bracketing order statistics to within one bucket width.
    assert 2.0 / h.BUCKET_WIDTH <= s["p50"] <= 3.0 * h.BUCKET_WIDTH
    assert s["max"] == 4.0


def test_snapshot_shapes():
    reg = MetricsRegistry()
    reg.counter("c", i=0).add(3)
    reg.gauge("g").set(2.5)
    reg.histogram("h").observe(1.0)
    reg.gauge_fn("f", lambda: 9)
    recs = {r["metric"]: r for r in reg.snapshot()}
    assert recs["c"] == {
        "metric": "c", "kind": "counter", "labels": {"i": 0},
        "value": 3.0, "count": 1,
    }
    assert recs["g"]["value"] == 2.5
    assert recs["h"]["summary"]["count"] == 1
    assert recs["f"]["kind"] == "gauge" and recs["f"]["value"] == 9.0


def test_remove_prunes_one_label_set():
    reg = MetricsRegistry()
    reg.counter("dup", session=1).add()
    reg.counter("dup", session=2).add()
    assert reg.remove("dup", session=1)
    assert not reg.remove("dup", session=1)
    assert [m.labels["session"] for m in reg.family("dup")] == [2]
    assert len(reg) == 1


def test_sequence_numbers_instances():
    reg = MetricsRegistry()
    assert [reg.sequence("pool"), reg.sequence("pool"), reg.sequence("link")] == [
        0, 1, 0,
    ]


def test_iter_and_get():
    reg = MetricsRegistry()
    c = reg.counter("a")
    assert list(reg) == [c]
    assert reg.get("a") is c
    assert reg.get("a", i=1) is None
    assert isinstance(c, CounterMetric)
    assert isinstance(reg.gauge("b"), GaugeMetric)
    assert isinstance(reg.histogram("c"), HistogramMetric)
    assert isinstance(reg.gauge_fn("d", lambda: 0), CallbackGauge)
