"""Host assembly."""

import pytest

from repro.hardware import DiskProfile, Host, HostSpec, NicProfile


def spec(**over):
    base = dict(name="h", cores=8, mem_bytes=1 << 30, pcie_gbps=32.0)
    base.update(over)
    return HostSpec(**base)


def test_host_assembly(engine):
    host = Host(engine, spec())
    nic = host.add_nic(NicProfile(gbps=40))
    disk = host.add_disk(DiskProfile())
    assert host.nic is nic
    assert host.disk is disk
    assert host.cpu.cores == 8
    assert host.memory.capacity == 1 << 30


def test_host_without_nic_raises(engine):
    host = Host(engine, spec())
    with pytest.raises(RuntimeError):
        _ = host.nic


def test_thread_names_unique(engine):
    host = Host(engine, spec())
    t1 = host.thread("worker")
    t2 = host.thread("worker")
    assert t1.name != t2.name
    assert t1.group == "app"
    assert host.thread("k", group="kernel").group == "kernel"


def test_spec_validation():
    with pytest.raises(ValueError):
        spec(cores=0)
    with pytest.raises(ValueError):
        spec(mem_bytes=0)
    with pytest.raises(ValueError):
        spec(pcie_gbps=0)


def test_nic_profile_validation():
    with pytest.raises(ValueError):
        NicProfile(gbps=0)
    with pytest.raises(ValueError):
        NicProfile(gbps=10, max_ord=0)
    with pytest.raises(ValueError):
        NicProfile(gbps=10, engines=0)
