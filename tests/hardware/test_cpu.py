"""CPU scheduler: core limits, utilisation accounting, background charge."""

import pytest

from repro.hardware import CpuScheduler
from repro.hardware.cpu import CpuThread


def make_sched(engine, cores=2):
    return CpuScheduler(engine, cores)


def test_single_thread_serialises_chunks(engine):
    sched = make_sched(engine, cores=4)
    thread = CpuThread(sched, "t", "app")

    def proc(env):
        for _ in range(3):
            yield thread.exec(1.0)

    engine.process(proc(engine))
    engine.run()
    assert engine.now == pytest.approx(3.0)
    assert sched.busy_seconds("app") == pytest.approx(3.0)


def test_threads_run_in_parallel_up_to_core_count(engine):
    sched = make_sched(engine, cores=2)

    def proc(env, thread):
        yield thread.exec(1.0)

    for i in range(4):
        engine.process(proc(engine, CpuThread(sched, f"t{i}", "app")))
    engine.run()
    # Four 1-second chunks on two cores: two waves.
    assert engine.now == pytest.approx(2.0)
    assert sched.busy_seconds() == pytest.approx(4.0)


def test_utilization_percent_of_one_core(engine):
    sched = make_sched(engine, cores=4)

    def proc(env, thread):
        yield thread.exec(2.0)

    for i in range(3):
        engine.process(proc(engine, CpuThread(sched, f"t{i}", "app")))
    engine.run()
    # Three cores busy for the full 2 s window = 300 % (nmon convention).
    assert sched.utilization_pct() == pytest.approx(300.0)


def test_group_accounting_separation(engine):
    sched = make_sched(engine)
    app = CpuThread(sched, "a", "app")
    aux = CpuThread(sched, "k", "aux")

    def proc(env):
        yield app.exec(1.0)
        yield aux.exec(3.0)

    engine.process(proc(engine))
    engine.run()
    assert sched.busy_seconds("app") == pytest.approx(1.0)
    assert sched.busy_seconds("aux") == pytest.approx(3.0)
    assert sched.busy_seconds() == pytest.approx(4.0)


def test_background_charge_does_not_block(engine):
    sched = make_sched(engine, cores=1)
    thread = CpuThread(sched, "t", "app")

    def proc(env):
        sched.charge_background(5.0, "kernel")
        yield thread.exec(1.0)

    engine.process(proc(engine))
    engine.run()
    assert engine.now == pytest.approx(1.0)  # background did not occupy core
    assert sched.busy_seconds("kernel") == pytest.approx(5.0)


def test_reset_accounting(engine):
    sched = make_sched(engine)
    thread = CpuThread(sched, "t", "app")

    def proc(env):
        yield thread.exec(2.0)
        sched.reset_accounting()
        yield thread.exec(1.0)

    engine.process(proc(engine))
    engine.run()
    assert sched.busy_seconds() == pytest.approx(1.0)
    assert sched.utilization_pct() == pytest.approx(100.0)


def test_zero_cost_chunk_is_free(engine):
    sched = make_sched(engine)
    thread = CpuThread(sched, "t", "app")

    def proc(env):
        yield thread.exec(0.0)

    engine.process(proc(engine))
    engine.run()
    assert engine.now == 0.0


def test_thread_cannot_run_two_chunks_at_once(engine):
    sched = make_sched(engine)
    thread = CpuThread(sched, "t", "app")

    def a(env):
        yield thread.exec(2.0)

    def b(env):
        yield env.timeout(0.5)
        yield thread.exec(1.0)

    engine.process(a(engine))
    engine.process(b(engine))
    with pytest.raises(Exception):
        engine.run()


def test_negative_chunk_rejected(engine):
    sched = make_sched(engine)
    with pytest.raises(ValueError):
        list(sched.run_chunk(-1.0, "app"))


def test_scheduler_requires_core(engine):
    with pytest.raises(ValueError):
        CpuScheduler(engine, 0)
