"""PCIe bus, NIC engine, and disk array timing models."""

import pytest

from repro.hardware import DiskArray, DiskProfile, PcieBus
from repro.hardware.cpu import CpuScheduler, CpuThread
from tests.conftest import make_host


# -- PCIe -------------------------------------------------------------------
def test_pcie_transfer_time(engine):
    bus = PcieBus(engine, gbps=8.0)  # 1 GB/s

    def proc(env):
        yield from bus.dma(1_000_000_000)

    engine.process(proc(engine))
    engine.run()
    assert engine.now == pytest.approx(1.0)
    assert bus.bytes_moved.total == 1_000_000_000


def test_pcie_fifo_serialisation(engine):
    bus = PcieBus(engine, gbps=8.0)
    finish = []

    def proc(env, tag):
        yield from bus.dma(500_000_000)
        finish.append((env.now, tag))

    engine.process(proc(engine, "a"))
    engine.process(proc(engine, "b"))
    engine.run()
    assert finish == [(pytest.approx(0.5), "a"), (pytest.approx(1.0), "b")]


def test_pcie_zero_dma_free(engine):
    bus = PcieBus(engine, gbps=8.0)

    def proc(env):
        yield from bus.dma(0)

    engine.process(proc(engine))
    engine.run()
    assert engine.now == 0.0


def test_pcie_validation(engine):
    with pytest.raises(ValueError):
        PcieBus(engine, 0)
    bus = PcieBus(engine, 8)
    with pytest.raises(ValueError):
        list(bus.dma(-1))


# -- NIC ----------------------------------------------------------------------
def test_nic_wqe_rate_cap(engine):
    """Per-WQE processing bounds message rate (small-block ceiling)."""
    host = make_host(engine, nic_gbps=40.0)
    nic = host.nic

    def proc(env):
        for _ in range(50):
            yield from nic.process_wqe()

    # Two serial submitters saturate both NIC pipelines.
    engine.process(proc(engine))
    engine.process(proc(engine))
    engine.run()
    expected = 100 * nic.profile.wqe_seconds / nic.profile.engines
    assert engine.now == pytest.approx(expected)
    assert nic.wqes_processed.count == 100


def test_nic_read_engine_serialises_gap_and_dma(engine):
    host = make_host(engine, nic_gbps=40.0, pcie_gbps=8.0)  # 1 GB/s PCIe
    nic = host.nic

    def proc(env):
        for _ in range(4):
            yield from nic.serve_read(1_000_000)

    engine.process(proc(engine))
    engine.run()
    per_req = nic.profile.read_gap_seconds + 1_000_000 / 1e9
    assert engine.now == pytest.approx(4 * per_req, rel=1e-6)
    assert nic.read_requests_served.count == 4


# -- Disk ------------------------------------------------------------------------
def _disk_fixture(engine, **profile_kwargs):
    sched = CpuScheduler(engine, cores=4)
    thread = CpuThread(sched, "writer", "app")
    disk = DiskArray(engine, DiskProfile(**profile_kwargs))
    return sched, thread, disk


def test_disk_write_throughput(engine):
    sched, thread, disk = _disk_fixture(
        engine, write_bytes_per_second=1e9, lanes=1
    )

    def proc(env):
        yield from disk.write(thread, 100_000_000, direct=True)

    engine.process(proc(engine))
    engine.run()
    assert engine.now == pytest.approx(0.1, rel=1e-3)
    assert disk.bytes_written.total == 100_000_000


def test_posix_write_charges_copy_cpu(engine):
    sched, thread, disk = _disk_fixture(engine)

    def proc(env):
        yield from disk.write(thread, 100_000_000, direct=False)

    engine.process(proc(engine))
    engine.run()
    copy_cost = 100_000_000 * disk.profile.posix_copy_ns_per_byte * 1e-9
    assert sched.busy_seconds("app") == pytest.approx(
        copy_cost + disk.profile.syscall_seconds
    )


def test_direct_write_cpu_is_per_op_only(engine):
    sched, thread, disk = _disk_fixture(engine)

    def proc(env):
        yield from disk.write(thread, 100_000_000, direct=True)

    engine.process(proc(engine))
    engine.run()
    assert sched.busy_seconds("app") == pytest.approx(
        disk.profile.direct_setup_seconds + disk.profile.syscall_seconds
    )


def test_raid_lanes_parallelise(engine):
    """With 2 lanes, two concurrent writes share aggregate bandwidth and
    finish together; a single lane would serialise them."""
    sched = CpuScheduler(engine, cores=4)
    disk = DiskArray(
        engine, DiskProfile(write_bytes_per_second=1e9, lanes=2)
    )

    done = []

    def proc(env, tag):
        thread = CpuThread(sched, tag, "app")
        yield from disk.write(thread, 100_000_000, direct=True)
        done.append((env.now, tag))

    engine.process(proc(engine, "a"))
    engine.process(proc(engine, "b"))
    engine.run()
    # Each lane runs at 0.5 GB/s: both finish at ~0.2 s.
    assert done[0][0] == pytest.approx(0.2, rel=1e-2)
    assert done[1][0] == pytest.approx(0.2, rel=1e-2)


def test_disk_read(engine):
    sched, thread, disk = _disk_fixture(
        engine, read_bytes_per_second=2e9, lanes=1
    )

    def proc(env):
        yield from disk.read(thread, 200_000_000, direct=True)

    engine.process(proc(engine))
    engine.run()
    assert engine.now == pytest.approx(0.1, rel=1e-3)
    assert disk.bytes_read.total == 200_000_000


def test_disk_profile_validation():
    with pytest.raises(ValueError):
        DiskProfile(write_bytes_per_second=0)
    with pytest.raises(ValueError):
        DiskProfile(lanes=0)
