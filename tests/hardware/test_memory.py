"""Memory manager and buffer semantics."""

import pytest

from repro.hardware.memory import PAGE_SIZE, MemoryBuffer, MemoryManager


def test_alloc_tracks_usage():
    mm = MemoryManager(capacity=1 << 20)
    buf = mm.alloc(4096)
    assert buf.size == 4096
    assert mm.used == 4096
    assert mm.available == (1 << 20) - 4096


def test_alloc_exhaustion():
    mm = MemoryManager(capacity=8192)
    mm.alloc(8192)
    with pytest.raises(MemoryError):
        mm.alloc(1)


def test_free_returns_bytes():
    mm = MemoryManager(capacity=1 << 20)
    buf = mm.alloc(1000)
    mm.free(buf)
    assert mm.used == 0


def test_allocations_do_not_overlap():
    mm = MemoryManager(capacity=1 << 20)
    a = mm.alloc(5000)
    b = mm.alloc(5000)
    assert a.end <= b.addr or b.end <= a.addr


def test_allocations_page_aligned():
    mm = MemoryManager(capacity=1 << 20)
    mm.alloc(100)
    b = mm.alloc(100)
    assert b.addr % PAGE_SIZE == 0


def test_invalid_sizes():
    mm = MemoryManager(capacity=100)
    with pytest.raises(ValueError):
        mm.alloc(0)
    with pytest.raises(ValueError):
        MemoryBuffer(addr=0, size=0)
    with pytest.raises(ValueError):
        MemoryBuffer(addr=-1, size=10)


def test_buffer_contains():
    buf = MemoryBuffer(addr=1000, size=100)
    assert buf.contains(1000, 100)
    assert buf.contains(1050, 50)
    assert not buf.contains(1050, 51)
    assert not buf.contains(999, 1)


def test_buffer_pages():
    assert MemoryBuffer(0, 1).pages == 1
    assert MemoryBuffer(0, PAGE_SIZE).pages == 1
    assert MemoryBuffer(0, PAGE_SIZE + 1).pages == 2
