"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import pytest

from repro.hardware import Host, HostSpec, NicProfile
from repro.network import DuplexPath, back_to_back
from repro.sim import Engine
from repro.verbs import (
    AccessFlags,
    ConnectionManager,
    Device,
    QueuePair,
    RdmaArch,
    RdmaFabric,
    connect_pair,
)


def make_host(
    engine: Engine,
    name: str = "h",
    cores: int = 8,
    pcie_gbps: float = 64.0,
    nic_gbps: float = 40.0,
    **spec_overrides,
) -> Host:
    """A host with one NIC, generous defaults, tweakable per test."""
    spec = HostSpec(
        name=name,
        cores=cores,
        mem_bytes=spec_overrides.pop("mem_bytes", 16 << 30),
        pcie_gbps=pcie_gbps,
        **spec_overrides,
    )
    host = Host(engine, spec)
    host.add_nic(NicProfile(gbps=nic_gbps))
    return host


@dataclass
class MiniFabric:
    """Two connected hosts with devices, CM, and a duplex path."""

    engine: Engine
    a: Host
    b: Host
    dev_a: Device
    dev_b: Device
    duplex: DuplexPath
    fabric: RdmaFabric
    cm: ConnectionManager

    def qp_pair(
        self,
        **qp_kwargs,
    ) -> Tuple[QueuePair, QueuePair]:
        """A connected RC QP pair (PDs cached — rkeys are PD-scoped, so
        ``remote_mr`` registers in the same PD as host b's QPs)."""
        if not hasattr(self, "pd_a"):
            self.pd_a = self.dev_a.alloc_pd()
            self.pd_b = self.dev_b.alloc_pd()
        qa = self.dev_a.create_qp(
            self.pd_a, self.dev_a.create_cq(), self.dev_a.create_cq(), **qp_kwargs
        )
        qb = self.dev_b.create_qp(
            self.pd_b, self.dev_b.create_cq(), self.dev_b.create_cq(), **qp_kwargs
        )
        connect_pair(qa, qb, self.duplex)
        return qa, qb

    def remote_mr(self, size: int = 1 << 20, write=True, read=True):
        """A remote-accessible MR on host b, in the same PD as b's QPs.
        Returns (pd, buffer, mr)."""
        if not hasattr(self, "pd_b"):
            self.pd_a = self.dev_a.alloc_pd()
            self.pd_b = self.dev_b.alloc_pd()
        buf = self.b.memory.alloc(size)
        access = AccessFlags.LOCAL_WRITE
        if write:
            access |= AccessFlags.REMOTE_WRITE
        if read:
            access |= AccessFlags.REMOTE_READ
        return self.pd_b, buf, self.pd_b.reg_mr_sync(buf, access)


def make_fabric(
    gbps: float = 40.0,
    rtt: float = 25e-6,
    arch: RdmaArch = RdmaArch.ROCE,
    cores: int = 8,
    pcie_gbps: float = 64.0,
) -> MiniFabric:
    engine = Engine()
    a = make_host(engine, "a", cores=cores, pcie_gbps=pcie_gbps, nic_gbps=gbps)
    b = make_host(engine, "b", cores=cores, pcie_gbps=pcie_gbps, nic_gbps=gbps)
    dev_a, dev_b = Device(a.nic, arch), Device(b.nic, arch)
    duplex = back_to_back(engine, gbps, rtt=rtt)
    fabric = RdmaFabric(engine)
    fabric.wire(dev_a, dev_b, duplex)
    cm = ConnectionManager(fabric)
    return MiniFabric(engine, a, b, dev_a, dev_b, duplex, fabric, cm)


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def fabric() -> MiniFabric:
    return make_fabric()


def run_to_end(engine: Engine, until: float = None) -> None:
    """Run the engine; small alias to keep intent clear in tests."""
    engine.run(until)
