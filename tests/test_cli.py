"""Command-line interface."""

import pytest

from repro.cli import main, parse_size


def test_parse_size():
    assert parse_size("4096") == 4096
    assert parse_size("4K") == 4096
    assert parse_size("4k") == 4096
    assert parse_size("1M") == 1 << 20
    assert parse_size("2G") == 2 << 30
    assert parse_size("1.5M") == int(1.5 * (1 << 20))
    assert parse_size("4MB") == 4 << 20
    assert parse_size("4MiB") == 4 << 20


@pytest.mark.parametrize("bad", ["", "x", "-1M", "0"])
def test_parse_size_rejects(bad):
    with pytest.raises(ValueError):
        parse_size(bad)


def test_testbeds_command(capsys):
    assert main(["testbeds"]) == 0
    out = capsys.readouterr().out
    assert "roce-lan" in out and "ani-wan" in out and "49" in out


def test_rftp_command(capsys):
    code = main(
        ["rftp", "--testbed", "roce-lan", "--bytes", "64M", "--block-size", "1M",
         "--channels", "2", "--pool", "8"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Gbps" in out and "RNR NAKs 0" in out


def test_gridftp_command(capsys):
    code = main(
        ["gridftp", "--testbed", "roce-lan", "--bytes", "64M", "--streams", "2"]
    )
    assert code == 0
    assert "stream(s)" in capsys.readouterr().out


def test_fio_command(capsys):
    code = main(
        ["fio", "--testbed", "roce-lan", "--semantics", "write",
         "--block-size", "128K", "--iodepth", "8", "--blocks", "200"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Gbps" in out and "p99" in out


def test_rftp_disk_command(capsys):
    code = main(
        ["rftp", "--testbed", "ani-wan", "--bytes", "256M", "--pool", "48",
         "--disk"]
    )
    assert code == 0


def test_rftp_on_demand_ablation(capsys):
    code = main(
        ["rftp", "--testbed", "roce-lan", "--bytes", "32M", "--block-size", "1M",
         "--pool", "8", "--on-demand-credits"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "credit requests" in out


def test_unknown_testbed_rejected():
    with pytest.raises(SystemExit):
        main(["rftp", "--testbed", "mars-lan"])


def test_chaos_command_clean_run(capsys):
    code = main(
        ["chaos", "--testbed", "roce-lan", "--bytes", "32M",
         "--write-fault-rate", "0.08", "--seed", "1"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "byte-exact: yes" in out
    assert "verdict: clean" in out


def test_chaos_command_typed_abort_is_clean(capsys):
    code = main(
        ["chaos", "--testbed", "roce-lan", "--bytes", "8M",
         "--link-flap", "0.001:120"]  # outage outlasts every retry budget
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "aborted with" in out
    assert "verdict: clean" in out
