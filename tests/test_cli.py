"""Command-line interface."""

import pytest

from repro.cli import main, parse_size


def test_parse_size():
    assert parse_size("4096") == 4096
    assert parse_size("4K") == 4096
    assert parse_size("4k") == 4096
    assert parse_size("1M") == 1 << 20
    assert parse_size("2G") == 2 << 30
    assert parse_size("1.5M") == int(1.5 * (1 << 20))
    assert parse_size("4MB") == 4 << 20
    assert parse_size("4MiB") == 4 << 20


@pytest.mark.parametrize("bad", ["", "x", "-1M", "0"])
def test_parse_size_rejects(bad):
    with pytest.raises(ValueError):
        parse_size(bad)


def test_testbeds_command(capsys):
    assert main(["testbeds"]) == 0
    out = capsys.readouterr().out
    assert "roce-lan" in out and "ani-wan" in out and "49" in out


def test_rftp_command(capsys):
    code = main(
        ["rftp", "--testbed", "roce-lan", "--bytes", "64M", "--block-size", "1M",
         "--channels", "2", "--pool", "8"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Gbps" in out and "RNR NAKs 0" in out


def test_gridftp_command(capsys):
    code = main(
        ["gridftp", "--testbed", "roce-lan", "--bytes", "64M", "--streams", "2"]
    )
    assert code == 0
    assert "stream(s)" in capsys.readouterr().out


def test_fio_command(capsys):
    code = main(
        ["fio", "--testbed", "roce-lan", "--semantics", "write",
         "--block-size", "128K", "--iodepth", "8", "--blocks", "200"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Gbps" in out and "p99" in out


def test_rftp_disk_command(capsys):
    code = main(
        ["rftp", "--testbed", "ani-wan", "--bytes", "256M", "--pool", "48",
         "--disk"]
    )
    assert code == 0


def test_rftp_on_demand_ablation(capsys):
    code = main(
        ["rftp", "--testbed", "roce-lan", "--bytes", "32M", "--block-size", "1M",
         "--pool", "8", "--on-demand-credits"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "credit requests" in out


def test_unknown_testbed_rejected():
    with pytest.raises(SystemExit):
        main(["rftp", "--testbed", "mars-lan"])


def test_chaos_command_clean_run(capsys):
    code = main(
        ["chaos", "--testbed", "roce-lan", "--bytes", "32M",
         "--write-fault-rate", "0.08", "--seed", "1"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "byte-exact: yes" in out
    assert "verdict: clean" in out


def test_chaos_command_typed_abort_is_clean(capsys):
    code = main(
        ["chaos", "--testbed", "roce-lan", "--bytes", "8M",
         "--link-flap", "0.001:120"]  # outage outlasts every retry budget
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "aborted with" in out
    assert "verdict: clean" in out


def test_rftp_metrics_and_trace_export(tmp_path, capsys):
    import json

    mpath, tpath = tmp_path / "m.jsonl", tmp_path / "t.jsonl"
    rc = main([
        "rftp", "--bytes", "32M",
        "--metrics-out", str(mpath),
        "--trace-out", str(tpath), "--trace-categories", "ctrl,credits",
    ])
    assert rc == 0
    mlines = [json.loads(l) for l in mpath.read_text().splitlines()]
    assert mlines[0]["record"] == "engine" and mlines[0]["run"] == 0
    assert mlines[0]["events_processed"] > 0
    names = {r["metric"] for r in mlines if r["record"] == "metric"}
    assert {"pool.blocks", "credits.granted_total", "reassembly.duplicates",
            "qp.bytes_sent", "source.blocks_completed"} <= names
    tlines = [json.loads(l) for l in tpath.read_text().splitlines()]
    assert tlines[0]["record"] == "tracer" and tlines[0]["emitted"] > 0
    cats = {r["category"] for r in tlines if r["record"] == "trace"}
    assert cats and cats <= {"ctrl", "credits"}


def test_chaos_metrics_export_covers_subsystems(tmp_path, capsys):
    import json

    mpath = tmp_path / "chaos.jsonl"
    rc = main([
        "chaos", "--bytes", "32M", "--write-fault-rate", "0.02",
        "--metrics-out", str(mpath),
    ])
    assert rc == 0
    names = {
        r["metric"]
        for r in map(json.loads, mpath.read_text().splitlines())
        if r["record"] == "metric"
    }
    assert {"pool.free_blocks", "credits.balance", "reassembly.parked",
            "data.qp_blocks_posted"} <= names


def test_export_collection_window_is_reset(tmp_path, capsys):
    from repro.obs import runtime

    rc = main(["rftp", "--bytes", "32M",
               "--metrics-out", str(tmp_path / "m.jsonl")])
    assert rc == 0
    assert not runtime.collecting()
    assert runtime.collected_engines() == []
    assert runtime.make_tracer() is None


def test_bench_quick_single_case(tmp_path, capsys):
    import json

    out = tmp_path / "BENCH_test.json"
    rc = main(["bench", "--quick", "--only", "fio_write_roce",
               "--out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["kind"] == "repro-bench" and doc["mode"] == "quick"
    assert list(doc["results"]) == ["fio_write_roce"]
    assert "fio_write_roce" in capsys.readouterr().out


def test_bench_compare_gates_regression(tmp_path, capsys):
    import copy
    import json

    base = {
        "schema": 1, "kind": "repro-bench", "date": "2026-08-05",
        "mode": "quick",
        "results": {"c": {"gbps": 10.0, "p50_us": 1.0, "p99_us": 2.0,
                          "events_per_sec": 1.0, "sim_time": 1.0,
                          "events": 1}},
    }
    cur = copy.deepcopy(base)
    cur["results"]["c"]["gbps"] = 8.0  # -20%
    bp, cp = tmp_path / "b.json", tmp_path / "c.json"
    bp.write_text(json.dumps(base))
    cp.write_text(json.dumps(cur))
    assert main(["bench-compare", str(bp), str(cp)]) == 1
    assert "REGRESSION" in capsys.readouterr().out
    assert main(["bench-compare", str(bp), str(bp)]) == 0
    assert main(["bench-compare", str(bp), str(cp),
                 "--tolerance", "0.25"]) == 0


def test_sched_command_runs_a_mix_and_writes_a_report(tmp_path, capsys):
    import json

    rep = tmp_path / "report.jsonl"
    rc = main(["sched", "--files", "40", "--testbed", "roce-lan",
               "--report", str(rep)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "gold" in out and "bronze" in out and "sim time" in out
    lines = rep.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["kind"] == "header" and header["testbed"] == "roce-lan"
    assert json.loads(lines[-1])["kind"] == "summary"


def test_sched_command_report_is_byte_identical_across_runs(tmp_path, capsys):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    argv = ["sched", "--files", "40", "--testbed", "roce-lan"]
    assert main(argv + ["--report", str(a)]) == 0
    assert main(argv + ["--report", str(b)]) == 0
    assert a.read_bytes() == b.read_bytes()


def test_sched_command_exits_nonzero_when_jobs_do_not_finish(capsys):
    rc = main(["sched", "--files", "200", "--testbed", "ani-wan",
               "--horizon", "2.0"])
    assert rc == 1
    assert "did not finish" in capsys.readouterr().err


def test_sched_command_requires_a_mix(capsys):
    assert main(["sched"]) == 2
    assert "--spec" in capsys.readouterr().err
