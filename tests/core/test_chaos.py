"""Chaos suite: deterministic fault injection, end to end.

Every scenario must end in one of exactly two states:

- the transfer completes byte-exact with the recovery machinery visibly
  exercised (re-sends, control retries), or
- it aborts within the retry budgets with a *typed* error,

and in both cases the middleware must leak nothing — ``ChaosResult``
audits pool blocks, in-flight WRs, credit waiters, session tables, and
parked reassembly entries.  Runs are parametrized over fixed seeds; the
same seed must replay the exact same fault sequence.
"""

import pytest

from repro.core import ProtocolConfig
from repro.core.messages import CtrlType
from repro.faults import DEFAULT_DROPPABLE, FaultInjector, FaultPlan, run_chaos

SEEDS = [0, 1]


def cfg(**over):
    base = dict(
        block_size=256 * 1024,
        num_channels=2,
        source_blocks=8,
        sink_blocks=8,
    )
    base.update(over)
    return ProtocolConfig(**base)


def chaos(plan, total=16 << 20, **over):
    return run_chaos("roce-lan", total_bytes=total, plan=plan, config=cfg(**over))


# -- the plan itself ---------------------------------------------------------------
def test_plan_validates_probabilities():
    with pytest.raises(ValueError):
        FaultPlan(write_fault_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(ctrl_drop_rate=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(link_flaps=((1.0, 0.0),))
    with pytest.raises(ValueError):
        FaultPlan(ctrl_delay_seconds=-1.0)
    assert not FaultPlan().any_faults
    assert FaultPlan(write_fault_rate=0.1).any_faults


def test_injector_seams_draw_independent_streams():
    """Enabling the control seam must not perturb the data seam's draws."""
    data_only = FaultInjector(FaultPlan(seed=5, write_fault_rate=0.3))
    both = FaultInjector(
        FaultPlan(seed=5, write_fault_rate=0.3, ctrl_drop_rate=0.5)
    )
    decisions_a, decisions_b = [], []
    for i in range(50):
        decisions_a.append(data_only.data_qp_hook(None))
        # Interleave control draws on the second injector: the data
        # stream's sequence must be unaffected.
        both.ctrl_hook(
            type("M", (), {"type": CtrlType.SESSION_REQ, "session_id": 1})()
        )
        decisions_b.append(both.data_qp_hook(None))
    assert decisions_a == decisions_b
    assert any(decisions_a)


# -- completion under faults ---------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_write_faults_recovered_byte_exact(seed):
    r = chaos(FaultPlan(seed=seed, write_fault_rate=0.08))
    assert r.completed and r.byte_exact
    assert r.write_faults > 0
    assert r.resends == r.write_faults
    assert r.leaks == ()
    assert r.clean


@pytest.mark.parametrize("seed", SEEDS)
def test_ctrl_drops_recovered_byte_exact(seed):
    r = chaos(FaultPlan(seed=seed, ctrl_drop_rate=0.5))
    assert r.completed and r.byte_exact
    assert r.ctrl_drops > 0
    assert r.ctrl_retries > 0  # every drop costs a timed-out retry
    assert r.leaks == ()
    assert r.clean


@pytest.mark.parametrize("seed", SEEDS)
def test_link_flap_mid_transfer_recovered(seed):
    r = chaos(FaultPlan(seed=seed, link_flaps=((0.002, 0.005),)))
    assert r.completed and r.byte_exact
    assert r.flaps_fired == 1
    assert r.leaks == ()
    assert r.clean


@pytest.mark.parametrize("seed", SEEDS)
def test_combined_fault_classes_recovered(seed):
    r = chaos(
        FaultPlan(
            seed=seed,
            write_fault_rate=0.05,
            ctrl_drop_rate=0.2,
            ctrl_delay_rate=0.2,
            latency_spike_rate=0.02,
        )
    )
    assert r.completed and r.byte_exact
    assert r.leaks == ()
    assert r.clean


def test_same_seed_replays_identically():
    plan = FaultPlan(seed=3, write_fault_rate=0.08, ctrl_drop_rate=0.3)
    a, b = chaos(plan), chaos(plan)
    assert (a.resends, a.write_faults, a.ctrl_drops, a.ctrl_retries, a.sim_time) == (
        b.resends, b.write_faults, b.ctrl_drops, b.ctrl_retries, b.sim_time
    )


# -- typed aborts -------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_losing_every_dataset_done_aborts_with_ack_timeout(seed):
    """No DATASET_DONE ever arrives: the watchdog must abort with
    AckTimeout and the sink GC must reclaim the orphaned session."""
    r = chaos(
        FaultPlan(
            seed=seed, ctrl_drop_rate=1.0, ctrl_droppable=(CtrlType.DATASET_DONE,)
        ),
        total=4 << 20,
    )
    assert not r.completed
    assert r.error == "AckTimeout"
    assert r.sessions_reclaimed >= 1
    assert r.leaks == ()
    assert r.sim_time < 60.0  # bounded by the retry budget, not the horizon
    assert r.clean


@pytest.mark.parametrize("seed", SEEDS)
def test_losing_every_block_size_req_aborts_negotiation(seed):
    r = chaos(
        FaultPlan(
            seed=seed, ctrl_drop_rate=1.0, ctrl_droppable=(CtrlType.BLOCK_SIZE_REQ,)
        ),
        total=4 << 20,
    )
    assert not r.completed
    assert r.error == "NegotiationTimeout"
    assert r.leaks == ()
    assert r.sim_time < 60.0
    assert r.clean


@pytest.mark.parametrize("seed", SEEDS)
def test_losing_every_mr_info_req_aborts_with_starvation(seed):
    """On-demand credits + a black hole for MR_INFO_REQ: the sender must
    give up with CreditStarvation instead of waiting forever."""
    r = chaos(
        FaultPlan(
            seed=seed, ctrl_drop_rate=1.0, ctrl_droppable=(CtrlType.MR_INFO_REQ,)
        ),
        total=4 << 20,
        proactive_credits=False,
    )
    assert not r.completed
    assert r.error == "CreditStarvation"
    assert r.leaks == ()
    assert r.sim_time < 60.0
    assert r.clean


def test_default_droppable_excludes_unretransmitted_messages():
    """BLOCK_DONE and the sink's replies are sent exactly once — dropping
    them tests nothing the protocol claims to survive.  DATASET_DONE_ACK
    *is* droppable: the sink re-answers a retransmitted DATASET_DONE
    idempotently from its ack ledger."""
    assert CtrlType.BLOCK_DONE not in DEFAULT_DROPPABLE
    assert CtrlType.DATASET_DONE_ACK in DEFAULT_DROPPABLE
    assert CtrlType.MR_INFO_REP not in DEFAULT_DROPPABLE
    assert CtrlType.SESSION_REP not in DEFAULT_DROPPABLE
