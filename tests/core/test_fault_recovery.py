"""Fault injection: the WAITING → LOADED re-send path of Figure 6."""

from repro.apps.io import CollectingSink, PatternSource
from repro.core import ProtocolConfig, RdmaMiddleware
from repro.testbeds import roce_lan
from repro.verbs import Opcode, SendWR, WcStatus
from tests.conftest import make_fabric


def cfg(**over):
    base = dict(
        block_size=256 * 1024,
        num_channels=2,
        source_blocks=8,
        sink_blocks=8,
    )
    base.update(over)
    return ProtocolConfig(**base)


# -- verbs-level behaviour ----------------------------------------------------------
def test_sim_fault_fails_wr_but_keeps_qp():
    f = make_fabric()
    qa, _ = f.qp_pair()
    _, buf, mr = f.remote_mr()
    hits = []
    qa.fault_injector = lambda wr: hits.append(wr.wr_id) is None and len(hits) == 1

    for i in range(2):
        qa.post_send(
            SendWR(
                opcode=Opcode.RDMA_WRITE,
                length=4096,
                wr_id=i,
                remote_addr=buf.addr,
                rkey=mr.rkey,
                payload=f"p{i}",
            )
        )
    f.engine.run()
    wcs = qa.send_cq.poll_nocost()
    assert wcs[0].status is WcStatus.SIM_FAULT
    assert wcs[1].status is WcStatus.SUCCESS
    from repro.verbs import QpState

    assert qa.state is QpState.RTS  # QP survived the injected fault
    assert mr.fetch(buf.addr) == "p1"  # faulted payload was discarded


# -- middleware-level recovery ---------------------------------------------------------
class EveryNth:
    """Fail every n-th WRITE exactly once (deterministic injector)."""

    def __init__(self, n: int):
        self.n = n
        self.count = 0
        self.failed = set()

    def __call__(self, wr) -> bool:
        self.count += 1
        if self.count % self.n == 0 and wr.wr_id not in self.failed:
            self.failed.add(wr.wr_id)
            return True
        return False


def run_with_faults(injector, total=16 << 20):
    tb = roce_lan()
    c = cfg()
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, c)
    sink = CollectingSink(tb.dst)
    server.serve(4000, sink)
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, c)
    done = client.transfer(
        tb.dst_dev, 4000, PatternSource(tb.src), total, fault_injector=injector
    )
    tb.engine.run()
    assert done.triggered and done.ok, "transfer deadlocked under faults"
    return done.value, sink


def test_transfer_survives_sporadic_faults():
    injector = EveryNth(7)
    outcome, sink = run_with_faults(injector)
    assert outcome.resends == len(injector.failed) > 0
    # Despite the faults: complete, in-order, correct payloads.
    assert len(sink.deliveries) == outcome.blocks
    assert [h.seq for h, _ in sink.deliveries] == list(range(outcome.blocks))
    for h, payload in sink.deliveries:
        assert payload == ("blk", h.seq, h.length)


def test_heavy_fault_rate_still_completes():
    injector = EveryNth(2)  # half of all first attempts fail
    outcome, sink = run_with_faults(injector, total=8 << 20)
    assert outcome.resends >= outcome.blocks // 2 - 1
    assert len(sink.deliveries) == outcome.blocks


def test_faults_do_not_leak_credits():
    """Failed WRITEs return their credit; the sink pool never strands a
    WAITING block."""
    injector = EveryNth(5)
    outcome, _ = run_with_faults(injector)
    # Every block eventually delivered exactly once == no credit lost.
    assert outcome.blocks * 1 == len(set(range(outcome.blocks)))
    assert outcome.resends > 0
