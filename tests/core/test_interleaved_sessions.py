"""Broker-adjacent seams: several interleaved sessions per peer.

Covers the cross-session accounting audited for the scheduler work: a
resume next to a lingering dead sibling must revoke *every* stale
WAITING block (not just when it is the only session), and the sink's
per-session bookkeeping must stay bounded on long-lived links that
carry thousands of short sessions.
"""

import pytest

from repro.apps.io import CollectingSink, PatternSource
from repro.core import ProtocolConfig, RdmaMiddleware
from repro.testbeds import roce_lan

BS = 256 * 1024


def cfg(**over):
    base = dict(
        block_size=BS,
        num_channels=2,
        source_blocks=12,
        sink_blocks=12,
        heartbeats=False,
        session_idle_timeout=0.5,
        idle_rto_multiplier=4.0,
    )
    base.update(over)
    return ProtocolConfig(**base)


def wire(tb, c):
    server = RdmaMiddleware(tb.dst, tb.dst_dev, tb.cm, c)
    sink = CollectingSink(tb.dst)
    server.serve(4000, sink)
    client = RdmaMiddleware(tb.src, tb.src_dev, tb.cm, c)
    return server, sink, client


def test_resume_next_to_lingering_dead_sibling_leaks_nothing():
    """Two sessions die together when the source crashes; one resumes
    while the other still sits in the sink's session table awaiting GC.
    The resume flushes the shared credit ledger, so every WAITING block
    at the sink is stale — including the sibling's.  Pre-fix, blocks were
    only revoked when the resuming session was *alone*, leaking the
    sibling's parked blocks until the pool starved."""
    tb = roce_lan()
    c = cfg()
    server, sink, client = wire(tb, c)

    def driver(env):
        link = yield client.open_link(tb.dst_dev, 4000, c)
        se = server.sink_engines[link._client_id]
        evs = [
            link.transfer(PatternSource(tb.src), 8 * BS, session_id=100),
            link.transfer(PatternSource(tb.src), 8 * BS, session_id=101),
        ]
        yield env.timeout(5e-4)
        link.crash()
        for ev in evs:
            ev.defuse()
        yield env.timeout(0.01)
        # Precondition: the sibling is still on the sink's books.
        assert 101 in se._expected_bytes
        res = yield link.resume(PatternSource(tb.src), 8 * BS, 100)
        assert res.start_seq < 8  # re-attached, suffix re-sent
        seqs = sorted({h.seq for h, _ in sink.deliveries
                       if h.session_id == 100})
        assert seqs == list(range(8))
        return True

    p = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert p.ok and p.value
    se = next(iter(server.sink_engines.values()))
    # The dead sibling was GC-reclaimed and nothing pins the pool.
    assert not se._expected_bytes
    assert se.sessions_reclaimed >= 1
    assert se.pool.free_count == len(se.pool)


def test_sink_session_history_is_bounded():
    """A long-lived link carrying many short sessions must not grow the
    sink's per-session dicts without bound: retired sessions past the
    configured cap are evicted oldest-first."""
    tb = roce_lan()
    c = cfg(sink_session_history=2)
    server, sink, client = wire(tb, c)

    def driver(env):
        link = yield client.open_link(tb.dst_dev, 4000, c)
        for _ in range(5):
            yield client.transfer(
                tb.dst_dev, 4000, PatternSource(tb.src), 4 * BS, link=link
            )
        return True

    p = tb.engine.process(driver(tb.engine))
    tb.engine.run()
    assert p.ok and p.value
    assert sink.bytes_written == 5 * 4 * BS
    se = next(iter(server.sink_engines.values()))
    assert len(se._retired) <= 2
    # The observability leftovers honour the same cap.
    assert len(se._acked) <= 2
    assert len(se._consumed_bytes) <= 2
    assert len(se.session_done) <= 2


def test_sink_session_history_validates():
    with pytest.raises(ValueError):
        ProtocolConfig(sink_session_history=0)
