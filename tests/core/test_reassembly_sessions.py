"""Per-session reassembly bookkeeping: parked indexes, duplicate
attribution, payload-conflict detection, and session reclamation."""

from repro.core.messages import BlockHeader
from repro.core.reassembly import ReassemblyBuffer


def hdr(sid, seq, length=64):
    return BlockHeader(sid, seq, seq * length, length)


def test_parked_index_is_per_session():
    buf = ReassemblyBuffer()
    buf.push(hdr(1, 1), "s1b1")
    buf.push(hdr(2, 2), "s2b2")
    buf.push(hdr(2, 3), "s2b3")
    assert buf.pending(1) == 1
    assert buf.pending(2) == 2
    assert buf.pending(3) == 0
    assert sorted(buf.sessions_with_parked()) == [1, 2]
    # Releasing session 1 leaves session 2's parked entries untouched.
    released = buf.push(hdr(1, 0), "s1b0")
    assert [h.seq for h, _ in released] == [0, 1]
    assert buf.pending(1) == 0
    assert buf.pending(2) == 2
    assert buf.sessions_with_parked() == [2]


def test_duplicates_attributed_to_their_session():
    buf = ReassemblyBuffer()
    buf.push(hdr(1, 0), "a")
    buf.push(hdr(1, 0), "a")  # stale: already delivered
    buf.push(hdr(2, 5), "b")
    buf.push(hdr(2, 5), "b")  # replay of a parked entry
    buf.push(hdr(2, 5), "b")
    assert buf.duplicates == 3
    assert buf.duplicates_by_session == {1: 1, 2: 2}


def test_payload_conflict_detected_while_parked():
    buf = ReassemblyBuffer()
    buf.push(hdr(1, 5), "original")
    released = buf.push(hdr(1, 5), "DIVERGENT")
    assert released == []
    assert buf.payload_conflicts == 1
    assert buf.duplicates == 1
    # First writer wins: the original payload is still the parked one.
    buf.push(hdr(1, 0), "p0")
    buf.push(hdr(1, 1), "p1")
    buf.push(hdr(1, 2), "p2")
    buf.push(hdr(1, 3), "p3")
    released = buf.push(hdr(1, 4), "p4")
    assert released[-1][1] == "original"


def test_conflict_undetectable_after_delivery_counts_duplicate_only():
    buf = ReassemblyBuffer()
    buf.push(hdr(1, 0), "delivered")
    buf.push(hdr(1, 0), "DIVERGENT")  # original payload is gone
    assert buf.duplicates == 1
    assert buf.payload_conflicts == 0


def test_reclaim_session_returns_stranded_entries_sorted():
    buf = ReassemblyBuffer()
    buf.push(hdr(1, 7), "b7")
    buf.push(hdr(1, 3), "b3")
    buf.push(hdr(1, 5), "b5")
    buf.push(hdr(2, 9), "other")
    stranded = buf.reclaim_session(1)
    assert [h.seq for h, _ in stranded] == [3, 5, 7]
    assert buf.pending(1) == 0
    assert buf.sessions_with_parked() == [2]
    # The sequence cursor is gone too: a reused session id starts fresh.
    assert buf.next_seq(1) == 0


def test_reclaim_session_prunes_all_per_session_state():
    """Reclaiming must drop the duplicate counter and sequence cursor
    too, or a server GC-ing thousands of sessions leaks dict entries
    forever (and a reused session id inherits a stale cursor)."""
    buf = ReassemblyBuffer()
    buf.push(hdr(1, 0), "a")
    buf.push(hdr(1, 0), "a")  # one duplicate attributed to session 1
    buf.push(hdr(1, 2), "c")
    buf.push(hdr(2, 0), "other")
    assert buf.duplicates_by_session == {1: 1}
    buf.reclaim_session(1)
    assert 1 not in buf.duplicates_by_session
    assert buf.next_seq(1) == 0
    assert buf.sessions() == [2]
    # The aggregate counter keeps history; only per-session state goes.
    assert buf.duplicates == 1


def test_finish_session_counts_discards():
    buf = ReassemblyBuffer()
    buf.push(hdr(4, 2), "x")
    buf.push(hdr(4, 3), "y")
    assert buf.finish_session(4) == 2
    assert buf.finish_session(4) == 0
