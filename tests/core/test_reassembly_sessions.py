"""Per-session reassembly bookkeeping: parked indexes, duplicate
attribution, payload-conflict detection, and session reclamation."""

from repro.core.messages import BlockHeader
from repro.core.reassembly import ReassemblyBuffer


def hdr(sid, seq, length=64):
    return BlockHeader(sid, seq, seq * length, length)


def test_parked_index_is_per_session():
    buf = ReassemblyBuffer()
    buf.push(hdr(1, 1), "s1b1")
    buf.push(hdr(2, 2), "s2b2")
    buf.push(hdr(2, 3), "s2b3")
    assert buf.pending(1) == 1
    assert buf.pending(2) == 2
    assert buf.pending(3) == 0
    assert sorted(buf.sessions_with_parked()) == [1, 2]
    # Releasing session 1 leaves session 2's parked entries untouched.
    released = buf.push(hdr(1, 0), "s1b0")
    assert [h.seq for h, _ in released] == [0, 1]
    assert buf.pending(1) == 0
    assert buf.pending(2) == 2
    assert buf.sessions_with_parked() == [2]


def test_duplicates_attributed_to_their_session():
    buf = ReassemblyBuffer()
    buf.push(hdr(1, 0), "a")
    buf.push(hdr(1, 0), "a")  # stale: already delivered
    buf.push(hdr(2, 5), "b")
    buf.push(hdr(2, 5), "b")  # replay of a parked entry
    buf.push(hdr(2, 5), "b")
    assert buf.duplicates == 3
    assert buf.duplicates_by_session == {1: 1, 2: 2}


def test_payload_conflict_detected_while_parked():
    buf = ReassemblyBuffer()
    buf.push(hdr(1, 5), "original")
    released = buf.push(hdr(1, 5), "DIVERGENT")
    assert released == []
    assert buf.payload_conflicts == 1
    assert buf.duplicates == 1
    # First writer wins: the original payload is still the parked one.
    buf.push(hdr(1, 0), "p0")
    buf.push(hdr(1, 1), "p1")
    buf.push(hdr(1, 2), "p2")
    buf.push(hdr(1, 3), "p3")
    released = buf.push(hdr(1, 4), "p4")
    assert released[-1][1] == "original"


def test_conflict_undetectable_after_delivery_counts_duplicate_only():
    buf = ReassemblyBuffer()
    buf.push(hdr(1, 0), "delivered")
    buf.push(hdr(1, 0), "DIVERGENT")  # original payload is gone
    assert buf.duplicates == 1
    assert buf.payload_conflicts == 0


def test_reclaim_session_returns_stranded_entries_sorted():
    buf = ReassemblyBuffer()
    buf.push(hdr(1, 7), "b7")
    buf.push(hdr(1, 3), "b3")
    buf.push(hdr(1, 5), "b5")
    buf.push(hdr(2, 9), "other")
    stranded = buf.reclaim_session(1)
    assert [h.seq for h, _ in stranded] == [3, 5, 7]
    assert buf.pending(1) == 0
    assert buf.sessions_with_parked() == [2]
    # The sequence cursor is gone too: a reused session id starts fresh.
    assert buf.next_seq(1) == 0


def test_reclaim_session_prunes_all_per_session_state():
    """Reclaiming must drop the duplicate counter and sequence cursor
    too, or a server GC-ing thousands of sessions leaks dict entries
    forever (and a reused session id inherits a stale cursor)."""
    buf = ReassemblyBuffer()
    buf.push(hdr(1, 0), "a")
    buf.push(hdr(1, 0), "a")  # one duplicate attributed to session 1
    buf.push(hdr(1, 2), "c")
    buf.push(hdr(2, 0), "other")
    assert buf.duplicates_by_session == {1: 1}
    buf.reclaim_session(1)
    assert 1 not in buf.duplicates_by_session
    assert buf.next_seq(1) == 0
    assert buf.sessions() == [2]
    # The aggregate counter keeps history; only per-session state goes.
    assert buf.duplicates == 1


def test_finish_session_counts_discards():
    buf = ReassemblyBuffer()
    buf.push(hdr(4, 2), "x")
    buf.push(hdr(4, 3), "y")
    assert buf.finish_session(4) == 2
    assert buf.finish_session(4) == 0


def test_resume_cursor_reset_discards_stale_and_counts_replays():
    # SESSION_RESUME interplay: after set_next_seq() jumps the cursor
    # forward, replayed below-cursor blocks are duplicates — counted and
    # attributed — and must not recreate parked state.
    buf = ReassemblyBuffer()
    buf.push(hdr(7, 0), "b0")
    buf.push(hdr(7, 1), "b1")
    buf.push(hdr(7, 5), "early")          # parked out-of-order
    buf.set_next_seq(7, 4)                # resume from restart marker 4
    assert buf.pending(7) == 1            # seq 5 survives (>= cursor)
    assert buf.next_seq(7) == 4
    # The dead incarnation replays blocks 0-3.
    for seq in range(4):
        assert buf.reject_duplicate(hdr(7, seq), f"replay{seq}")
    assert buf.duplicates == 4
    assert buf.duplicates_by_session == {7: 4}
    assert buf.pending(7) == 1            # no parked state resurrected
    # push() agrees with reject_duplicate() on below-cursor replays.
    assert buf.push(hdr(7, 2), "replay2") == []
    assert buf.duplicates_by_session == {7: 5}
    assert buf.pending(7) == 1


def test_cursor_reset_prunes_below_cursor_parked_entries():
    buf = ReassemblyBuffer()
    buf.push(hdr(3, 2), "stale2")
    buf.push(hdr(3, 3), "stale3")
    buf.push(hdr(3, 8), "keep8")
    buf.set_next_seq(3, 6)
    assert buf.pending(3) == 1
    released = buf.push(hdr(3, 6), "b6")
    assert [p for _, p in released] == ["b6"]
    assert buf.next_seq(3) == 7


def test_replay_against_reclaimed_session_leaves_no_state():
    # A pruned session must not be resurrected by late replays: the
    # duplicate is counted (aggregate + per-session) but no parked dict
    # or cursor entry may reappear, or sink GC leaks bounded-state.
    buf = ReassemblyBuffer()
    buf.push(hdr(9, 0), "b0")
    buf.push(hdr(9, 2), "stranded")
    buf.reclaim_session(9)
    assert buf.sessions() == []
    assert buf.duplicates_by_session == {}
    buf.set_next_seq(9, 3)                # resume re-attaches the session
    assert buf.push(hdr(9, 1), "latereplay") == []
    assert buf.duplicates_by_session == {9: 1}
    assert buf.sessions_with_parked() == []
    assert buf.sessions() == [9]
    # Reclaim again: the per-session duplicate attribution is pruned but
    # the aggregate chaos-audit counter survives.
    buf.reclaim_session(9)
    assert buf.duplicates_by_session == {}
    assert buf.duplicates == 1
