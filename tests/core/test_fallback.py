"""Graceful degradation: total data-channel loss falls back to TCP.

When every data QP dies mid-transfer the session must not abort: the
source negotiates TRANSPORT_FALLBACK, carries the remaining blocks from
the sink's restart marker over a TCP connection through the same
fabric (checksums still verified end to end), and — when allowed — re-
promotes to RDMA once a reopened channel's probe succeeds.  Fallback
off, denied, or impossible must still be exactly ONE typed abort.
"""

import pytest

from repro.core import ProtocolConfig
from repro.faults import FaultPlan, run_chaos

SEEDS = [0, 1]


def cfg(**over):
    base = dict(
        block_size=256 * 1024,
        num_channels=2,
        source_blocks=8,
        sink_blocks=8,
    )
    base.update(over)
    return ProtocolConfig(**base)


def kill_all(when=0.002, channels=2):
    return tuple((when, i) for i in range(channels))


@pytest.mark.parametrize("seed", SEEDS)
def test_total_channel_loss_degrades_to_tcp(seed):
    """Every QP killed early: the whole remainder rides the TCP path and
    the delivery is still byte-exact and leak-free."""
    r = run_chaos(
        "roce-lan",
        total_bytes=16 << 20,
        plan=FaultPlan(seed=seed, qp_kills=kill_all()),
        config=cfg(fallback_repromote=False),
    )
    assert r.qp_kills_fired == 2
    assert r.completed and r.byte_exact
    assert r.fallbacks == 1
    assert r.fallback_blocks > 0
    assert r.error is None
    assert r.leaks == ()
    assert r.clean


@pytest.mark.parametrize("seed", SEEDS)
def test_fallback_disabled_stays_a_typed_abort(seed):
    """``tcp_fallback=False`` preserves the old contract: total channel
    loss is a DataChannelsLost abort, not a hang and not a fallback."""
    r = run_chaos(
        "roce-lan",
        total_bytes=16 << 20,
        plan=FaultPlan(seed=seed, qp_kills=kill_all()),
        config=cfg(tcp_fallback=False),
    )
    assert not r.completed
    assert r.error == "DataChannelsLost"
    assert r.fallbacks == 0
    assert r.leaks == ()
    assert r.clean


@pytest.mark.parametrize("seed", SEEDS)
def test_exactly_one_decision_under_racing_watchdogs(seed):
    """Satellite: the marker watchdog and the channel-loss path race on
    total QP death — the session must settle on exactly one decision
    (here: one fallback, zero aborts), never a double abort or an abort
    racing a live fallback."""
    r = run_chaos(
        "roce-lan",
        total_bytes=16 << 20,
        # Kill the channels mid-stream, after markers are flowing.
        plan=FaultPlan(seed=seed, qp_kills=kill_all(when=0.0015)),
        config=cfg(fallback_repromote=False),
    )
    assert r.completed and r.byte_exact
    assert r.fallbacks == 1  # one decision
    assert r.error is None  # ... and only one
    assert r.sessions_reclaimed == 0
    assert r.leaks == ()
    assert r.clean


@pytest.mark.parametrize("seed", SEEDS)
def test_denied_fallback_aborts_then_resume_recovers(seed):
    """The sink's deny hook turns degradation into a typed
    TransportFallbackFailed; a resume budget still saves the transfer
    over a re-established data channel."""
    r = run_chaos(
        "roce-lan",
        total_bytes=16 << 20,
        plan=FaultPlan(seed=seed, qp_kills=kill_all(), fallback_deny=True),
        config=cfg(),
        resume_attempts=3,
        resume_backoff=0.5,
        horizon=120.0,
    )
    assert r.fallback_denials >= 1
    assert r.completed and r.byte_exact
    assert r.resume_attempts_used >= 1
    assert r.leaks == ()
    assert r.clean


@pytest.mark.parametrize("seed", SEEDS)
def test_denied_fallback_without_resume_is_typed(seed):
    r = run_chaos(
        "roce-lan",
        total_bytes=16 << 20,
        plan=FaultPlan(seed=seed, qp_kills=kill_all(), fallback_deny=True),
        config=cfg(),
        horizon=120.0,
    )
    assert not r.completed
    assert r.error == "TransportFallbackFailed"
    assert r.fallback_denials >= 1
    assert r.leaks == ()
    assert r.clean


def test_repromotion_returns_to_rdma_mid_transfer():
    """With a short breaker cooldown the re-promote watchdog reopens a
    data channel and the tail of the transfer leaves the TCP path."""
    r = run_chaos(
        "roce-lan",
        total_bytes=256 << 20,
        plan=FaultPlan(seed=3, qp_kills=kill_all(when=0.002, channels=4)),
        config=ProtocolConfig(breaker_cooldown_min=0.01),
    )
    assert r.completed and r.byte_exact
    assert r.fallbacks == 1
    assert r.repromotions == 1
    assert r.fallback_blocks > 0  # some blocks really rode the TCP path
    assert r.data_bytes_sent > 0  # ... and the tail went back to RDMA
    assert r.leaks == ()
    assert r.clean


def test_wan_fallback_completes_checksummed():
    """Acceptance: kill every data QP mid-transfer on the 49 ms WAN; the
    session finishes over the TCP fallback with checksums verified."""
    c = ProtocolConfig(fallback_repromote=False)
    r = run_chaos(
        "ani-wan",
        total_bytes=32 << 20,
        plan=FaultPlan(seed=11, qp_kills=tuple((0.25, i) for i in range(c.num_channels))),
        config=c,
    )
    assert r.qp_kills_fired == c.num_channels
    assert r.completed and r.byte_exact
    assert r.fallbacks == 1
    assert r.fallback_blocks > 0
    assert r.checksum_mismatches == 0
    assert r.leaks == ()
    assert r.clean


def test_fallback_run_replays_identically():
    """Degraded-mode runs stay deterministic: same seed, same everything."""
    def go():
        return run_chaos(
            "roce-lan",
            total_bytes=16 << 20,
            plan=FaultPlan(seed=9, qp_kills=kill_all()),
            config=cfg(fallback_repromote=False),
        )

    a, b = go(), go()
    assert a.sim_time == b.sim_time
    assert a.fallback_blocks == b.fallback_blocks
    assert a.data_bytes_sent == b.data_bytes_sent
    assert (a.completed, a.error) == (b.completed, b.error)
